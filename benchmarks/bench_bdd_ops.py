"""BDD substrate micro-benchmarks.

Not a paper table — these quantify the substrate cost drivers
(apply, relational product, composition, parameterization, sifting) so
the engine-level numbers in the other benches can be interpreted.
These use pytest-benchmark's statistical timing (multiple rounds).
"""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import from_characteristic

from .conftest import chi_points

NVARS = 18


def _random_function(bdd, rng, nvars=NVARS, terms=12, width=6):
    """Random DNF over the manager's variables."""
    result = bdd.false
    for _ in range(terms):
        cube = {
            v: rng.random() < 0.5
            for v in rng.sample(range(nvars), width)
        }
        result = bdd.or_(result, bdd.cube(cube))
    return result


@pytest.fixture
def setup():
    bdd = BDD(["x%d" % i for i in range(NVARS)])
    rng = random.Random(0)
    f = _random_function(bdd, rng)
    g = _random_function(bdd, rng)
    bdd.incref(f)
    bdd.incref(g)
    return bdd, f, g


def test_apply_and(benchmark, setup):
    bdd, f, g = setup

    def run():
        bdd.clear_cache()
        return bdd.and_(f, g)

    benchmark(run)


def test_exists(benchmark, setup):
    bdd, f, _ = setup
    variables = list(range(0, NVARS, 2))

    def run():
        bdd.clear_cache()
        return bdd.exists(variables, f)

    benchmark(run)


def test_and_exists_fused_vs_separate(benchmark, setup):
    bdd, f, g = setup
    variables = list(range(0, NVARS, 2))

    def run():
        bdd.clear_cache()
        return bdd.and_exists(f, g, variables)

    fused = benchmark(run)
    bdd.clear_cache()
    assert fused == bdd.exists(variables, bdd.and_(f, g))


def test_vector_compose(benchmark, setup):
    bdd, f, g = setup
    mapping = {0: g, 3: bdd.not_(g), 7: bdd.var(1)}

    def run():
        bdd.clear_cache()
        return bdd.vector_compose(f, mapping)

    benchmark(run)


def test_parameterization(benchmark):
    rng = random.Random(5)
    width = 12
    bdd = BDD(["v%d" % i for i in range(width)])
    variables = tuple(range(width))
    points = {
        tuple(rng.random() < 0.5 for _ in range(width)) for _ in range(200)
    }
    chi = chi_points(bdd, variables, points)
    bdd.incref(chi)

    def run():
        bdd.clear_cache()
        return from_characteristic(bdd, variables, chi)

    vec = benchmark(run)
    assert vec.count() == len(points)


def test_sifting(benchmark):
    def run():
        bdd = BDD(["x%d" % i for i in range(12)])
        rng = random.Random(7)
        f = _random_function(bdd, rng, nvars=12, terms=10, width=5)
        bdd.incref(f)
        return bdd.sift(max_growth=1.2)

    benchmark.pedantic(run, rounds=3, iterations=1)

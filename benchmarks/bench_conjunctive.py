"""Section 2.7: Boolean functional vectors vs conjunctive decomposition.

The paper observes the two representations are in bijection, that their
set algorithms "are in essence performing the same operations", and
that with aligned orders the conjunctive-decomposition variant needs
fewer BDD operations.  This bench measures both claims:

* union op-counts and times on batches of random canonical sets, for
  both representations;
* full reachability with the BFV engine vs the conjunctive engine.
"""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import from_characteristic
from repro.bfv.conjunctive import ConjunctiveDecomposition
from repro.circuits import surrogates
from repro.order import order_for
from repro.reach import ReachLimits, bfv_reachability, conj_reachability

from .conftest import chi_points, run_once

_ROWS = {}


def _random_sets(width, count, seed):
    rng = random.Random(seed)
    bdd = BDD(["v%d" % i for i in range(width)])
    variables = tuple(range(width))
    sets = []
    for _ in range(count):
        points = {
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(rng.randint(1, 2 ** (width - 1)))
        }
        sets.append(
            from_characteristic(
                bdd, variables, chi_points(bdd, variables, points)
            )
        )
    return bdd, sets


def _render(rows):
    lines = ["measurement                 bfv          conjunctive"]
    for key in sorted(rows):
        row = rows[key]
        lines.append(
            "%-26s %-12s %-12s" % (key, row.get("bfv"), row.get("conj"))
        )
    return "\n".join(lines)


@pytest.mark.parametrize("representation", ["bfv", "conj"])
def test_union_batch(benchmark, registry, representation):
    bdd, sets = _random_sets(width=10, count=40, seed=3)
    if representation == "conj":
        sets = [ConjunctiveDecomposition.from_bfv(s) for s in sets]

    def run():
        bdd.op_count = 0
        accumulator = sets[0]
        for item in sets[1:]:
            accumulator = accumulator.union(item)
        return bdd.op_count

    ops = run_once(benchmark, run)
    _ROWS.setdefault("union batch: bdd ops", {})[representation] = ops
    benchmark.extra_info["bdd_ops"] = ops
    registry.add_block(
        "Sec 2.7: BFV vs conjunctive decomposition", _render(_ROWS)
    )


@pytest.mark.parametrize("representation", ["bfv", "conj"])
def test_reachability_backend(benchmark, registry, representation):
    circuit = surrogates.s4863s()
    slots = order_for(circuit, "S1")
    engine = bfv_reachability if representation == "bfv" else conj_reachability

    def run():
        return engine(
            circuit,
            slots=slots,
            limits=ReachLimits(max_seconds=40.0, max_live_nodes=100_000),
            order_name="S1",
            count_states=False,
        )

    result = run_once(benchmark, run)
    assert result.completed
    _ROWS.setdefault("s4863s reach: seconds", {})[representation] = (
        "%.2f" % result.seconds
    )
    _ROWS.setdefault("s4863s reach: peak nodes", {})[representation] = (
        result.peak_live_nodes
    )
    registry.add_block(
        "Sec 2.7: BFV vs conjunctive decomposition", _render(_ROWS)
    )

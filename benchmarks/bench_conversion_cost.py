"""Figure 1 vs Figure 2: what the direct BFV set algorithms buy.

The paper's motivation (Sec 1): the Coudert-Berthet-Madre flow
(Figure 1) computes images with Boolean functional vectors but converts
to characteristic functions for every set operation — "the conversion
between the two representations is costly and since it creates the
characteristic function anyway, there are no benefits to using Boolean
functional vectors".  Figure 2 (this paper) removes the conversions.

This bench runs both flows on the suite circuits that both complete,
and reports total time plus the fraction the CBM flow spends purely in
BFV <-> chi conversions.
"""

import pytest

from repro.circuits import surrogates
from repro.order import order_for
from repro.reach import ReachLimits, bfv_reachability, cbm_reachability

from .conftest import run_once

_LIMITS = ReachLimits(max_seconds=30.0, max_live_nodes=100_000)
_CIRCUITS = ["s1269s", "s3271s", "s4863s"]
_ROWS = {}


def _render(rows):
    lines = ["circuit    fig2-BFV(s)  fig1-CBM(s)  conversion(s)  conv-share"]
    for name in sorted(rows):
        row = rows[name]
        share = (
            row["conversion"] / row["cbm"] if row["cbm"] else 0.0
        )
        lines.append(
            "%-10s %11.2f %12.2f %14.2f %10.0f%%"
            % (name, row["bfv"], row["cbm"], row["conversion"], 100 * share)
        )
    return "\n".join(lines)


@pytest.mark.parametrize("circuit_name", _CIRCUITS)
@pytest.mark.parametrize("flow", ["fig2_bfv", "fig1_cbm"])
def test_conversion_cost(benchmark, registry, circuit_name, flow):
    circuit = surrogates.SUITE[circuit_name]()
    slots = order_for(circuit, "S1")
    engine = bfv_reachability if flow == "fig2_bfv" else cbm_reachability

    def run():
        return engine(
            circuit,
            slots=slots,
            limits=_LIMITS,
            order_name="S1",
            count_states=False,
        )

    result = run_once(benchmark, run)
    assert result.completed, (circuit_name, flow)
    row = _ROWS.setdefault(
        circuit_name, {"bfv": 0.0, "cbm": 0.0, "conversion": 0.0}
    )
    if flow == "fig2_bfv":
        row["bfv"] = result.seconds
    else:
        row["cbm"] = result.seconds
        row["conversion"] = result.conversion_seconds
    benchmark.extra_info["seconds"] = result.seconds
    benchmark.extra_info["conversion_seconds"] = result.conversion_seconds
    registry.add_block(
        "Fig 1 vs Fig 2: conversion overhead of the CBM flow",
        _render(_ROWS),
    )

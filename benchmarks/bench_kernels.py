#!/usr/bin/env python
"""Microbenchmark: iterative kernels + per-op caches vs the seed kernels.

Runs matched workloads through the recursive reference oracle
(``tests/bdd/reference_kernels.py`` — the kernels exactly as they
shipped in the seed, with the seed's shared tuple-keyed cache and its
clear-everything-on-GC policy) and through the current kernels, **on
the same manager**, so canonicity makes node-handle equality a complete
correctness check.

The workloads model how the reachability engines actually drive the
kernels:

* every engine's inner loop calls ``collect_garbage`` each iteration
  while holding its result vectors live, so all suites interleave GC
  with op batches over live results — the seed wiped its cache at every
  GC, the per-op tables keep entries whose nodes survive;
* image computation quantifies *wide* cubes (all present-state and
  input variables at once), so the quantify suites use cubes of
  60-150 variables over a 200-variable order — the seed re-sliced the
  cube tuple at every level and hashed the whole tuple on every probe,
  the current kernels thread an index through an interned cube.

Writes ``BENCH_kernels.json``.  Exits non-zero if any suite produced a
result mismatch.  ``--quick`` shrinks the workloads for CI smoke runs
(timings are then noisy; only the correctness bit is meaningful).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.bdd import BDD  # noqa: E402

from tests.bdd import reference_kernels as ref  # noqa: E402
from tests.conftest import build_expr, random_expr  # noqa: E402

#: GC cycles per workload run (the "reachability iterations").
GC_ROUNDS = 6


def _expr_pool(bdd, nvars, seed, count, depth):
    rng = random.Random(seed)
    pool = []
    for _ in range(count):
        node = build_expr(bdd, random_expr(rng, nvars, depth))
        bdd.incref(node)
        pool.append(node)
    return pool


def _literal_pool(bdd, nvars, seed, count, width):
    """Functions with support spread across a wide order."""
    rng = random.Random(seed)
    pool = []
    for _ in range(count):
        node = bdd.true
        for v in rng.sample(range(nvars), width):
            lit = bdd.var(v) if rng.random() < 0.5 else bdd.nvar(v)
            if rng.random() < 0.5:
                node = bdd.or_(node, lit)
            else:
                node = bdd.and_(node, lit)
        bdd.incref(node)
        pool.append(node)
    return pool


class Workload:
    """A pair of matched run functions over one shared manager.

    ``run(kernels)`` executes :data:`GC_ROUNDS` batches of operations,
    increfs every result (engines hold their vectors live), collects
    garbage between batches, then decrefs and returns the result
    handles.  ``kernels`` supplies the op implementations and the
    per-batch cache policy — the seed reference clears its cache at
    every GC exactly as the seed manager did.
    """

    def __init__(self, bdd, batch):
        self.bdd = bdd
        self.batch = batch  # callable(ops) -> list of result nodes

    def run_reference(self):
        bdd = self.bdd
        bdd._reference_cache = {}
        out = []
        for _ in range(GC_ROUNDS):
            results = self.batch(_REF_OPS, bdd)
            for node in results:
                bdd.incref(node)
            out.extend(results)
            bdd._reference_cache.clear()  # the seed's GC-time policy
            bdd.collect_garbage()
        for node in out:
            bdd.decref(node)
        return out

    def run_current(self):
        bdd = self.bdd
        bdd.clear_cache()
        out = []
        for _ in range(GC_ROUNDS):
            results = self.batch(_CUR_OPS, bdd)
            for node in results:
                bdd.incref(node)
            out.extend(results)
            bdd.collect_garbage()  # live-preserving sweep
        for node in out:
            bdd.decref(node)
        return out


class _RefOps:
    and_ = staticmethod(ref.and_)
    or_ = staticmethod(ref.or_)
    xor = staticmethod(ref.xor)
    ite = staticmethod(ref.ite)
    exists = staticmethod(ref.exists)
    forall = staticmethod(ref.forall)
    and_exists = staticmethod(ref.and_exists)
    compose = staticmethod(ref.compose)
    constrain = staticmethod(ref.constrain)
    restrict = staticmethod(ref.restrict)


class _CurOps:
    @staticmethod
    def and_(m, f, g):
        return m.and_(f, g)

    @staticmethod
    def or_(m, f, g):
        return m.or_(f, g)

    @staticmethod
    def xor(m, f, g):
        return m.xor(f, g)

    @staticmethod
    def ite(m, f, g, h):
        return m.ite(f, g, h)

    @staticmethod
    def exists(m, f, variables):
        return m.exists(variables, f)

    @staticmethod
    def forall(m, f, variables):
        return m.forall(variables, f)

    @staticmethod
    def and_exists(m, f, g, variables):
        return m.and_exists(f, g, variables)

    @staticmethod
    def compose(m, f, var, g):
        return m.compose(f, var, g)

    @staticmethod
    def constrain(m, f, c):
        return m.constrain(f, c)

    @staticmethod
    def restrict(m, f, c):
        return m.restrict(f, c)


_REF_OPS = _RefOps
_CUR_OPS = _CurOps


def suite_apply(quick):
    nvars = 24
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _expr_pool(bdd, nvars, 7, 8 if quick else 24, 5 if quick else 8)
    rng = random.Random(11)
    pairs = [
        (rng.choice(pool), rng.choice(pool))
        for _ in range(len(pool) * (2 if quick else 4))
    ]

    def batch(ops, m):
        out = []
        for f, g in pairs:
            out.append(ops.and_(m, f, g))
            out.append(ops.or_(m, f, g))
            out.append(ops.xor(m, f, g))
        return out

    return Workload(bdd, batch), len(pairs) * 3 * GC_ROUNDS


def suite_ite(quick):
    nvars = 24
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _expr_pool(bdd, nvars, 13, 8 if quick else 24, 5 if quick else 8)
    rng = random.Random(17)
    triples = [
        (rng.choice(pool), rng.choice(pool), rng.choice(pool))
        for _ in range(len(pool) * (2 if quick else 4))
    ]

    def batch(ops, m):
        return [ops.ite(m, f, g, h) for f, g, h in triples]

    return Workload(bdd, batch), len(triples) * GC_ROUNDS


def suite_quantify(quick):
    nvars = 80 if quick else 200
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _literal_pool(bdd, nvars, 5, 6 if quick else 10, 20 if quick else 40)
    rng = random.Random(19)
    low, high = (nvars // 4, nvars // 2) if quick else (60, 150)
    jobs = [
        (rng.choice(pool), rng.sample(range(nvars), rng.randrange(low, high)))
        for _ in range(20 if quick else 60)
    ]

    def batch(ops, m):
        out = []
        for f, vs in jobs:
            out.append(ops.exists(m, f, vs))
            out.append(ops.forall(m, f, vs))
        return out

    return Workload(bdd, batch), len(jobs) * 2 * GC_ROUNDS


def suite_and_exists(quick):
    nvars = 80 if quick else 200
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _literal_pool(bdd, nvars, 3, 6 if quick else 10, 20 if quick else 40)
    rng = random.Random(23)
    low, high = (nvars // 4, nvars // 2) if quick else (60, 150)
    jobs = [
        (
            rng.choice(pool),
            rng.choice(pool),
            rng.sample(range(nvars), rng.randrange(low, high)),
        )
        for _ in range(20 if quick else 60)
    ]

    def batch(ops, m):
        return [ops.and_exists(m, f, g, vs) for f, g, vs in jobs]

    return Workload(bdd, batch), len(jobs) * GC_ROUNDS


def suite_compose(quick):
    nvars = 24
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _expr_pool(bdd, nvars, 29, 6 if quick else 16, 4 if quick else 6)
    rng = random.Random(31)
    jobs = [
        (rng.choice(pool), rng.randrange(nvars), rng.choice(pool))
        for _ in range(len(pool) * (2 if quick else 4))
    ]

    def batch(ops, m):
        return [ops.compose(m, f, v, g) for f, v, g in jobs]

    return Workload(bdd, batch), len(jobs) * GC_ROUNDS


def suite_cofactor(quick):
    nvars = 24
    bdd = BDD(["x%d" % i for i in range(nvars)])
    pool = _expr_pool(bdd, nvars, 37, 8 if quick else 24, 5 if quick else 8)
    rng = random.Random(41)
    jobs = []
    for _ in range(len(pool) * (2 if quick else 4)):
        f, c = rng.choice(pool), rng.choice(pool)
        if c == 0:
            c = 1
        jobs.append((f, c))

    def batch(ops, m):
        out = []
        for f, c in jobs:
            out.append(ops.constrain(m, f, c))
            out.append(ops.restrict(m, f, c))
        return out

    return Workload(bdd, batch), len(jobs) * 2 * GC_ROUNDS


SUITES = {
    "apply": suite_apply,
    "ite": suite_ite,
    "quantify": suite_quantify,
    "and_exists": suite_and_exists,
    "compose": suite_compose,
    "cofactor": suite_cofactor,
}


def run_suite(name, builder, rounds, quick):
    workload, ops = builder(quick)
    # Warmup pair doubles as the correctness check: same manager, live
    # results, so node handles are directly comparable.
    res_ref = workload.run_reference()
    res_cur = workload.run_current()
    match = res_ref == res_cur
    # Untimed live-peak sample: one batch with its results held, the
    # way an engine holds its vectors (peak_live only advances when
    # count_live runs, which the timed loops deliberately avoid).
    bdd = workload.bdd
    held = workload.batch(_CUR_OPS, bdd)
    for node in held:
        bdd.incref(node)
    bdd.count_live()
    for node in held:
        bdd.decref(node)
    before, after = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        workload.run_reference()
        before.append(time.perf_counter() - start)
        start = time.perf_counter()
        workload.run_current()
        after.append(time.perf_counter() - start)
    before_s = statistics.median(before)
    after_s = statistics.median(after)
    stats = workload.bdd.cache_stats()["total"]
    return {
        "before_s": round(before_s, 6),
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if after_s else None,
        "ops": ops,
        "rounds": rounds,
        "gc_rounds": GC_ROUNDS,
        "cache_hit_rate": stats["hit_rate"],
        "cache": {
            "hits": stats.get("hits"),
            "misses": stats.get("misses"),
            "evictions": stats.get("evictions"),
            "hit_rate": stats.get("hit_rate"),
        },
        "peak_nodes": workload.bdd.peak_nodes,
        "peak_live_nodes": workload.bdd.peak_live,
        "match": match,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny workloads for CI smoke runs (timings not meaningful)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_ROOT, "BENCH_kernels.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 7
    report = {
        # Version 2 adds per-suite "cache" breakdowns and peak live
        # node counts alongside the aggregate hit rate.
        "schema_version": 2,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": args.quick,
            "rounds": rounds,
            "workload": "gc-interleaved batches over live results; "
            "wide-cube quantification (see module docstring)",
        },
        "suites": {},
    }
    failed = False
    for name, builder in SUITES.items():
        entry = run_suite(name, builder, rounds, args.quick)
        report["suites"][name] = entry
        flag = "" if entry["match"] else "  ** MISMATCH **"
        print(
            "%-12s before %8.4fs  after %8.4fs  speedup %6.2fx%s"
            % (name, entry["before_s"], entry["after_s"], entry["speedup"], flag)
        )
        if not entry["match"]:
            failed = True

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote", args.output)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension benchmark: three routes to the same safety verdict.

Not a paper table — an ablation over the model-checking layers built on
the paper's machinery.  For properties with known violations, compares:

* ``forward``  — unbounded BFV reachability with onion rings
  (:func:`repro.mc.check_invariant`), shortest trace included;
* ``bmc``      — bounded unrolling to the violation depth
  (:func:`repro.mc.bounded_check`);
* ``backward`` — pre-image iteration from the bad states
  (:func:`repro.reach.backward_reachability`).

All three must agree on the verdict and (where applicable) the shortest
counterexample depth; the interesting output is the cost profile.
"""

import pytest

from repro.circuits import generators as gen
from repro.mc import bounded_check, check_invariant, never_all
from repro.reach.backward import backward_reachability

from .conftest import run_once

_ROWS = {}

_CASES = {
    "counter6_max": (
        lambda: gen.counter(6),
        lambda c: never_all(c.state_nets),
        63,
    ),
    "shift8_ones": (
        lambda: gen.shift_register(8),
        lambda c: never_all(c.state_nets),
        8,
    ),
}


def _bad_states(circuit):
    """All-ones state (the violation of never_all) in declaration order."""
    return [tuple([True] * circuit.num_latches)]


def _render(rows):
    lines = ["case           method    time(s)  depth"]
    for (case, method), row in sorted(rows.items()):
        lines.append(
            "%-14s %-9s %7.2f  %s"
            % (case, method, row["s"], row.get("depth", "-"))
        )
    return "\n".join(lines)


@pytest.mark.parametrize("method", ["forward", "bmc", "backward"])
@pytest.mark.parametrize("case", list(_CASES))
def test_mc_route(benchmark, registry, case, method):
    factory, prop_builder, depth = _CASES[case]
    circuit = factory()
    prop = prop_builder(circuit)

    if method == "forward":
        def run():
            return check_invariant(circuit, prop)

        result = run_once(benchmark, run)
        assert not result.holds
        assert len(result.counterexample) == depth
        _ROWS[(case, method)] = {
            "s": result.seconds,
            "depth": len(result.counterexample),
        }
    elif method == "bmc":
        def run():
            return bounded_check(circuit, prop, depth)

        result = run_once(benchmark, run)
        assert not result.holds_up_to_depth
        assert result.violation_depth == depth
        _ROWS[(case, method)] = {
            "s": benchmark.stats.stats.mean,
            "depth": result.violation_depth,
        }
    else:
        def run():
            return backward_reachability(
                circuit, _bad_states(circuit), count_states=False
            )

        result = run_once(benchmark, run)
        assert result.completed
        # the initial state is backward-reachable from the violation
        space = result.extra["space"]
        chi = result.extra["backward_chi"]
        assignment = dict(zip(space.s_vars, space.initial_point))
        assert space.bdd.evaluate(chi, assignment)
        _ROWS[(case, method)] = {"s": result.seconds, "depth": result.iterations}
    registry.add_block(
        "Extension: forward vs BMC vs backward safety checking",
        _render(_ROWS),
    )

"""Section 3 ordering-robustness claim.

The paper's example: ``chi = (v1<->v2)(v3<->v4)(v5<->v6)`` needs the
paired variables adjacent in the BDD order, while "with the Boolean
functional vector, all orderings are good in this case" because the
representation factors out functional dependencies [9].

This bench sweeps the number of coupled pairs and, for each size,
measures the reached-set representation under three orders: pairs
adjacent (best for chi), pairs fully separated (worst), and a seeded
random shuffle.  The characteristic function grows exponentially in the
separated order; the shared BFV size stays linear in every order.
"""

import pytest

from repro.bdd import BDD
from repro.bfv import from_characteristic

from .conftest import run_once

_PAIRS = [3, 5, 7, 9]
_ROWS = {}


def _orders(pairs):
    adjacent = []
    for j in range(pairs):
        adjacent += ["a%d" % j, "b%d" % j]
    separated = ["a%d" % j for j in range(pairs)] + [
        "b%d" % j for j in range(pairs)
    ]
    import random

    shuffled = list(adjacent)
    random.Random(42).shuffle(shuffled)
    return {"adjacent": adjacent, "separated": separated, "random": shuffled}


def _measure(pairs, order):
    bdd = BDD(order)
    chi = bdd.true
    for j in range(pairs):
        chi = bdd.and_(
            chi, bdd.equiv(bdd.var("a%d" % j), bdd.var("b%d" % j))
        )
    choice_vars = [bdd.var_index(name) for name in order]
    vec = from_characteristic(bdd, choice_vars, chi)
    return {"chi": bdd.dag_size(chi), "bfv": vec.shared_size()}


def _render(rows):
    lines = [
        "pairs  order      chi-size  bfv-shared-size",
    ]
    for (pairs, name), sizes in sorted(rows.items()):
        lines.append(
            "%5d  %-9s %9d %16d"
            % (pairs, name, sizes["chi"], sizes["bfv"])
        )
    return "\n".join(lines)


@pytest.mark.parametrize("pairs", _PAIRS)
@pytest.mark.parametrize("order_name", ["adjacent", "separated", "random"])
def test_ordering_sensitivity(benchmark, registry, pairs, order_name):
    order = _orders(pairs)[order_name]
    sizes = run_once(benchmark, _measure, pairs, order)
    _ROWS[(pairs, order_name)] = sizes
    benchmark.extra_info.update(sizes)
    registry.add_block(
        "Sec 3 ordering sensitivity: (v1<->v2)(v3<->v4)... sizes",
        _render(_ROWS),
    )
    if order_name == "separated":
        # chi is exponential in the separated order...
        assert sizes["chi"] >= (1 << pairs)
    # ... while the BFV stays linear under every order.
    assert sizes["bfv"] <= 8 * pairs + 4

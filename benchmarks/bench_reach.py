#!/usr/bin/env python
"""End-to-end reachability benchmark: seed kernels vs current kernels.

For each Table-2 surrogate circuit, runs the same engine twice per
round: once with the seed's recursive kernels and clear-on-GC shared
cache installed on the manager (``install_reference_kernels``), once
with the current iterative kernels and GC-surviving per-op tables.
Each phase gets a fresh :class:`ReachSpace`, so the comparison is a
full engine run including image computation, fixpoint detection and
the per-iteration garbage collections.

Correctness: when both phases complete, they must agree on iteration
count and on the canonical size of the reached set's representation
(same circuit, same order — sizes are comparable across managers).
Differing *statuses* are a legitimate performance outcome (the seed
kernels may time out where the current ones finish), not a mismatch.

A second phase benchmarks the *batch scheduler*: the same suite of
cells dispatched through :mod:`repro.harness.scheduler` sequentially
(``jobs=1``) and on a worker pool (``--jobs``, default: the machine's
core count), recording the wall-clock speedup and checking that the
two merged reports are byte-identical (the scheduler's determinism
guarantee).  On a single-core box the speedup hovers around 1.0x; the
CI runners (2+ cores) are where the recorded figure is meaningful.

A third phase times the non-BDD backend engines (``bitset``/``zono``,
see ``docs/backends.md``) on small builtins: informational cells under
a separate report key, excluded from the regression comparison.

Writes ``BENCH_reach.json``.  Exits non-zero only on a correctness
mismatch.  ``--quick`` runs a subset for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.circuits import catalog, surrogates  # noqa: E402
from repro.order import order_for  # noqa: E402
from repro.reach import ENGINES, ReachLimits, ReachSpace  # noqa: E402

from tests.bdd.reference_kernels import install_reference_kernels  # noqa: E402

LIMITS = ReachLimits(max_seconds=20.0, max_live_nodes=60_000)
QUICK_LIMITS = ReachLimits(max_seconds=5.0, max_live_nodes=30_000)

#: Noise floor for the regression comparison against the committed
#: baseline.  A cell is flagged only when the new median exceeds the
#: old one by BOTH margins: 25% relative AND 0.25s absolute.  The
#: absolute floor keeps sub-second cells (e.g. s1269s/tr at ~0.3s)
#: from flagging on scheduler jitter; the relative tolerance covers
#: the multi-second cells.  The check is informational — the script's
#: exit code stays a pure correctness gate (see scripts/bench.sh).
REGRESSION_REL_TOL = 0.25
REGRESSION_ABS_FLOOR_S = 0.25


def compare_to_baseline(old_report, new_cells):
    """Per-cell after_s regressions beyond the noise floor.

    Compares only cells present in both reports whose *current-kernel*
    phase completed both times; status flips (completed -> T.O.) are
    always reported.  Returns a list of human-readable findings.
    """
    findings = []
    old_cells = (old_report or {}).get("cells", {})
    for key, new in sorted(new_cells.items()):
        old = old_cells.get(key)
        if old is None:
            continue
        if old["after_status"] == "completed" != new["after_status"]:
            findings.append(
                "%s: status %s -> %s"
                % (key, old["after_status"], new["after_status"])
            )
            continue
        if old["after_status"] != "completed":
            continue
        old_s, new_s = old["after_s"], new["after_s"]
        if (
            new_s > old_s * (1 + REGRESSION_REL_TOL)
            and new_s - old_s > REGRESSION_ABS_FLOOR_S
        ):
            findings.append(
                "%s: after_s %.2fs -> %.2fs (+%.0f%%, +%.2fs)"
                % (key, old_s, new_s, 100 * (new_s / old_s - 1), new_s - old_s)
            )
    return findings


def run_once(engine, circuit, slots, limits, reference):
    space = ReachSpace(circuit, slots)
    if reference:
        install_reference_kernels(space.bdd)
    result = ENGINES[engine](
        circuit,
        slots=slots,
        limits=limits,
        order_name="S1",
        count_states=False,
        space=space,
    )
    return result


def bench_cell(engine, circuit, slots, limits, rounds):
    before, after = [], []
    mismatch = None
    for _ in range(rounds):
        ref_result = run_once(engine, circuit, slots, limits, reference=True)
        cur_result = run_once(engine, circuit, slots, limits, reference=False)
        before.append(ref_result.seconds)
        after.append(cur_result.seconds)
        if ref_result.completed and cur_result.completed:
            if ref_result.iterations != cur_result.iterations:
                mismatch = "iterations: %d vs %d" % (
                    ref_result.iterations,
                    cur_result.iterations,
                )
            elif ref_result.reached_size != cur_result.reached_size:
                mismatch = "reached_size: %s vs %s" % (
                    ref_result.reached_size,
                    cur_result.reached_size,
                )
    before_s = statistics.median(before)
    after_s = statistics.median(after)
    cache = cur_result.extra.get("cache", {}).get("total", {})
    return {
        "before_s": round(before_s, 4),
        "after_s": round(after_s, 4),
        "speedup": round(before_s / after_s, 3) if after_s else None,
        "before_status": ref_result.status,
        "after_status": cur_result.status,
        "iterations": cur_result.iterations,
        "peak_live_nodes": cur_result.peak_live_nodes,
        "cache_hit_rate": cache.get("hit_rate"),
        "cache": {
            "hits": cache.get("hits"),
            "misses": cache.get("misses"),
            "evictions": cache.get("evictions"),
            "hit_rate": cache.get("hit_rate"),
        },
        "mismatch": mismatch,
    }


#: Small builtins for the non-BDD backend cells: both fit comfortably
#: under the bitset caps (22 latches / 24 state+input bits), unlike the
#: Table-2 surrogates, which are exactly the sizes the explicit oracle
#: is built to refuse.
BACKEND_CIRCUITS = ("s27", "traffic")
BACKEND_ENGINES = ("bitset", "zono")


def bench_backend_cells(limits, rounds):
    """Informational timings for the non-BDD backend engines.

    There is no seed-vs-current kernel comparison here (the backends
    share no BDD code), so each cell is a single-phase median.  The
    cells live under a separate report key and are deliberately
    excluded from the regression comparison: they exist so the relative
    cost of the oracle is visible, not gated.
    """
    cells = {}
    for name in BACKEND_CIRCUITS:
        circuit = catalog.resolve(name)
        for engine in BACKEND_ENGINES:
            seconds = []
            for _ in range(rounds):
                result = ENGINES[engine](
                    circuit, limits=limits, count_states=False
                )
                seconds.append(result.seconds)
            cells["%s/%s" % (name, engine)] = {
                "median_s": round(statistics.median(seconds), 4),
                "status": result.status,
                "iterations": result.iterations,
                "reached_size": result.reached_size,
                "exact": result.extra.get("exact"),
            }
            print(
                "%-10s %-6s %8.2fs (%s)  iterations %d  exact %s"
                % (
                    name,
                    engine,
                    cells["%s/%s" % (name, engine)]["median_s"],
                    result.status,
                    result.iterations,
                    result.extra.get("exact"),
                )
            )
    return cells


def bench_batch(circuit_names, engines, limits, jobs):
    """Wall-clock of the cell suite through the scheduler, 1 vs N workers.

    Every (circuit, engine) pair is one single-rung batch job (no
    fallback, states uncounted), all isolated in supervised children —
    the same work at both pool sizes, so the wall-clock ratio is a pure
    scheduling win.  Returns the figures plus the determinism check:
    jobs that *completed* at both pool sizes must report identical
    normalized results (cells that hit the time budget are legitimately
    timing-dependent and are excluded from the comparison).
    """
    from repro.harness.scheduler import run_scheduled_batch

    def run(n):
        start = time.perf_counter()
        reports = [
            run_scheduled_batch(
                list(circuit_names),
                engine=engine,
                jobs=n,
                max_seconds=limits.max_seconds,
                max_live_nodes=limits.max_live_nodes,
                fallback=False,
                count_states=False,
                bench_path=os.path.join(_ROOT, "BENCH_reach.json"),
            )
            for engine in engines
        ]
        return (
            time.perf_counter() - start,
            [report.merged()["jobs"] for report in reports],
        )

    def completed_agree(left_runs, right_runs):
        for left_jobs, right_jobs in zip(left_runs, right_runs):
            for left, right in zip(left_jobs, right_jobs):
                lo, ro = left["outcome"], right["outcome"]
                if not (lo and ro and lo["completed"] and ro["completed"]):
                    continue
                if left != right:
                    return False
        return True

    sequential_s, sequential_jobs = run(1)
    parallel_s, parallel_jobs = run(jobs)
    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "cells": len(circuit_names) * len(engines),
        "sequential_s": round(sequential_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": (
            round(sequential_s / parallel_s, 3) if parallel_s else None
        ),
        "deterministic": completed_agree(sequential_jobs, parallel_jobs),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output", default=os.path.join(_ROOT, "BENCH_reach.json")
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help=(
            "worker pool size for the batch-scheduler phase "
            "(default: cpu count)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = None
    if os.path.exists(args.output):
        try:
            with open(args.output) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError):
            baseline = None

    if args.quick:
        circuit_names = list(surrogates.SUITE)[:2]
        engines = ("bfv", "sat")  # sat smoke cell rides in CI
        limits = QUICK_LIMITS
        rounds = 1
    else:
        circuit_names = list(surrogates.SUITE)
        engines = ("bfv", "tr", "sat", "bfv-sat")
        limits = LIMITS
        rounds = 3

    report = {
        # Version 2 adds per-cell "cache" breakdowns (hits/misses/
        # evictions) alongside the aggregate hit rate.  Version 3 adds
        # the top-level "batch" scheduler phase (jobs=1 vs jobs=N wall
        # clock, speedup, determinism check).  Version 4 adds the
        # "regressions" comparison against the previously committed
        # baseline (noise-floored, informational).  Version 5 adds the
        # "backend_cells" section: single-phase timings for the non-BDD
        # bitset/zono engines on small builtins, informational only and
        # excluded from the regression comparison.
        "schema_version": 5,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": args.quick,
            "rounds": rounds,
            "order": "S1",
            "max_seconds": limits.max_seconds,
            "max_live_nodes": limits.max_live_nodes,
        },
        "cells": {},
    }
    failed = False
    for name in circuit_names:
        circuit = surrogates.SUITE[name]()
        slots = order_for(circuit, "S1")
        for engine in engines:
            cell = bench_cell(engine, circuit, slots, limits, rounds)
            report["cells"]["%s/%s" % (name, engine)] = cell
            flag = ""
            if cell["mismatch"]:
                flag = "  ** MISMATCH: %s **" % cell["mismatch"]
                failed = True
            print(
                "%-10s %-4s before %8.2fs (%s)  after %8.2fs (%s)  "
                "speedup %6.2fx  hit-rate %s%s"
                % (
                    name,
                    engine,
                    cell["before_s"],
                    cell["before_status"],
                    cell["after_s"],
                    cell["after_status"],
                    cell["speedup"],
                    cell["cache_hit_rate"],
                    flag,
                )
            )

    # Regression comparison vs the committed baseline.  Quick runs are
    # too noisy to compare, and a quick baseline is no baseline at all.
    if (
        not args.quick
        and baseline is not None
        and not baseline.get("meta", {}).get("quick")
    ):
        regressions = compare_to_baseline(baseline, report["cells"])
        report["regressions"] = regressions
        for finding in regressions:
            print("regression: %s" % finding)

    report["backend_cells"] = bench_backend_cells(limits, rounds)

    batch = bench_batch(circuit_names, engines, limits, args.jobs)
    report["batch"] = batch
    if not batch["deterministic"]:
        print("** MISMATCH: jobs=1 and jobs=%d merged reports differ **"
              % args.jobs)
        failed = True
    print(
        "batch      %d cells  jobs=1 %8.2fs  jobs=%d %8.2fs  "
        "speedup %5.2fx  deterministic %s"
        % (
            batch["cells"],
            batch["sequential_s"],
            batch["jobs"],
            batch["parallel_s"],
            batch["speedup"],
            batch["deterministic"],
        )
    )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote", args.output)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

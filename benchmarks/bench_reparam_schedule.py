"""Section 3 note: dynamic quantification scheduling for re-parameterization.

The paper: "we use a dynamic quantification schedule based on a simple
support based cost heuristic.  (Computing the cost dynamically does not
impose much additional overhead, since we compute supports to avoid BDD
operations on vector components that do not depend on the variable
being quantified)."

This bench runs full BFV reachability with the three available
schedules — ``support`` (the paper's heuristic), ``size`` (BDD-size
weighted) and ``fixed`` (declaration order, no dynamism) — and reports
the time and BDD operation counts.
"""

import pytest

from repro.bfv.reparam import SCHEDULES
from repro.circuits import surrogates
from repro.order import order_for
from repro.reach import ReachLimits, bfv_reachability

from .conftest import run_once

_LIMITS = ReachLimits(max_seconds=40.0, max_live_nodes=100_000)
_CIRCUITS = ["s1269s", "s3271s", "s4863s"]
_ROWS = {}


def _render(rows):
    lines = ["circuit    schedule  time(s)   bdd-ops"]
    for (name, schedule), row in sorted(rows.items()):
        lines.append(
            "%-10s %-9s %7.2f %9d" % (name, schedule, row["s"], row["ops"])
        )
    return "\n".join(lines)


@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("circuit_name", _CIRCUITS)
def test_reparam_schedule(benchmark, registry, circuit_name, schedule):
    circuit = surrogates.SUITE[circuit_name]()
    slots = order_for(circuit, "S1")

    def run():
        return bfv_reachability(
            circuit,
            slots=slots,
            limits=_LIMITS,
            schedule=schedule,
            order_name="S1",
            count_states=False,
        )

    result = run_once(benchmark, run)
    assert result.completed
    space = result.extra["space"]
    _ROWS[(circuit_name, schedule)] = {
        "s": result.seconds,
        "ops": space.bdd.op_count,
    }
    benchmark.extra_info["seconds"] = result.seconds
    registry.add_block(
        "Sec 3 quantification schedules for re-parameterization",
        _render(_ROWS),
    )

"""Scaling micro-benchmarks for the paper's core set algorithms.

Measures union (Sec 2.3), intersection (Sec 2.4) and parameter
elimination (Sec 2.6) as the vector width grows, on structured sets
where the representations stay polynomial.  The intersection is the
paper's quadratic-BDD-operation algorithm; union and elimination are
linear passes — the op-count columns make that visible.
"""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import from_characteristic, intersect, union
from repro.bfv.reparam import eliminate_params

from .conftest import chi_points

_WIDTHS = [8, 16, 24]
_OPS_ROWS = {}


def _pair(width, seed):
    rng = random.Random(seed)
    bdd = BDD(["v%d" % i for i in range(width)])
    variables = tuple(range(width))
    make = lambda: {
        tuple(rng.random() < 0.5 for _ in range(width))
        for _ in range(48)
    }
    left = from_characteristic(
        bdd, variables, chi_points(bdd, variables, make())
    )
    right = from_characteristic(
        bdd, variables, chi_points(bdd, variables, make())
    )
    return bdd, left, right


@pytest.mark.parametrize("width", _WIDTHS)
def test_union_scaling(benchmark, registry, width):
    bdd, left, right = _pair(width, seed=width)

    def run():
        bdd.op_count = 0
        result = union(left, right)
        return bdd.op_count, result

    ops, result = benchmark(run)
    assert result.count() >= max(left.count(), right.count())
    _OPS_ROWS[("union", width)] = ops
    benchmark.extra_info["bdd_ops"] = ops
    registry.add_block(
        "Set-operation BDD-op scaling",
        "\n".join(
            "%-13s width=%-3d ops=%d" % (op, w, count)
            for (op, w), count in sorted(_OPS_ROWS.items())
        ),
    )


@pytest.mark.parametrize("width", _WIDTHS)
def test_intersection_scaling(benchmark, registry, width):
    bdd, left, right = _pair(width, seed=100 + width)
    both = union(left, right)

    def run():
        bdd.op_count = 0
        result = intersect(both, left)
        return bdd.op_count, result

    ops, result = benchmark(run)
    assert result == left  # left is a subset of the union
    _OPS_ROWS[("intersection", width)] = ops
    benchmark.extra_info["bdd_ops"] = ops
    registry.add_block(
        "Set-operation BDD-op scaling",
        "\n".join(
            "%-13s width=%-3d ops=%d" % (op, w, count)
            for (op, w), count in sorted(_OPS_ROWS.items())
        ),
    )


@pytest.mark.parametrize("width", [6, 10, 14])
def test_elimination_scaling(benchmark, registry, width):
    rng = random.Random(width)
    params = 6
    names = ["v%d" % i for i in range(width)] + [
        "w%d" % i for i in range(params)
    ]
    bdd = BDD(names)
    choice_vars = tuple(range(width))
    param_vars = list(range(width, width + params))
    raw = []
    for _ in range(width):
        f = bdd.false
        for _ in range(3):
            cube = {
                v: rng.random() < 0.5
                for v in rng.sample(param_vars, 3)
            }
            f = bdd.or_(f, bdd.cube(cube))
        raw.append(f)
        bdd.incref(f)

    def run():
        bdd.op_count = 0
        comps = eliminate_params(bdd, choice_vars, raw, param_vars)
        return bdd.op_count, comps

    ops, comps = benchmark(run)
    assert len(comps) == width
    _OPS_ROWS[("eliminate", width)] = ops
    benchmark.extra_info["bdd_ops"] = ops
    registry.add_block(
        "Set-operation BDD-op scaling",
        "\n".join(
            "%-13s width=%-3d ops=%d" % (op, w, count)
            for (op, w), count in sorted(_OPS_ROWS.items())
        ),
    )

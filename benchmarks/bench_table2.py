"""Table 2 reproduction: reachability, VIS-IWLS95 baseline vs BFV.

The paper's Table 2 runs both tools on five ISCAS'89 circuits under
fixed variable orders from five sources (S1/S2/D/P/O), reporting
runtime and peak live BDD nodes, with T.O./M.O. entries where a tool
could not complete.  This grid does the same over the surrogate suite
(see DESIGN.md Section 5 for the substitution): one benchmark per
(circuit, order, engine) cell; the composed table is printed at the end
of the session and appended to ``benchmarks/results.txt``.

Expected shape (the paper's claims):

* the BFV engine completes the correlated-datapath circuits (s3271s,
  s4863s) under *every* order with tiny representations, while the
  characteristic-function engine degrades or dies under orders that
  separate related bits;
* the characteristic-function engine wins the control-dominated
  circuits (s1512s, s3330s), where BFV runs against its per-parameter
  union cost and may time out;
* peak-node columns favour BFV wherever the reached set has functional
  dependencies.
"""

import pytest

from repro.circuits import surrogates
from repro.order import order_for
from repro.reach import ENGINES

from .conftest import ORDER_FAMILIES, TABLE2_LIMITS, run_once

_CIRCUITS = {name: factory() for name, factory in surrogates.SUITE.items()}
_ORDERS = {
    (name, family): order_for(circuit, family)
    for name, circuit in _CIRCUITS.items()
    for family in ORDER_FAMILIES
}


@pytest.mark.parametrize("engine", ["tr", "bfv"])
@pytest.mark.parametrize("family", ORDER_FAMILIES)
@pytest.mark.parametrize("circuit_name", list(surrogates.SUITE))
def test_table2_cell(benchmark, registry, circuit_name, family, engine):
    circuit = _CIRCUITS[circuit_name]
    slots = _ORDERS[(circuit_name, family)]

    def run():
        return ENGINES[engine](
            circuit,
            slots=slots,
            limits=TABLE2_LIMITS,
            order_name=family,
            count_states=False,
        )

    result = run_once(benchmark, run)
    registry.add_result(result)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["peak_live_nodes"] = result.peak_live_nodes
    benchmark.extra_info["iterations"] = result.iterations

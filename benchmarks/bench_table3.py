"""Table 3 reproduction: reached-set size, characteristic function vs BFV.

The paper's Table 3 converts the reached set of s4863 (computed by the
BFV flow) to a characteristic function and compares the BDD size with
the *shared* size of the BFV components, under four order families —
showing the BFV representation is dramatically smaller and far less
order-sensitive.  Same measurement here on the s4863s surrogate.
"""

import pytest

from repro.bfv import to_characteristic
from repro.circuits import surrogates
from repro.order import order_for
from repro.reach import bfv_reachability, format_table3

from .conftest import ORDER_FAMILIES, TABLE2_LIMITS, run_once

_CIRCUIT = surrogates.s4863s()
_SIZES = {}


@pytest.mark.parametrize("family", ORDER_FAMILIES)
def test_table3_sizes(benchmark, registry, family):
    slots = order_for(_CIRCUIT, family)

    def run():
        result = bfv_reachability(
            _CIRCUIT,
            slots=slots,
            limits=TABLE2_LIMITS,
            order_name=family,
            count_states=False,
        )
        assert result.completed
        reached = result.extra["reached"]
        space = result.extra["space"]
        chi = to_characteristic(reached)
        return {
            "bfv": reached.shared_size(),
            "chi": space.bdd.dag_size(chi),
        }

    sizes = run_once(benchmark, run)
    _SIZES[family] = sizes
    benchmark.extra_info.update(sizes)
    registry.add_block(
        "Table 3: reached-set sizes for s4863s (chi vs shared BFV)",
        format_table3(_SIZES),
    )
    # The paper's headline: BFV is much more compact on this circuit.
    assert sizes["bfv"] * 5 < sizes["chi"]

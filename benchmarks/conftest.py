"""Shared benchmark infrastructure.

Each benchmark module reproduces one table, figure or claim of the
paper (see DESIGN.md Section 4 for the experiment index).  Reachability
cells run once (``benchmark.pedantic(rounds=1)``) under the budgets in
:data:`TABLE2_LIMITS`; per-cell engine statistics are collected in a
session-wide registry and the paper-shaped tables are printed at the
end of the run (and appended to ``benchmarks/results.txt``).
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.reach import ReachLimits, format_table2

#: The paper ran under 10 h / 1 GB on an UltraSPARC-II; the surrogate
#: suite runs under 25 s / 60k live nodes per cell, which produces the
#: same completes/T.O./M.O. pattern at reproduction scale.
TABLE2_LIMITS = ReachLimits(max_seconds=25.0, max_live_nodes=60_000)

#: Order families included in the grids, in the paper's spelling.
ORDER_FAMILIES = ("S1", "S2", "D", "P", "O")

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


class ResultRegistry:
    """Collects ReachResults and free-form report blocks for the session."""

    def __init__(self) -> None:
        self.table2_results: List = []
        self.blocks: Dict[str, str] = {}

    def add_result(self, result) -> None:
        self.table2_results.append(result)

    def add_block(self, title: str, text: str) -> None:
        self.blocks[title] = text

    def render(self) -> str:
        sections = []
        if self.table2_results:
            sections.append(
                "== Table 2: reachability, VIS-IWLS95 (tr) vs BFV ==\n"
                + format_table2(self.table2_results)
            )
        for title in sorted(self.blocks):
            sections.append("== %s ==\n%s" % (title, self.blocks[title]))
        return "\n\n".join(sections)


@pytest.fixture(scope="session")
def registry():
    store = ResultRegistry()
    yield store
    text = store.render()
    if text:
        print("\n\n" + text + "\n")
        with open(_RESULTS_PATH, "a") as handle:
            handle.write(text + "\n\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run a callable exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def chi_points(bdd, choice_vars, points):
    """Characteristic function of a set of concrete points."""
    chi = bdd.false
    for point in points:
        chi = bdd.or_(chi, bdd.cube(dict(zip(choice_vars, point))))
    return chi

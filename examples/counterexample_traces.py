#!/usr/bin/env python3
"""Symbolic model checking with counterexample traces.

Exercises ``repro.mc`` — the "symbolic simulation based model checker"
the paper names as future work — on three scenarios:

1. the FIFO controller can fill up (an output property violation,
   with the shortest push sequence as the trace);
2. a combination lock opens exactly on its secret code (the extracted
   trace *is* the code);
3. the token ring's mutual exclusion holds (a proof, no trace).

Every counterexample is replayed on the gate-level simulator before
being returned, so what is printed is a genuine input sequence.

Run:  python examples/counterexample_traces.py
"""

from repro.circuits import generators
from repro.mc import check_invariant, exactly_one, output_never_high


def print_trace(trace, input_nets):
    print("    cycle  " + "  ".join("%-5s" % n for n in input_nets))
    for cycle, step in enumerate(trace.inputs):
        values = "  ".join(
            "%-5d" % int(step[n]) for n in input_nets
        )
        print("    %5d  %s" % (cycle, values))


def main():
    print("-- 1. 'the FIFO never fills up' (false) --")
    fifo = generators.fifo_controller(2)
    result = check_invariant(fifo, output_never_high("full"))
    print("holds:", result.holds)
    trace = result.counterexample
    print("  shortest violating run: %d cycles" % len(trace))
    print_trace(trace, fifo.inputs)
    pushes = sum(step["push"] and not step["pop"] for step in trace.inputs)
    print("  (needs %d net pushes to fill depth-4 FIFO)" % pushes)
    print()

    print("-- 2. 'the lock never opens' (false: the code opens it) --")
    code = [True, False, True, True, False]
    lock = generators.combination_lock(code)
    result = check_invariant(lock, output_never_high("at_end"))
    print("holds:", result.holds)
    extracted = [step["key"] for step in result.counterexample.inputs]
    print("  secret code extracted from the counterexample:", extracted)
    assert extracted == code
    print()

    print("-- 3. token ring mutual exclusion (true) --")
    ring = generators.token_ring(7)
    result = check_invariant(
        ring, exactly_one(ring.state_nets), count_states=True
    )
    print(
        "holds:", result.holds,
        "| reachable states:", result.num_states,
        "| fix point after", result.iterations, "images",
    )


if __name__ == "__main__":
    main()

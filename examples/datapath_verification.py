#!/usr/bin/env python3
"""Datapath verification: STE assertions + sequential equivalence.

Two verification styles built on the same substrate as the paper's
reachability flows:

* **Symbolic trajectory evaluation** (paper Sec 1's neighbour
  technique, implemented in ``repro.ste``): prove cycle-accurate
  datapath properties of a shift register without any fix-point
  computation — drive a symbolic value in, assert it emerges N cycles
  later;
* **Sequential equivalence checking** (``repro.mc.check_equivalence``):
  compare a reference counter against a NAND-restructured
  implementation and against a buggy one, extracting the distinguishing
  input sequence for the bug.

Run:  python examples/datapath_verification.py
"""

from repro.bdd import BDD
from repro.circuits import generators
from repro.circuits.netlist import Circuit
from repro.mc import check_equivalence, distinguishing_inputs
from repro.ste import STE, equals, guard, is0, is1, next_


def ste_shift_register(depth=6):
    print("-- STE: %d-stage shift register pipeline --" % depth)
    circuit = generators.shift_register(depth)
    bdd = BDD(["v"])
    engine = STE(bdd, circuit)
    v = bdd.var("v")
    antecedent = equals(bdd, "d", "v")
    out = "s%d" % (depth - 1)
    on_time = next_(
        guard(v, is1(out)) & guard(bdd.not_(v), is0(out)), depth
    )
    result = engine.check(antecedent, on_time)
    print("  value emerges after %d cycles: %s" % (depth, result.passes))
    too_early = next_(guard(v, is1(out)), depth - 1)
    result = engine.check(antecedent, too_early)
    print("  ... but not a cycle earlier:  %s" % (not result.passes))
    print()


def restructured_counter(n):
    """The counter with its carry chain rebuilt from NAND pairs."""
    circuit = Circuit("counter%d_nand" % n)
    circuit.add_input("en")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    carry = "en"
    for i in range(n):
        bit = "s%d" % i
        circuit.xor("ns%d" % i, bit, carry)
        if i < n - 1:
            circuit.add_gate("nn%d" % i, "NAND", (carry, bit))
            circuit.not_("cy%d" % i, "nn%d" % i)
            carry = "cy%d" % i
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def broken_counter(n):
    """A counter with an off-by-one carry bug in the top stage."""
    circuit = Circuit("counter%d_bug" % n)
    circuit.add_input("en")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    carry = "en"
    for i in range(n):
        bit = "s%d" % i
        if i == n - 1:
            circuit.xor("ns%d" % i, bit, "s%d" % (i - 1))  # BUG
        else:
            circuit.xor("ns%d" % i, bit, carry)
            circuit.and_("cy%d" % i, carry, bit)
            carry = "cy%d" % i
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def equivalence_checks(n=5):
    print("-- sequential equivalence: %d-bit counters --" % n)
    golden = generators.counter(n)
    good = restructured_counter(n)
    result = check_equivalence(golden, good)
    print("  NAND-restructured implementation: %s"
          % ("EQUIVALENT" if result.holds else "NOT equivalent"))
    bad = broken_counter(n)
    result = check_equivalence(golden, bad)
    print("  buggy implementation:              %s"
          % ("EQUIVALENT" if result.holds else "NOT equivalent"))
    inputs = distinguishing_inputs(result)
    print("  distinguishing sequence (%d cycles): en = %s"
          % (len(inputs), [int(step["en"]) for step in inputs]))


def main():
    ste_shift_register()
    equivalence_checks()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Safety (invariant) checking via BFV reachability.

The paper closes with "we would also like to develop a symbolic
simulation based model checker"; invariant checking is its simplest
form, and it needs exactly the machinery the paper contributes: compute
the reached set as a canonical BFV, then check that every reached state
satisfies the property — an intersection / containment query performed
directly on vectors, no characteristic function required.

Three properties are checked:

1. token ring: *mutual exclusion* — exactly one station holds the token;
2. FIFO controller: the *occupancy law* — tail - head == count (mod depth);
3. a deliberately broken property, to show counterexample extraction.

Run:  python examples/invariant_checking.py
"""

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, intersect
from repro.circuits import generators
from repro.reach import bfv_reachability


def check_invariant(circuit, name, chi_builder):
    """Reach with the BFV engine, then check containment in the property.

    ``chi_builder(bdd, var_of)`` returns the property's characteristic
    function over the state variables; it is converted to a canonical
    BFV once, and the check is ``reached == reached INTERSECT property``
    — pure vector manipulation.
    """
    result = bfv_reachability(circuit, count_states=True)
    assert result.completed
    space = result.extra["space"]
    reached = result.extra["reached"]
    var_of = {net: space.state_var[net] for net in space.state_order}
    chi = chi_builder(space.bdd, var_of)
    prop = from_characteristic(space.bdd, space.s_vars, chi)
    holds = reached.is_subset(prop)
    print(
        "%-34s reached states: %-6d  invariant %s"
        % (name, result.num_states, "HOLDS" if holds else "VIOLATED")
    )
    if not holds:
        # Counterexample: a reached state outside the property.  The
        # BFV has no negation, so diff via the characteristic function
        # of the property only (the reached set stays a vector).
        bad = space.bdd.diff(reached.to_characteristic(), chi)
        model = space.bdd.pick_model(bad, care_vars=space.s_vars)
        witness = {
            net: model["s_" + net] for net in space.state_order
        }
        print("    counterexample state:", witness)
    return holds


def one_hot(bdd, variables):
    """Characteristic function of 'exactly one variable is true'."""
    total = bdd.false
    for v in variables:
        term = bdd.true
        for w in variables:
            literal = bdd.var(w) if w == v else bdd.not_(bdd.var(w))
            term = bdd.and_(term, literal)
        total = bdd.or_(total, term)
    return total


def main():
    # 1. Token ring: one-hot invariant (mutual exclusion).
    ring = generators.token_ring(6)
    check_invariant(
        ring,
        "token ring: exactly one token",
        lambda bdd, var_of: one_hot(bdd, list(var_of.values())),
    )

    # 2. FIFO: occupancy law tail - head == count (mod depth).
    bits = 2
    fifo = generators.fifo_controller(bits)

    def occupancy_law(bdd, var_of):
        depth = 1 << bits
        chi = bdd.false
        for head in range(depth):
            for count in range(depth + 1):
                tail = (head + count) % depth
                assignment = {}
                for i in range(bits):
                    assignment[var_of["h%d" % i]] = bool(head >> i & 1)
                    assignment[var_of["t%d" % i]] = bool(tail >> i & 1)
                for i in range(bits + 1):
                    assignment[var_of["c%d" % i]] = bool(count >> i & 1)
                chi = bdd.or_(chi, bdd.cube(assignment))
        return chi

    check_invariant(fifo, "FIFO: tail - head == count", occupancy_law)

    # 3. A property that is genuinely false: "the counter never reaches
    # its maximum value" -- reachability finds the violation.
    counter = generators.counter(4)

    def never_max(bdd, var_of):
        all_ones = bdd.conjoin([bdd.var(v) for v in var_of.values()])
        return bdd.not_(all_ones)

    ok = check_invariant(counter, "counter: never reaches 1111 (false!)", never_max)
    assert not ok


if __name__ == "__main__":
    main()

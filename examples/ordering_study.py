#!/usr/bin/env python3
"""Variable-ordering robustness study (paper Section 3).

The paper argues that BFV "variable ordering requirements are less
restrictive" because functional dependencies between state bits are
factored out by the representation: for
``chi = (v1<->v2)(v3<->v4)(v5<->v6)`` a characteristic function needs
each pair adjacent in the order, "with the Boolean functional vector,
all orderings are good in this case".

This script makes that concrete twice over:

* statically — representing the pairs-equal set under progressively
  worse orders and printing both sizes;
* dynamically — running full reachability on the coupled-pairs circuit
  (the s3271s surrogate's core) under a good and a bad order with both
  engines, showing the chi engine degrade while BFV does not.

Run:  python examples/ordering_study.py
"""

import random

from repro.bdd import BDD
from repro.bfv import from_characteristic
from repro.circuits import generators
from repro.order import order_for
from repro.reach import ReachLimits, bfv_reachability, tr_reachability


def static_study(pairs=8):
    print("-- static: the pairs-equal set under different orders --")
    layouts = {
        "pairs adjacent": [
            name for j in range(pairs) for name in ("a%d" % j, "b%d" % j)
        ],
        "pairs separated": ["a%d" % j for j in range(pairs)]
        + ["b%d" % j for j in range(pairs)],
    }
    shuffled = list(layouts["pairs adjacent"])
    random.Random(7).shuffle(shuffled)
    layouts["random shuffle"] = shuffled
    print("%-18s %12s %18s" % ("order", "chi size", "BFV shared size"))
    for title, order in layouts.items():
        bdd = BDD(order)
        chi = bdd.true
        for j in range(pairs):
            chi = bdd.and_(
                chi, bdd.equiv(bdd.var("a%d" % j), bdd.var("b%d" % j))
            )
        vec = from_characteristic(
            bdd, [bdd.var_index(n) for n in order], chi
        )
        print(
            "%-18s %12d %18d"
            % (title, bdd.dag_size(chi), vec.shared_size())
        )
    print()


def dynamic_study(pairs=10):
    print("-- dynamic: reachability on coupled pairs (%d pairs) --" % pairs)
    circuit = generators.coupled_pairs(pairs)
    limits = ReachLimits(max_seconds=30.0, max_live_nodes=60_000)
    orders = {
        "S1 (good: pairs adjacent)": order_for(circuit, "S1"),
        "O  (bad: random shuffle)": order_for(circuit, "O"),
    }
    print(
        "%-28s %16s %16s" % ("order", "tr (chi) engine", "bfv engine")
    )
    for title, slots in orders.items():
        cells = []
        for engine in (tr_reachability, bfv_reachability):
            result = engine(
                circuit,
                slots=slots,
                limits=limits,
                count_states=False,
            )
            cells.append(
                "%s / %dK nodes"
                % (result.status, result.peak_live_nodes // 1000)
                if result.peak_live_nodes >= 1000
                else "%s / %d nodes" % (result.status, result.peak_live_nodes)
            )
        print("%-28s %16s %16s" % (title, cells[0], cells[1]))
    print()
    print(
        "The characteristic-function engine's peak explodes under the bad\n"
        "order; the BFV engine is essentially order-blind on this family."
    )


def main():
    static_study()
    dynamic_study()


if __name__ == "__main__":
    main()

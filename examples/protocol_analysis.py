#!/usr/bin/env python3
"""Protocol analysis: coherence invariants and backward diagnosis.

Analyzes the MSI cache-coherence model three ways:

1. **forward** — BFV reachability proves the coherence invariant
   (at most one Modified copy, M excludes all other copies);
2. **backward** — pre-image iteration answers "which states could ever
   evolve into a double-Modified configuration?" and confirms the reset
   state is not among them;
3. **what-if** — seeding reachability from a corrupted initial state
   shows the protocol does *not* self-stabilize from an incoherent
   start (a finding, not a bug: MSI assumes a coherent reset).

Run:  python examples/protocol_analysis.py
"""

import itertools

from repro.circuits.protocols import msi_coherence
from repro.mc import check_invariant, state_predicate
from repro.reach import backward_reachability, bfv_reachability
from repro.reach.backward import can_reach

CACHES = 3


def coherent(state):
    pairs = [(state["m%d" % i], state["s%d" % i]) for i in range(CACHES)]
    modified = [i for i, (m, _s) in enumerate(pairs) if m]
    if len(modified) > 1:
        return False
    for i in modified:
        if pairs[i][1]:
            return False
        for j, (m, s) in enumerate(pairs):
            if j != i and (m or s):
                return False
    return True


def bad_states(circuit):
    """All incoherent state encodings (for the backward query)."""
    nets = circuit.state_nets
    out = []
    for bits in itertools.product([False, True], repeat=len(nets)):
        if not coherent(dict(zip(nets, bits))):
            out.append(bits)
    return out


def main():
    circuit = msi_coherence(CACHES)
    print("MSI model:", circuit)

    print("\n-- 1. forward: proving coherence --")
    result = check_invariant(
        circuit, state_predicate(coherent), count_states=True
    )
    print(
        "coherence invariant holds:", result.holds,
        "| reachable states:", result.num_states,
        "(of %d encodings)" % (1 << circuit.num_latches),
    )

    print("\n-- 2. backward: can anything become incoherent? --")
    targets = bad_states(circuit)
    print("incoherent encodings:", len(targets))
    backward = backward_reachability(circuit, targets)
    print(
        "states that could evolve into incoherence:",
        backward.num_states,
    )
    reaches = can_reach(circuit, targets)
    print("reset state among them:", reaches, "(protocol is safe)")

    print("\n-- 3. what-if: corrupted reset (two Modified copies) --")
    nets = circuit.state_nets
    corrupted = tuple(
        net in ("m0", "m1") for net in nets
    )
    forward = bfv_reachability(
        circuit, initial_points=[corrupted], count_states=True
    )
    space = forward.extra["space"]
    reached = forward.extra["reached"]
    index = {net: i for i, net in enumerate(space.state_order)}
    still_bad = sum(
        not coherent({net: point[index[net]] for net in nets})
        for point in reached.enumerate()
    )
    print(
        "from a double-M start: %d reachable states, %d incoherent"
        % (forward.num_states, still_bad)
    )
    print("(MSI relies on a coherent reset; it does not self-stabilize)")


if __name__ == "__main__":
    main()

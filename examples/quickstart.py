#!/usr/bin/env python3
"""Quickstart: sets as canonical Boolean functional vectors.

Reproduces the paper's Section 2 worked example (Table 1) and walks
through every set operation the paper contributes: construction,
union (Sec 2.3), intersection (Sec 2.4), quantification (Sec 2.5),
re-parameterization (Sec 2.6) and the conjunctive-decomposition
correspondence (Sec 2.7).

Run:  python examples/quickstart.py
"""

from repro.bdd import BDD
from repro.bfv import (
    BFV,
    from_characteristic,
    reparameterize,
    to_characteristic,
)
from repro.bfv.conjunctive import ConjunctiveDecomposition


def show(title, vector):
    members = sorted(
        "".join("1" if bit else "0" for bit in point)
        for point in vector.enumerate()
    )
    print(
        "%-28s %-38s shared BDD size: %d"
        % (title, "{" + ", ".join(members) + "}", vector.shared_size())
    )


def main():
    # Three set bits; choice variable v_i is identified with bit i,
    # exactly as in the paper.
    bdd = BDD(["v1", "v2", "v3"])
    bits = (0, 1, 2)

    print("-- Table 1: S = {000, 001, 010, 011, 100, 101} --")
    # chi expresses "the first two bits cannot both be 1".
    chi = bdd.not_(bdd.and_(bdd.var("v1"), bdd.var("v2")))
    table1 = from_characteristic(bdd, bits, chi)
    show("S", table1)
    print(
        "components: f1 = v1, f2 = (NOT v1) AND v2, f3 = v3  ->",
        table1.components
        == (
            bdd.var("v1"),
            bdd.and_(bdd.not_(bdd.var("v1")), bdd.var("v2")),
            bdd.var("v3"),
        ),
    )
    # The canonical selection maps any choice vector to the d-nearest
    # member: 110 and 111 are not in S and map to 100 / 101.
    print("select(110) ->", table1.select((True, True, False)))
    print("select(111) ->", table1.select((True, True, True)))
    print()

    print("-- Union (Sec 2.3: exclusion conditions) --")
    left = BFV.from_points(bdd, bits, [(False, False, False), (False, False, True)])
    right = BFV.from_points(bdd, bits, [(False, True, True)])
    show("A", left)
    show("B", right)
    show("A union B", left.union(right))
    print()

    print("-- Intersection (Sec 2.4: elimination conditions) --")
    odd = from_characteristic(
        bdd,
        bits,
        bdd.xor(bdd.var("v1"), bdd.xor(bdd.var("v2"), bdd.var("v3"))),
    )
    show("S (no 11x)", table1)
    show("odd parity", odd)
    show("intersection", table1.intersect(odd))
    empty = left.intersect(right)
    print("disjoint intersection is the flagged empty set:", empty.is_empty)
    print()

    print("-- Quantification (Sec 2.5) --")
    show("smooth(S, bit 1)", table1.smooth(0))
    show("consensus(S, bit 1)", table1.consensus(0))
    print()

    print("-- Re-parameterization (Sec 2.6) --")
    # A raw vector over two parameters (think: symbolic simulation
    # outputs over input variables): N = (w1, w1 XOR w2, NOT w1).
    w1 = bdd.add_var("w1")
    w2 = bdd.add_var("w2")
    raw = [
        bdd.var(w1),
        bdd.xor(bdd.var(w1), bdd.var(w2)),
        bdd.not_(bdd.var(w1)),
    ]
    image = reparameterize(bdd, bits, raw, [w1, w2])
    show("range of N(w1, w2)", image)
    print()

    print("-- Conjunctive decomposition (Sec 2.7) --")
    cd = ConjunctiveDecomposition.from_bfv(table1)
    print("constraints c_i = (v_i <-> f_i); conjunction == chi:",
          cd.to_characteristic() == chi)
    print("roundtrip to BFV is exact:", cd.to_bfv() == table1)
    print()

    print("-- No characteristic function was needed above; for export: --")
    print(
        "to_characteristic(S) == original chi:",
        to_characteristic(table1) == chi,
    )


if __name__ == "__main__":
    main()

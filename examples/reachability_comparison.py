#!/usr/bin/env python3
"""Compare the paper's reachability flows on a benchmark circuit.

Runs every registered engine — the BFV flow (paper Fig 2), the VIS/IWLS95
characteristic-function baseline, the Coudert-Berthet-Madre flow
(Fig 1) and the conjunctive-decomposition backend (Sec 2.7) — on one
circuit and prints a Table-2-style comparison.

Run:  python examples/reachability_comparison.py [circuit] [order]

  circuit: s1269s | s1512s | s3271s | s3330s | s4863s | s27
           | counter | lfsr | fifo   (default: s4863s)
  order:   S1 | S2 | D | P | O       (default: S1)
"""

import sys

from repro.circuits import generators, surrogates
from repro.circuits.iscas import s27
from repro.order import order_for
from repro.reach import ENGINES, ReachLimits, format_table2

CIRCUITS = dict(surrogates.SUITE)
CIRCUITS.update(
    {
        "s27": s27,
        "counter": lambda: generators.counter(8),
        "lfsr": lambda: generators.lfsr(8),
        "fifo": lambda: generators.fifo_controller(3),
    }
)


def main(argv):
    name = argv[1] if len(argv) > 1 else "s4863s"
    family = argv[2] if len(argv) > 2 else "S1"
    if name not in CIRCUITS:
        print("unknown circuit %r; one of %s" % (name, sorted(CIRCUITS)))
        return 1
    circuit = CIRCUITS[name]()
    print("circuit:", circuit, "| order family:", family)
    slots = order_for(circuit, family)
    limits = ReachLimits(max_seconds=60.0, max_live_nodes=200_000)

    results = []
    for engine_name, engine in ENGINES.items():
        result = engine(
            circuit,
            slots=slots,
            limits=limits,
            order_name=family,
            count_states=True,
        )
        results.append(result)
        detail = (
            "states=%s, representation size=%s nodes"
            % (result.num_states, result.reached_size)
            if result.completed
            else "did not complete (%s)" % result.status
        )
        extra = ""
        if engine_name == "cbm" and result.completed:
            extra = "  [%.2fs spent converting BFV <-> chi]" % (
                result.conversion_seconds
            )
        if result.completed and result.extra.get("exact") is False:
            extra += "  [flagged over-approximation]"
        print("  %-5s %s%s" % (engine_name, detail, extra))

    # The zonotope engine may report a flagged over-approximation; the
    # agreement check covers the exact results only.
    counts = {
        r.num_states
        for r in results
        if r.completed and r.extra.get("exact", True)
    }
    if len(counts) == 1:
        print("all completed engines agree on the reached set size:", counts.pop())
    print()
    print(format_table2(results, engines=tuple(ENGINES)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

#!/usr/bin/env bash
# Tracked benchmark baseline: current kernels vs the seed's recursive
# reference kernels, at the kernel level and end-to-end through the
# reachability engines.  Writes BENCH_kernels.json and BENCH_reach.json
# at the repository root.
#
# Usage: scripts/bench.sh [--quick]
#
# --quick shrinks every workload for CI smoke runs: timings become
# noisy and only the built-in correctness checks are meaningful.  Both
# benchmark scripts exit non-zero on a correctness mismatch (and only
# on a mismatch), so this script's exit code is a pure correctness
# gate.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== kernel microbenchmarks =="
python benchmarks/bench_kernels.py "$@"

echo "== reachability benchmarks =="
python benchmarks/bench_reach.py "$@"

echo "BENCH OK"

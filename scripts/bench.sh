#!/usr/bin/env bash
# Tracked benchmark baseline: current kernels vs the seed's recursive
# reference kernels, at the kernel level and end-to-end through the
# reachability engines (including the batch-scheduler jobs=1 vs jobs=N
# wall-clock comparison).  Writes BENCH_kernels.json and
# BENCH_reach.json at the repository root.
#
# Usage: scripts/bench.sh [--quick] [--jobs N]
#
# --quick shrinks every workload for CI smoke runs: timings become
# noisy and only the built-in correctness checks are meaningful.  Both
# benchmark scripts exit non-zero on a correctness mismatch (and only
# on a mismatch), so this script's exit code is a pure correctness
# gate.  --jobs sets the scheduler pool size for the batch phase of
# the reachability benchmark (default: the machine's core count).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

# --jobs belongs to the reachability benchmark only.
KERNEL_ARGS=()
REACH_ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs) REACH_ARGS+=("$1" "$2"); shift 2 ;;
        --jobs=*) REACH_ARGS+=("$1"); shift ;;
        *) KERNEL_ARGS+=("$1"); REACH_ARGS+=("$1"); shift ;;
    esac
done

echo "== kernel microbenchmarks =="
python benchmarks/bench_kernels.py ${KERNEL_ARGS[0]:+"${KERNEL_ARGS[@]}"}

echo "== reachability benchmarks =="
python benchmarks/bench_reach.py ${REACH_ARGS[0]:+"${REACH_ARGS[@]}"}

echo "BENCH OK"

#!/usr/bin/env bash
# Tier-1 CI gate: fast tests under a hard per-test timeout, then a
# smoke run of the fault-tolerant batch harness on two small builtins.
#
# Usage: scripts/ci.sh   (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== tier-1 test suite =="
# REPRO_TEST_TIMEOUT arms the SIGALRM guard in tests/conftest.py: any
# single test that hangs past the limit fails instead of wedging the job.
REPRO_TEST_TIMEOUT="${REPRO_TEST_TIMEOUT:-120}" \
    python -m pytest -q -m tier1 tests

echo "== batch harness smoke =="
# Two small built-in circuits through the full resilient path
# (process isolation, checkpointing, fallback ladder, journal).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
python -m repro batch traffic s27 \
    --max-seconds 120 \
    --checkpoint-dir "$SMOKE_DIR/ckpt" \
    --journal "$SMOKE_DIR/journal.jsonl"
test -s "$SMOKE_DIR/journal.jsonl"

echo "CI OK"

#!/usr/bin/env bash
# Tier-1 CI gate: fast tests under a hard per-test timeout, then a
# smoke run of the fault-tolerant batch harness on two small builtins —
# once sequentially, once on the parallel scheduler — checking that the
# two merged reports are byte-identical (the --jobs determinism
# guarantee).
#
# Usage: scripts/ci.sh   (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== repo-specific lint =="
# The custom AST rules (R001-R004, see docs/analysis.md) have no
# external dependencies and always gate.
python -m repro lint

echo "== tracked bytecode check =="
# .gitignore keeps __pycache__ out; this keeps it from sneaking back
# into the index via a force-add.
if [ -n "$(git ls-files '*.pyc' '*.pyo')" ]; then
    echo "tracked bytecode files found:" >&2
    git ls-files '*.pyc' '*.pyo' >&2
    exit 1
fi

echo "== deep lint (dataflow + call graph) =="
# The interprocedural analyzer (R101-R104 handle lifetimes, R201-R204
# concurrency; see docs/analysis.md and DESIGN.md section 17), gated
# against the committed baseline and a 60-second wall-time budget so
# the analysis stays cheap enough to run on every push.
DEEP_START=$SECONDS
python -m repro lint --deep --baseline lint-baseline.json
DEEP_SECONDS=$((SECONDS - DEEP_START))
echo "deep lint wall time: ${DEEP_SECONDS}s"
if [ "$DEEP_SECONDS" -ge 60 ]; then
    echo "deep lint exceeded the 60s budget (${DEEP_SECONDS}s)" >&2
    exit 1
fi

# Generic strict tooling (config in pyproject.toml) is an optional
# dependency like pytest-cov below: CI installs ruff+mypy, local runs
# without them simply skip the gates.
if python -m ruff --version >/dev/null 2>&1; then
    echo "== ruff =="
    python -m ruff check src tests
fi
if python -c "import mypy" 2>/dev/null; then
    echo "== mypy =="
    python -m mypy
fi

echo "== tier-1 test suite =="
# Coverage floor on the harness package (supervision, fallback,
# scheduling — the layer whose regressions are easiest to leave
# silently untested).  pytest-cov is an optional dependency: CI
# installs it, local runs without it simply skip the gate.
COV_ARGS=()
if python -c "import pytest_cov" 2>/dev/null; then
    COV_ARGS=(--cov=repro.harness --cov-report=term --cov-fail-under=75)
fi
# REPRO_TEST_TIMEOUT arms the SIGALRM guard in tests/conftest.py: any
# single test that hangs past the limit fails instead of wedging the job.
REPRO_TEST_TIMEOUT="${REPRO_TEST_TIMEOUT:-120}" \
    python -m pytest -q -m tier1 ${COV_ARGS[0]:+"${COV_ARGS[@]}"} tests

echo "== batch harness smoke =="
# Two small built-in circuits through the full resilient path
# (process isolation, checkpointing, fallback ladder, journal), at
# --jobs 1 and --jobs 2; the merged reports must match byte for byte.
SMOKE_DIR="${REPRO_SMOKE_DIR:-$(mktemp -d)}"
[ -n "${REPRO_SMOKE_DIR:-}" ] || trap 'rm -rf "$SMOKE_DIR"' EXIT
python -m repro batch traffic s27 \
    --max-seconds 120 \
    --checkpoint-dir "$SMOKE_DIR/ckpt1" \
    --journal "$SMOKE_DIR/journal-seq.jsonl" \
    --report "$SMOKE_DIR/report-seq.json"
python -m repro batch traffic s27 \
    --max-seconds 120 --jobs 2 \
    --checkpoint-dir "$SMOKE_DIR/ckpt2" \
    --journal "$SMOKE_DIR/journal.jsonl" \
    --report "$SMOKE_DIR/report-par.json"
test -s "$SMOKE_DIR/journal-seq.jsonl"
test -s "$SMOKE_DIR/journal.jsonl"
cmp "$SMOKE_DIR/report-seq.json" "$SMOKE_DIR/report-par.json"

echo "== serve smoke =="
# A real `python -m repro serve` subprocess under a 50-request storm:
# eight concurrent clients with duplicated requests (in-flight dedup +
# result cache), a crash-injected attempt the server must degrade to a
# resumable answer, a cancelled request, graceful SIGTERM shutdown, and
# a /proc scan proving no engine process outlived the server.
python scripts/serve_smoke.py

echo "== backend engine smoke =="
# The two non-BDD set backends (docs/backends.md) as first-class
# engines: one tier-1 cell each through the full CLI path, checking
# registration, the Kleene adapter loop, and result finalization.
python -m repro reach s27 --engine bitset --max-seconds 120
python -m repro reach s27 --engine zono --max-seconds 120

echo "== sanitized reach smoke =="
# Every engine (all eight: six BDD-substrate plus bitset/zono) under
# every-iteration invariant auditing (unique-table canonicity, cache
# replay vs the reference kernels, BFV canonical form); any violation
# aborts the run with the invariant's name.
python -m repro reach s27 --engine all --sanitize --max-seconds 120

echo "CI OK"

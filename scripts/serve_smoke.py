#!/usr/bin/env python
"""CI smoke for the reachability service: 50 concurrent requests.

Boots a real ``python -m repro serve`` subprocess and drives it the way
an unlucky day would: eight client threads firing duplicated requests
(so in-flight dedup and the result cache both matter), one request whose
supervised child is crash-injected every attempt (the server must
degrade to a resumable answer, not die), and one deliberately wedged
request that gets cancelled.  Afterwards the server is asked to shut
down gracefully and /proc is scanned for orphaned engine processes.

Exits nonzero with a message on any violated expectation.  Stdlib only.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

import concurrent.futures
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.faults import SERVE_PID_ENV_VAR  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

BANNER = re.compile(r"serving on ([\d.]+):(\d+) \(pid (\d+)\)")
CLIENTS = 8
REQUESTS = 48  # six per client thread, over eight request shapes

#: The duplicated request shapes.  The slow ones (a sub-second injected
#: hang) stay in flight long enough that their duplicates are dedup
#: hits, not cache hits.
SLOW = [{"kind": "hang", "at_iteration": 1, "seconds": 0.75}]
SHAPES = [
    {"circuit": "traffic"},
    {"circuit": "s27"},
    {"circuit": "traffic", "order": "S2"},
    {"circuit": "s27", "order": "S2"},
    {"circuit": "traffic", "count_states": False},
    {"circuit": "s27", "count_states": False},
    {"circuit": "traffic", "faults": SLOW},
    {"circuit": "s27", "faults": SLOW},
]


def fail(message):
    print("serve smoke FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def spawn_server(cache_dir, trace_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [sys.path[0]]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env.pop(SERVE_PID_ENV_VAR, None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--cache-dir", cache_dir,
            "--trace-dir", trace_dir,
            "--pool", "2",
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    match = BANNER.search(line)
    if not match:
        fail("no serve banner, got %r" % line)
    return proc, match.group(1), int(match.group(2)), int(match.group(3))


def orphans_of(server_pid):
    """Live pids whose environment names ``server_pid`` as their server."""
    if not os.path.isdir("/proc"):
        return []  # no orphan accounting on this platform
    needle = ("%s=%d" % (SERVE_PID_ENV_VAR, server_pid)).encode() + b"\0"
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == server_pid:
            continue
        try:
            with open("/proc/%s/environ" % entry, "rb") as handle:
                environ = handle.read()
        except OSError:
            continue
        if needle in environ:
            found.append(int(entry))
    return found


def client_worker(host, port, index, barrier):
    """One client thread: six requests, the first a synchronized wave.

    Every client fires the same slow request at the same instant (the
    barrier), so one attempt runs and the other seven are in-flight
    dedup hits; the remaining requests round-robin over the shapes and
    mostly land in the result cache.
    """
    statuses = []
    with ServeClient(host, port, timeout=120.0) as client:
        barrier.wait(timeout=60)
        statuses.append(
            client.reach(**dict(SHAPES[-1], max_seconds=120))["status"]
        )
        for turn in range(REQUESTS // CLIENTS - 1):
            shape = SHAPES[(index + turn) % len(SHAPES)]
            reply = client.reach(**dict(shape, max_seconds=120))
            statuses.append(reply["status"])
    return statuses


def subscriber_worker(host, port, barrier):
    """One live subscriber riding the storm: stream the wave's telemetry.

    Joins the synchronized wave (the barrier), then subscribes to the
    wave's fingerprint.  A ``miss`` just means the session has not
    registered yet (or the race lost) — retry; once ``streaming``,
    drain to the closing line.  Returns (iteration_events, protocol
    errors); the caller requires at least one of the former and exactly
    zero of the latter.
    """
    iteration_events = 0
    errors = []
    wave = SHAPES[-1]
    with ServeClient(host, port, timeout=120.0) as client:
        barrier.wait(timeout=60)
        for _ in range(200):  # ~10s of retries at worst
            try:
                messages = list(client.subscribe(**wave))
            except Exception as error:  # any protocol breakage is fatal
                errors.append(repr(error))
                break
            if messages[0].get("status") == "miss":
                time.sleep(0.05)
                continue
            if messages[0].get("status") != "streaming":
                errors.append("bad ack: %r" % (messages[0],))
                break
            closing = messages[-1]
            if closing.get("status") != "complete":
                errors.append("bad closing line: %r" % (closing,))
            for message in messages[1:-1]:
                if message.get("status") != "event":
                    errors.append("bad stream line: %r" % (message,))
                elif message["record"].get("event") == "iteration":
                    iteration_events += 1
            break
        else:
            errors.append("subscription never left miss")
    return iteration_events, errors


def main():
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    cache_dir = os.path.join(workdir, "cache")
    trace_dir = os.path.join(workdir, "trace")
    proc, host, port, server_pid = spawn_server(cache_dir, trace_dir)
    try:
        print("== 50-request storm against pid %d ==" % server_pid)
        barrier = threading.Barrier(CLIENTS + 1)
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=CLIENTS + 1
        )
        futures = [
            pool.submit(client_worker, host, port, index, barrier)
            for index in range(CLIENTS)
        ]
        subscriber = pool.submit(subscriber_worker, host, port, barrier)
        statuses = [
            status
            for future in concurrent.futures.as_completed(futures)
            for status in future.result()
        ]
        streamed, stream_errors = subscriber.result(timeout=120)
        pool.shutdown()
        if statuses.count("ok") != REQUESTS:
            fail("wanted %d ok replies, got %r" % (REQUESTS, statuses))
        if stream_errors:
            fail("subscriber protocol errors: %r" % stream_errors)
        if streamed < 1:
            fail("subscriber streamed no iteration events")
        print("subscriber streamed %d iteration events" % streamed)

        # Request 49: every attempt's supervised child is killed by an
        # injected crash; retries exhaust and the server degrades to a
        # resumable answer instead of dying or losing the request.
        with ServeClient(host, port, timeout=120.0) as client:
            reply = client.reach(
                "traffic",
                max_seconds=120,
                faults=[{"kind": "die", "at_iteration": 1, "max_hits": 1}],
            )
            if reply["status"] != "resumable":
                fail("crash-injected request got %r" % reply)
            if reply["result"]["extra"].get("retries_exhausted") != 3:
                fail("crash-injected request was not retried: %r" % reply)

            # Request 50: wedge an attempt, then cancel it.
            stuck_id = client.send(
                {
                    "op": "reach",
                    "circuit": "s27",
                    "max_seconds": 120,
                    "faults": [
                        {"kind": "hang", "at_iteration": 1, "seconds": 60}
                    ],
                }
            )
            time.sleep(0.5)
            cancel_reply = client.call({"op": "cancel", "target": stuck_id})
            if cancel_reply["status"] != "ok":
                fail("cancel was not acknowledged: %r" % cancel_reply)
            stuck_reply = client.wait(stuck_id)
            if stuck_reply["status"] != "cancelled":
                fail("cancelled request got %r" % stuck_reply)

            status = client.status()
        counters = status["counters"]
        sessions = status["sessions"]
        print(
            "counters: %s"
            % " ".join("%s=%d" % item for item in sorted(counters.items()))
        )
        print("dedup_hits=%d" % sessions["dedup_hits"])
        if counters["requests"] < REQUESTS + 2:
            fail("server saw %d requests" % counters["requests"])
        if sessions["dedup_hits"] < CLIENTS // 2:
            fail(
                "the synchronized wave produced only %d in-flight dedup "
                "hits" % sessions["dedup_hits"]
            )
        shared = sessions["dedup_hits"] + counters["cache_hits"]
        if shared < REQUESTS - len(SHAPES):
            fail(
                "deduplication did not happen: %d shared answers for %d "
                "requests over %d shapes"
                % (shared, REQUESTS, len(SHAPES))
            )
        if counters["cancelled"] < 1:
            fail("no cancellation recorded: %r" % counters)
        if counters["subscriptions"] < 1:
            fail("no subscription recorded: %r" % counters)
        if counters["stream_events"] < streamed:
            fail(
                "server counted %d stream events, subscriber saw %d"
                % (counters["stream_events"], streamed)
            )

        print("== graceful shutdown ==")
        proc.send_signal(signal.SIGTERM)
        if proc.wait(timeout=60) != 0:
            fail("server exited %r on SIGTERM" % proc.returncode)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        leftover = orphans_of(server_pid)
        if not leftover:
            break
        time.sleep(0.05)
    else:
        fail("orphaned engine processes survived: %r" % leftover)
    print("zero orphans for pid %d" % server_pid)
    shutil.rmtree(workdir, ignore_errors=True)
    print("serve smoke OK")


if __name__ == "__main__":
    main()

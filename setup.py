"""Setuptools shim.

The execution environment has no ``wheel`` package and no network, so PEP
517 editable installs (which build a wheel) fail; ``python setup.py
develop`` installs the package in editable mode without one.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

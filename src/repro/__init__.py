"""Reproduction of Goel & Bryant, "Set Manipulation with Boolean
Functional Vectors for Symbolic Reachability Analysis" (DATE 2003).

Layers (bottom up):

* :mod:`repro.bdd` — pure-Python ROBDD engine (the substrate).
* :mod:`repro.bfv` — the paper's contribution: canonical Boolean
  functional vectors with direct set union / intersection /
  quantification, re-parameterization, and McMillan's conjunctive
  decomposition.
* :mod:`repro.circuits` — sequential netlists, ISCAS'89 ``.bench`` I/O,
  generators and benchmark surrogates.
* :mod:`repro.sim` — symbolic and concrete simulation.
* :mod:`repro.order` — variable-order families (the paper's S1/S2/D/P/O).
* :mod:`repro.reach` — the reachability engines compared in the paper.
"""

from ._version import __version__
from .bdd import BDD, Function

__all__ = ["BDD", "Function", "__version__"]

"""Static and dynamic analysis for the reproduction itself.

Two heads, one goal — make the invariants everything else relies on
machine-checkable:

* :mod:`repro.analysis.sanitizer` — runtime audit passes over the live
  BDD manager (unique-table canonicity, order monotonicity, refcount /
  GC accounting, computed-table soundness), the Boolean functional
  vectors the engines accumulate (the paper's Section 2.2 canonical-form
  conditions), and persisted harness state (checkpoint / journal
  schemas).  Enabled with ``--sanitize[=rate]`` on ``reach`` / ``batch``
  or the ``REPRO_SANITIZE`` environment variable; violations raise
  :class:`repro.errors.SanitizerError` carrying the violated invariant's
  dotted name.

* :mod:`repro.analysis.lint` — AST-based repo-specific static checks
  (``python -m repro lint``): no recursive apply-style BDD kernels
  (R001), no nondeterminism in byte-identical output paths (R002), no
  node handles held across ``collect_garbage`` without incref (R003),
  no bare ``except`` in the harness (R004).

* :mod:`repro.analysis.dataflow` (+ :mod:`repro.analysis.callgraph`) —
  the flow-sensitive, interprocedural deep analyzer behind
  ``python -m repro lint --deep``: BDD handle lifetimes through a
  may-state lattice (leak R101, use-after-release R102, double release
  R103, unprotected handle across a may-GC call R104) and
  concurrency/fork-safety rules (blocking call in ``async def`` R201,
  lock-guarded attribute mutated unlocked R202, fork after non-daemon
  thread R203, wall clock in the monotonic domain R204).  Intentional
  suppressions live in the repo-root ``lint-baseline.json``.
"""

from .sanitizer import (
    Sanitizer,
    check_bdd_structure,
    check_bfv_canonical,
    check_cache_soundness,
    check_decomposition,
    check_refcounts,
    validate_checkpoint_meta,
    validate_journal_record,
)

__all__ = [
    "Sanitizer",
    "check_bdd_structure",
    "check_bfv_canonical",
    "check_cache_soundness",
    "check_decomposition",
    "check_refcounts",
    "validate_checkpoint_meta",
    "validate_journal_record",
]

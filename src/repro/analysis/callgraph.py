"""Project call graph + effect summaries for the deep analyzer.

The deep lint rules (:mod:`repro.analysis.dataflow`) are interprocedural:
R104 must know whether ``monitor.checkpoint(...)`` can reach a
``collect_garbage`` three calls down, and R203 must know whether a call
eventually forks.  This module builds the supporting structure once per
``lint --deep`` run:

* a :class:`FunctionInfo` per function/method in the analyzed tree,
  keyed by ``"dotted.module:Class.method"`` qualnames;
* conservative call resolution — local names, ``from``-imports between
  analyzed modules, ``self.method(...)`` within a class, and (for
  *may*-effect purposes only) attribute calls matched by method name
  against every analyzed class;
* boolean **effect summaries** propagated to a fixpoint over the graph:
  ``may_gc`` (can reach ``collect_garbage``/``maybe_collect``),
  ``may_fork`` (can reach ``os.fork`` / a ``Process``/
  ``ProcessPoolExecutor`` spawn) and ``may_start_thread`` (can reach a
  non-daemon ``threading.Thread`` creation).

Resolution is deliberately *may*-directed: when an attribute call could
target several same-named methods, every candidate's effects are
unioned.  That overshoots for effect propagation (safe for the rules
built on top, which only consume the summaries defensively) and never
invents an edge for names the project does not define.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Direct GC primitives (methods of :class:`repro.bdd.BDD`).
GC_PRIMITIVES = frozenset(["collect_garbage", "maybe_collect"])

#: Call shapes that create another process.
FORK_PRIMITIVES = frozenset(["fork", "forkpty"])
PROCESS_SPAWNERS = frozenset(["Process", "ProcessPoolExecutor"])


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def module_name(path: str) -> str:
    """Dotted module name for ``path``, rooted at the ``repro`` package.

    Files outside a ``repro`` package root (fixtures, scratch files) get
    their basename so they still participate in intra-module resolution.
    """
    parts = _posix(path).split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        root = len(parts) - 1 - parts[:-1][::-1].index("repro")
        dotted = parts[root:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted string of a Name/Attribute chain (``a.b.c``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("node", "line", "func_name", "dotted", "receiver")

    def __init__(self, node: ast.Call) -> None:
        self.node = node
        self.line = node.lineno
        self.dotted = dotted_name(node.func)
        if isinstance(node.func, ast.Name):
            self.func_name: Optional[str] = node.func.id
            self.receiver: Optional[str] = None
        elif isinstance(node.func, ast.Attribute):
            self.func_name = node.func.attr
            self.receiver = dotted_name(node.func.value)
        else:
            self.func_name = None
            self.receiver = None


class FunctionInfo:
    """One analyzed function/method and its locally visible facts."""

    __slots__ = (
        "qualname",
        "name",
        "path",
        "module",
        "cls",
        "node",
        "is_async",
        "calls",
        "may_gc",
        "may_fork",
        "may_start_thread",
    )

    def __init__(
        self,
        qualname: str,
        path: str,
        module: str,
        cls: Optional[str],
        node: ast.AST,
    ) -> None:
        self.qualname = qualname
        self.name = node.name  # type: ignore[attr-defined]
        self.path = path
        self.module = module
        self.cls = cls
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.calls: List[CallSite] = []
        # Effect seeds (direct primitives); widened by the fixpoint.
        self.may_gc = False
        self.may_fork = False
        self.may_start_thread = False


def _is_nondaemon_thread_ctor(call: ast.Call) -> bool:
    """``threading.Thread(...)`` (or bare ``Thread(...)``) without
    ``daemon=True``."""
    name = dotted_name(call.func)
    if name not in ("threading.Thread", "Thread"):
        return False
    for kw in call.keywords:
        if kw.arg == "daemon":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            )
    return True


def _is_fork_call(site: CallSite) -> bool:
    if site.dotted in ("os.fork", "os.forkpty"):
        return True
    return site.func_name in PROCESS_SPAWNERS


class ModuleInfo:
    """Parsed module: imports and the functions defined in it."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module_name(path)
        self.tree = tree
        #: local alias -> imported dotted target ("from x import f" maps
        #: ``f`` to ``x.f``; "import x.y as z" maps ``z`` to ``x.y``).
        self.imports: Dict[str, str] = {}
        self._collect_imports()

    def _collect_imports(self) -> None:
        package = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Resolve "from ..x import f" against this module's
                    # package; over-truncation just fails to resolve.
                    anchor = self.module.split(".")
                    anchor = anchor[: max(0, len(anchor) - node.level)]
                    base = ".".join(anchor + ([base] if base else []))
                elif not base:
                    base = package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        base + "." + alias.name if base else alias.name
                    )


class CallGraph:
    """Functions of every analyzed file + effect summaries at fixpoint."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> every class method with that name (may-targets)
        self.methods_by_name: Dict[str, List[str]] = {}
        #: bare function name -> module-level functions with that name
        self.functions_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> None:
        info = ModuleInfo(path, tree)
        self.modules[info.module] = info
        self._collect_functions(info)

    def _collect_functions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, cls: Optional[str], nesting: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name, nesting)
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    local = (
                        (cls + "." if cls else "")
                        + (nesting + "." if nesting else "")
                        + child.name
                    )
                    qualname = module.module + ":" + local
                    info = FunctionInfo(
                        qualname, module.path, module.module, cls, child
                    )
                    self.functions[qualname] = info
                    if cls:
                        self.methods_by_name.setdefault(
                            child.name, []
                        ).append(qualname)
                    elif not nesting:
                        self.functions_by_name.setdefault(
                            child.name, []
                        ).append(qualname)
                    self._collect_calls(info)
                    visit(child, cls, nesting + "." + child.name if nesting
                          else child.name)
                else:
                    visit(child, cls, nesting)

        visit(module.tree, None, "")

    def _collect_calls(self, info: FunctionInfo) -> None:
        """Record calls + effect seeds in ``info``'s own body only."""
        body: ast.AST = info.node

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue  # nested defs have their own FunctionInfo
                if isinstance(child, ast.Call):
                    site = CallSite(child)
                    info.calls.append(site)
                    if site.func_name in GC_PRIMITIVES:
                        info.may_gc = True
                    if _is_fork_call(site):
                        info.may_fork = True
                    if _is_nondaemon_thread_ctor(child):
                        info.may_start_thread = True
                visit(child)

        visit(body)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, caller: FunctionInfo, site: CallSite) -> List[str]:
        """Qualnames ``site`` may target (empty when unknown/external)."""
        targets: List[str] = []
        if site.receiver is None and site.func_name:
            name = site.func_name
            local = caller.module + ":" + name
            if local in self.functions:
                return [local]
            nested = (
                caller.module
                + ":"
                + (caller.cls + "." if caller.cls else "")
                + caller.name
                + "."
                + name
            )
            if nested in self.functions:
                return [nested]
            imported = self._resolve_import(caller.module, name)
            if imported:
                return [imported]
            # Same-named class: calling the constructor runs __init__.
            init = self.methods_by_name.get("__init__", [])
            targets = [q for q in init if q.split(":")[1].split(".")[0] == name]
            if targets:
                return targets
            return []
        if site.receiver == "self" and caller.cls and site.func_name:
            own = caller.module + ":" + caller.cls + "." + site.func_name
            if own in self.functions:
                return [own]
        if site.receiver and site.func_name:
            # Module-qualified call through an import alias.
            module_info = self.modules.get(caller.module)
            if module_info is not None:
                target_mod = module_info.imports.get(site.receiver)
                if target_mod and target_mod in self.modules:
                    qual = target_mod + ":" + site.func_name
                    if qual in self.functions:
                        return [qual]
            # Unknown receiver: every same-named method is a may-target.
            return list(self.methods_by_name.get(site.func_name, ()))
        return targets

    def _resolve_import(self, module: str, name: str) -> Optional[str]:
        info = self.modules.get(module)
        if info is None:
            return None
        target = info.imports.get(name)
        if not target:
            return None
        if "." in target:
            mod, _, attr = target.rpartition(".")
            if mod in self.modules:
                qual = mod + ":" + attr
                if qual in self.functions:
                    return qual
        if target in self.modules:
            return None  # a module object, not a function
        return None

    # ------------------------------------------------------------------
    # Effect fixpoint
    # ------------------------------------------------------------------

    def propagate_effects(self) -> None:
        """Union callee effects into callers until nothing changes."""
        callees: Dict[str, Set[str]] = {}
        for qual, info in self.functions.items():
            outs: Set[str] = set()
            for site in info.calls:
                outs.update(self.resolve(info, site))
            callees[qual] = outs
        changed = True
        while changed:
            changed = False
            for qual, info in self.functions.items():
                for callee in callees[qual]:
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    for effect in ("may_gc", "may_fork", "may_start_thread"):
                        if getattr(target, effect) and not getattr(
                            info, effect
                        ):
                            setattr(info, effect, True)
                            changed = True

    # ------------------------------------------------------------------
    # Queries used by the rules
    # ------------------------------------------------------------------

    def site_effects(
        self, caller: FunctionInfo, site: CallSite
    ) -> Tuple[bool, bool, bool]:
        """(may_gc, may_fork, may_start_thread) of one call site."""
        gc = site.func_name in GC_PRIMITIVES
        fork = _is_fork_call(site)
        thread = _is_nondaemon_thread_ctor(site.node)
        for qual in self.resolve(caller, site):
            target = self.functions.get(qual)
            if target is None:
                continue
            gc = gc or target.may_gc
            fork = fork or target.may_fork
            thread = thread or target.may_start_thread
        return gc, fork, thread


def build_call_graph(
    sources: Iterable[Tuple[str, ast.Module]]
) -> CallGraph:
    """Build + summarize a call graph from ``(path, tree)`` pairs."""
    graph = CallGraph()
    for path, tree in sources:
        graph.add_module(path, tree)
    graph.propagate_effects()
    return graph

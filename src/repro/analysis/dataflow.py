"""Deep lint (``python -m repro lint --deep``): interprocedural dataflow.

Where :mod:`repro.analysis.lint` is syntactic, this module is
*flow-sensitive* (statement-level CFG per function, worklist to a
fixpoint) and *interprocedural* (call graph + effect summaries from
:mod:`repro.analysis.callgraph`).  Two rule families:

**Handle lifetime (R101-R104).**  BDD node handles are plain ints whose
storage the manager reuses after GC; the engines therefore follow a
strict ``incref``/``decref`` discipline.  Each local bound to a handle
is abstracted into a small lattice of atoms:

* ``UNPROT`` — bound from a node-producing manager op, *not* protected;
* ``OWNED``  — protected by ``incref`` (one external reference);
* ``RELEASED`` — ``decref``'ed; the slot may be reused at the next GC;
* ``STALE`` — an unprotected handle that crossed a call which may reach
  ``collect_garbage``/``maybe_collect`` (transitive summary);
* ``ESCAPED`` — returned/yielded, stored into a container or attribute,
  captured by a closure, or passed to a call the analysis cannot see
  through — ownership left the function, all bets (and rules) are off.

States merge by union at CFG joins, so every atom means "on some path".

* ``R101`` — at function exit a var may still be ``OWNED`` and *no*
  path released or escaped it: a permanent external-reference leak.
* ``R102`` — a var that is ``RELEASED`` on **every** path is used.
* ``R103`` — a var that is ``RELEASED`` on **every** path is
  ``decref``'ed again.
* ``R104`` — a ``STALE`` var is used (generalizes the syntactic R003:
  the GC need not be a literal ``collect_garbage`` in this function).

**Concurrency / fork safety (R201-R204).**

* ``R201`` — a blocking call (``time.sleep``, ``subprocess.*``, bare
  ``open``, un-awaited ``*lock*.acquire()``, …) directly inside an
  ``async def`` stalls the whole event loop.
* ``R202`` — a class initializes ``self.<lock> = threading.Lock()`` and
  mutates some ``self.<attr>`` under ``with self.<lock>`` — any
  mutation of that attribute *outside* a lock block (``__init__``
  excepted) is a data race.
* ``R203`` — a non-daemon ``threading.Thread`` is created and *later on
  the same path* something forks (``os.fork`` / ``Process`` spawn,
  found transitively): the child inherits locked locks and deadlocks.
* ``R204`` — ``time.time`` in the tracer's monotonic-clock domain
  (``repro/obs/``, ``repro/serve/``); durations must use
  ``time.monotonic`` (wall stamps need a justified ``noqa``).

Known unsoundness (deliberate, documented in DESIGN.md §17): aliasing
beyond single-assignment moves is untracked, handles stored in
containers are not followed, ``ESCAPED`` silences all later rules for
the var, and attribute calls resolve by method name (may-targets).
Suppression: the shared ``# noqa: RXXX`` machinery, or a committed
baseline (``--baseline lint-baseline.json``).
"""

from __future__ import annotations

import ast
import json
import os
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
    dotted_name,
)
from .lint import (
    Finding,
    _NODE_OPS,
    _noqa_codes,
    _posix,
    iter_python_files,
    lint_source,
    remap_decorator_lines,
)

#: Deep rule catalog (the shallow R0xx catalog lives in lint.py).
DEEP_RULES: Dict[str, str] = {
    "R101": "handle acquired but never released or escaped on some path",
    "R102": "handle used after decref/release",
    "R103": "handle released twice",
    "R104": "unprotected handle crosses a call that may trigger GC",
    "R201": "blocking call inside async def stalls the event loop",
    "R202": "lock-guarded attribute mutated outside the lock",
    "R203": "fork/Process spawn after non-daemon thread creation",
    "R204": "time.time where the monotonic-clock discipline applies",
}

#: Release method names (R102/R103).  ``release`` variants with a handle
#: argument count; the bare ``obj.release()`` convention does not.
_RELEASE_OPS = frozenset(["decref"])

#: Directly blocking calls for R201 (dotted names).
_BLOCKING_CALLS = frozenset(
    [
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
    ]
)

#: Mutating container-method names used by R202 discovery/violation.
_MUTATORS = frozenset(
    [
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    ]
)

#: Lock factory callables recognized by R202.
_LOCK_FACTORIES = frozenset(
    ["Lock", "RLock", "Condition", "threading.Lock", "threading.RLock",
     "threading.Condition"]
)

#: R204 scope: the packages living under the tracer's monotonic-clock
#: discipline (durations and deadlines there must never use wall time).
_MONOTONIC_SCOPES = ("repro/obs/", "repro/serve/")

_WALL_CLOCK = frozenset(["time.time", "time.time_ns"])


# ======================================================================
# Statement-level CFG
# ======================================================================


class _CFG:
    """Statement nodes + successor edges; -1 is the virtual exit."""

    EXIT = -1

    def __init__(self) -> None:
        self.stmts: List[ast.stmt] = []
        self.succ: Dict[int, Set[int]] = {}

    def add(self, stmt: ast.stmt) -> int:
        node = len(self.stmts)
        self.stmts.append(stmt)
        self.succ[node] = set()
        return node

    def edge(self, src: int, dst: int) -> None:
        if src != self.EXIT:
            self.succ[src].add(dst)


def _build_cfg(fn: ast.AST) -> Tuple[_CFG, int]:
    """CFG of ``fn``'s body; returns (cfg, entry node id).

    ``try`` bodies approximate exceptions by edging every contained
    statement to every handler; loops get back edges; ``break`` /
    ``continue`` / ``return`` / ``raise`` divert normally.
    """
    cfg = _CFG()
    entry_marker = cfg.add(ast.Pass(lineno=fn.lineno, col_offset=0))

    def build(
        body: Sequence[ast.stmt],
        preds: List[int],
        loop: Optional[Tuple[int, List[int]]],
        handlers: List[int],
    ) -> List[int]:
        """Wire ``body`` after ``preds``; returns the fallthrough set.

        ``loop`` is (header_node, break_sinks); ``handlers`` are the
        entry nodes of enclosing except clauses.
        """
        current = list(preds)
        for stmt in body:
            node = cfg.add(stmt)
            for pred in current:
                cfg.edge(pred, node)
            for handler in handlers:
                cfg.edge(node, handler)
            current = [node]
            if isinstance(stmt, (ast.Return, ast.Raise)):
                cfg.edge(node, _CFG.EXIT)
                current = []
            elif isinstance(stmt, ast.Break):
                if loop is not None:
                    loop[1].append(node)
                current = []
            elif isinstance(stmt, ast.Continue):
                if loop is not None:
                    cfg.edge(node, loop[0])
                current = []
            elif isinstance(stmt, ast.If):
                then = build(stmt.body, [node], loop, handlers)
                if stmt.orelse:
                    other = build(stmt.orelse, [node], loop, handlers)
                else:
                    other = [node]
                current = then + other
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                breaks: List[int] = []
                tails = build(stmt.body, [node], (node, breaks), handlers)
                for tail in tails:
                    cfg.edge(tail, node)
                after = [node] + breaks
                if stmt.orelse:
                    after = build(stmt.orelse, after, loop, handlers)
                current = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = build(stmt.body, [node], loop, handlers)
            elif isinstance(stmt, ast.Try):
                handler_entries: List[int] = []
                handler_tails: List[int] = []
                for clause in stmt.handlers:
                    hnode = cfg.add(clause)
                    handler_entries.append(hnode)
                    handler_tails.extend(
                        build(clause.body, [hnode], loop, handlers)
                    )
                body_tails = build(
                    stmt.body, [node], loop, handlers + handler_entries
                )
                cfg.succ[node].update(handler_entries)
                if stmt.orelse:
                    body_tails = build(stmt.orelse, body_tails, loop, handlers)
                joined = body_tails + handler_tails
                if stmt.finalbody:
                    joined = build(stmt.finalbody, joined, loop, handlers)
                current = joined
            elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
                tails: List[int] = []
                for case in stmt.cases:
                    tails.extend(build(case.body, [node], loop, handlers))
                current = tails + [node]
        return current

    body = getattr(fn, "body", [])
    tails = build(body, [entry_marker], None, [])
    for tail in tails:
        cfg.edge(tail, _CFG.EXIT)
    return cfg, entry_marker


# ======================================================================
# Handle-lifetime analysis (R101-R104)
# ======================================================================

# Atom kinds (each atom is (kind, line)).
_OWNED = "OWNED"
_UNPROT = "UNPROT"
_RELEASED = "RELEASED"
_STALE = "STALE"
_ESCAPED = "ESCAPED"

_State = Dict[str, FrozenSet[Tuple[str, int]]]


def _merge(into: _State, other: _State) -> bool:
    changed = False
    for name, atoms in other.items():
        prior = into.get(name)
        if prior is None:
            into[name] = atoms
            changed = True
        else:
            union = prior | atoms
            if union != prior:
                into[name] = union
                changed = True
    return changed


def _names_loaded(expr: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


class _HandleChecker:
    """Runs the handle lattice over one function's CFG."""

    def __init__(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        path: str,
    ) -> None:
        self.info = info
        self.graph = graph
        self.path = path
        self.findings: List[Finding] = []
        self._reported: Set[Tuple[str, str, int]] = set()
        #: var -> dotted receiver it was acquired from (e.g. "bdd").
        self.manager: Dict[str, str] = {}

    # -- reporting ------------------------------------------------------

    def _report(self, rule: str, line: int, key: str, message: str) -> None:
        stamp = (rule, key, line)
        if stamp in self._reported:
            return
        self._reported.add(stamp)
        self.findings.append(Finding(self.path, line, rule, message))

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _is_method_call(
        node: ast.AST, names: Iterable[str]
    ) -> Optional[ast.Call]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in names
        ):
            return node
        return None

    def _receiver(self, call: ast.Call) -> Optional[str]:
        assert isinstance(call.func, ast.Attribute)
        return dotted_name(call.func.value)

    def _site_may_gc(self, call: ast.Call) -> bool:
        site = CallSite(call)
        gc, _, _ = self.graph.site_effects(self.info, site)
        return gc

    # -- per-statement transfer ----------------------------------------

    @staticmethod
    def _roots(stmt: ast.stmt) -> List[ast.AST]:
        """The parts of ``stmt`` evaluated *at this CFG node*.

        Compound statements appear in the CFG as their header only —
        their bodies are separate nodes — so only the header expression
        belongs to this transfer.
        """
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots: List[ast.AST] = []
            for item in stmt.items:
                roots.append(item.context_expr)
                if item.optional_vars is not None:
                    roots.append(item.optional_vars)
            return roots
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(stmt, ast.ExceptHandler):
            return [stmt.type] if stmt.type is not None else []
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return [stmt.subject]
        return [stmt]

    def transfer(self, stmt: ast.stmt, state: _State) -> _State:
        state = dict(state)
        line = getattr(stmt, "lineno", 0)

        # Closure capture: a nested def/lambda freezes every referenced
        # tracked var into ESCAPED (the closure may outlive this frame).
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for name in _names_loaded(stmt):
                if name in state:
                    state[name] = frozenset([(_ESCAPED, line)])
            return state

        roots = self._roots(stmt)

        def walk_all() -> Iterable[ast.AST]:
            for root in roots:
                yield from ast.walk(root)

        calls = [n for n in walk_all() if isinstance(n, ast.Call)]
        lambdas = [n for n in walk_all() if isinstance(n, ast.Lambda)]

        # Special patterns consume their own Name loads.
        special_loads: Set[int] = set()
        increfs: List[ast.Call] = []
        decrefs: List[ast.Call] = []
        for call in calls:
            if self._is_method_call(call, ("incref",)):
                increfs.append(call)
                special_loads.update(id(a) for a in call.args)
            elif self._is_method_call(call, _RELEASE_OPS):
                decrefs.append(call)
                special_loads.update(id(a) for a in call.args)

        # 1. Use checks (R102 / R104) on every other Name load.
        for node in walk_all():
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in special_loads
            ):
                atoms = state.get(node.id)
                if not atoms:
                    continue
                kinds = {kind for kind, _ in atoms}
                if kinds == {_RELEASED}:
                    rel = max(ln for _, ln in atoms)
                    self._report(
                        "R102",
                        line,
                        node.id,
                        "handle %r used after decref at line %d (the node "
                        "slot may be reused by the next GC)"
                        % (node.id, rel),
                    )
                elif _STALE in kinds:
                    gc_line = max(ln for kind, ln in atoms if kind == _STALE)
                    self._report(
                        "R104",
                        line,
                        node.id,
                        "unprotected handle %r used after the call at line "
                        "%d, which may trigger garbage collection "
                        "(incref it, pass it as a root, or re-derive it)"
                        % (node.id, gc_line),
                    )

        # 2. Release effects (R103).
        for call in decrefs:
            for arg in call.args:
                if not isinstance(arg, ast.Name):
                    continue
                atoms = state.get(arg.id)
                if atoms and {kind for kind, _ in atoms} == {_RELEASED}:
                    rel = max(ln for _, ln in atoms)
                    self._report(
                        "R103",
                        line,
                        arg.id,
                        "handle %r released twice (previous decref at "
                        "line %d)" % (arg.id, rel),
                    )
                state[arg.id] = frozenset([(_RELEASED, line)])

        # 3. Bare incref protects its argument in place.
        assigned_call = (
            stmt.value
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call)
            else None
        )
        for call in increfs:
            receiver = self._receiver(call) or ""
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    if call is assigned_call:
                        # ``x = m.incref(y)``: x takes the new reference;
                        # y's unprotected handle is covered while x owns.
                        if arg.id in state and not any(
                            kind == _OWNED for kind, _ in state[arg.id]
                        ):
                            state[arg.id] = frozenset([(_ESCAPED, line)])
                    elif arg.id in state:
                        # Bare incref protects a handle we saw acquired.
                        # Untracked names (parameters, loop targets over
                        # self-owned containers) are pins on behalf of
                        # someone else — no local obligation.
                        state[arg.id] = frozenset([(_OWNED, line)])
                        self.manager[arg.id] = receiver

        # 4. Escapes through calls/stores/returns/closures.
        escaping: Set[str] = set()
        for call in calls:
            if call in increfs or call in decrefs:
                continue
            receiver = (
                dotted_name(call.func.value)
                if isinstance(call.func, ast.Attribute)
                else None
            )
            for node in ast.walk(call):
                if node is call.func:
                    continue
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    if node.id not in state:
                        continue
                    # Calls on the handle's own manager (``bdd.or_(x, y)``)
                    # neither store nor free their arguments.
                    if receiver is not None and receiver == self.manager.get(
                        node.id, "\0"
                    ):
                        continue
                    escaping.add(node.id)
        for lam in lambdas:
            escaping |= {n for n in _names_loaded(lam) if n in state}
        if isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                escaping |= {n for n in _names_loaded(value) if n in state}
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom, ast.Await)
        ):
            escaping |= {n for n in _names_loaded(stmt.value) if n in state}
        for node in walk_all():
            # Storing into a container or attribute publishes the handle.
            if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, ast.Store
            ):
                parent_stmt_names = (
                    _names_loaded(stmt.value)
                    if isinstance(stmt, (ast.Assign, ast.AugAssign))
                    else set()
                )
                escaping |= {n for n in parent_stmt_names if n in state}
            if isinstance(
                node, (ast.List, ast.Tuple, ast.Dict, ast.Set)
            ) and not isinstance(getattr(node, "ctx", ast.Load()), ast.Store):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in state
                    ):
                        escaping.add(sub.id)
        for name in escaping:
            state[name] = frozenset([(_ESCAPED, line)])

        # 5. GC effect: any surviving UNPROT handle not handed to the
        #    GC-capable call as an argument goes STALE.
        for call in calls:
            if call in increfs or call in decrefs:
                continue
            if not self._site_may_gc(call):
                continue
            protected: Set[str] = set()
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                protected |= _names_loaded(arg)
            for name, atoms in list(state.items()):
                if name in protected:
                    continue
                if any(kind == _UNPROT for kind, _ in atoms):
                    rest = frozenset(
                        (k, ln) for k, ln in atoms if k != _UNPROT
                    )
                    state[name] = rest | frozenset([(_STALE, call.lineno)])

        # 6. Bindings.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
            isinstance(stmt.targets[0], ast.Name)
        ):
            target = stmt.targets[0].id
            value = stmt.value
            self._check_rebind_leak(target, state, line)
            if isinstance(value, ast.Call) and isinstance(
                value.func, ast.Attribute
            ):
                receiver = dotted_name(value.func.value) or ""
                if value.func.attr == "incref":
                    state[target] = frozenset([(_OWNED, line)])
                    self.manager[target] = receiver
                elif value.func.attr in _NODE_OPS:
                    state[target] = frozenset([(_UNPROT, line)])
                    self.manager[target] = receiver
                else:
                    state.pop(target, None)
            elif isinstance(value, ast.Name) and value.id in state:
                # Move: ``previous = reached`` transfers the abstract
                # handle; the source no longer answers for it.
                state[target] = state[value.id]
                if value.id in self.manager:
                    self.manager[target] = self.manager[value.id]
                state[value.id] = frozenset([(_ESCAPED, line)])
            else:
                state.pop(target, None)
        else:
            # Any other store untracks the bound names.
            for node in walk_all():
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    self._check_rebind_leak(node.id, state, line)
                    state.pop(node.id, None)
        return state

    def _check_rebind_leak(
        self, name: str, state: _State, line: int
    ) -> None:
        atoms = state.get(name)
        if atoms and {kind for kind, _ in atoms} == {_OWNED}:
            acq = max(ln for _, ln in atoms)
            self._report(
                "R101",
                line,
                name,
                "handle %r (incref'ed at line %d) rebound without decref "
                "— the external reference leaks" % (name, acq),
            )

    # -- driver ---------------------------------------------------------

    def run(self) -> List[Finding]:
        cfg, entry = _build_cfg(self.info.node)
        states: Dict[int, _State] = {entry: {}}
        exit_state: _State = {}
        worklist = [entry]
        visits: Dict[int, int] = {}
        while worklist:
            node = worklist.pop()
            visits[node] = visits.get(node, 0) + 1
            if visits[node] > 200:  # safety valve; states are monotone
                continue
            out = self.transfer(cfg.stmts[node], states.get(node, {}))
            for succ in cfg.succ.get(node, ()):
                if succ == _CFG.EXIT:
                    _merge(exit_state, out)
                    continue
                prior = states.setdefault(succ, {})
                if _merge(prior, out) or visits.get(succ, 0) == 0:
                    worklist.append(succ)
            if not cfg.succ.get(node):
                _merge(exit_state, out)
        # Reset per-run reporting dedup keyed only on rule+var for exit.
        for name, atoms in exit_state.items():
            kinds = {kind for kind, _ in atoms}
            if _OWNED in kinds and not kinds & {_RELEASED, _ESCAPED}:
                acq = max(ln for kind, ln in atoms if kind == _OWNED)
                self._report(
                    "R101",
                    acq,
                    name,
                    "handle %r (incref'ed at line %d) is never decref'ed "
                    "or escaped on any path out of %r — the external "
                    "reference leaks" % (name, acq, self.info.name),
                )
        return self.findings


# ======================================================================
# Concurrency rules (R201-R204)
# ======================================================================


def _check_blocking_async(
    info: FunctionInfo, path: str
) -> List[Finding]:
    """R201: directly blocking calls in an ``async def`` body."""
    if not info.is_async:
        return []
    findings: List[Finding] = []
    awaited: Set[int] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Await):
            for sub in ast.walk(node.value):
                awaited.add(id(sub))
    for site in info.calls:  # own body only; nested defs have their own
        node = site.node
        dotted = dotted_name(node.func)
        blocked = None
        if dotted in _BLOCKING_CALLS:
            blocked = dotted
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            blocked = "open"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and id(node) not in awaited
        ):
            receiver = dotted_name(node.func.value) or ""
            if "lock" in receiver.lower() or "sem" in receiver.lower():
                blocked = receiver + ".acquire"
        if blocked is not None:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "R201",
                    "blocking call %r inside 'async def %s' stalls the "
                    "event loop; await an async equivalent or push it "
                    "through run_in_executor" % (blocked, info.name),
                )
            )
    return findings


def _check_fork_after_thread(
    info: FunctionInfo, graph: CallGraph, path: str
) -> List[Finding]:
    """R203: thread creation, then (transitively) a fork, in body order."""
    findings: List[Finding] = []
    thread_line: Optional[int] = None
    for site in sorted(info.calls, key=lambda s: s.line):
        gc, fork, thread = graph.site_effects(info, site)
        if fork and thread_line is not None and site.line > thread_line:
            findings.append(
                Finding(
                    path,
                    site.line,
                    "R203",
                    "process fork/spawn on this path after a non-daemon "
                    "thread was created at line %d — the child inherits "
                    "held locks and can deadlock; fork first, or make "
                    "the thread daemonic and join before forking"
                    % thread_line,
                )
            )
        if thread and thread_line is None:
            thread_line = site.line
    return findings


def _check_lock_discipline(tree: ast.Module, path: str) -> List[Finding]:
    """R202 over every class in the module (see module docstring)."""
    findings: List[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in _LOCK_FACTORIES
            ):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
        if not locks:
            continue

        def lock_guards(with_node: ast.With) -> bool:
            for item in with_node.items:
                dotted = dotted_name(item.context_expr)
                if dotted and dotted.startswith("self."):
                    if dotted.split(".")[1] in locks:
                        return True
                # ``with self._lock.acquire_timeout(...)`` style.
                if isinstance(item.context_expr, ast.Call):
                    inner = dotted_name(item.context_expr.func)
                    if inner and inner.startswith("self.") and (
                        inner.split(".")[1] in locks
                    ):
                        return True
            return False

        def mutations(node: ast.AST) -> Iterable[Tuple[str, int]]:
            """(attr, line) for every ``self.<attr>`` mutation under
            ``node`` (stores, augmented stores, mutating method calls,
            subscript stores through the attribute)."""
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name
                ) and sub.value.id == "self":
                    if isinstance(sub.ctx, (ast.Store, ast.Del)):
                        yield sub.attr, sub.lineno
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.ctx, (ast.Store, ast.Del))
                    and isinstance(sub.value, ast.Attribute)
                    and isinstance(sub.value.value, ast.Name)
                    and sub.value.value.id == "self"
                ):
                    yield sub.value.attr, sub.lineno
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATORS
                    and isinstance(sub.func.value, ast.Attribute)
                    and isinstance(sub.func.value.value, ast.Name)
                    and sub.func.value.value.id == "self"
                ):
                    yield sub.func.value.attr, sub.lineno

        # Pass 1: which attributes does this class guard with its locks?
        guarded: Set[str] = set()
        locked_lines: Set[int] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.With, ast.AsyncWith)) and lock_guards(
                node
            ):
                for child in node.body:
                    for sub in ast.walk(child):
                        lineno = getattr(sub, "lineno", None)
                        if lineno is not None:
                            locked_lines.add(lineno)
                    for attr, _ in mutations(child):
                        guarded.add(attr)
        guarded -= locks
        if not guarded:
            continue

        # Pass 1.5: a *private* helper whose every ``self.<helper>()``
        # call site sits under the lock runs with the lock held — its
        # body counts as locked (fixpoint for helpers calling helpers).
        method_lines: Dict[str, Set[int]] = {}
        self_calls: Dict[str, Set[int]] = {}
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            method_lines[method.name] = {
                getattr(sub, "lineno", method.lineno)
                for sub in ast.walk(method)
                if hasattr(sub, "lineno")
            }
            for sub in ast.walk(method):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"
                ):
                    self_calls.setdefault(sub.func.attr, set()).add(
                        sub.lineno
                    )
        changed = True
        locked_helpers: Set[str] = set()
        while changed:
            changed = False
            for name, sites in self_calls.items():
                if name in locked_helpers or name not in method_lines:
                    continue
                if not name.startswith("_") or name.startswith("__"):
                    continue  # public: callers outside the class possible
                if sites and sites <= locked_lines:
                    locked_helpers.add(name)
                    locked_lines |= method_lines[name]
                    changed = True

        # Pass 2: mutations of guarded attributes outside every lock.
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            for attr, lineno in mutations(method):
                if attr in guarded and lineno not in locked_lines:
                    findings.append(
                        Finding(
                            path,
                            lineno,
                            "R202",
                            "attribute 'self.%s' of class %r is guarded by "
                            "'with self.%s' elsewhere but mutated here "
                            "without the lock" % (
                                attr, cls.name, sorted(locks)[0]
                            ),
                        )
                    )
    return findings


def _check_monotonic(tree: ast.Module, path: str) -> List[Finding]:
    """R204: wall-clock reads inside the monotonic-clock scopes."""
    posix = _posix(path)
    if not any(scope in posix for scope in _MONOTONIC_SCOPES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted in _WALL_CLOCK:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "R204",
                        "%r in the tracer's monotonic-clock domain: "
                        "durations and deadlines must use time.monotonic "
                        "(a deliberate wall stamp needs a justified "
                        "noqa)" % dotted,
                    )
                )
    return findings


# ======================================================================
# Baseline
# ======================================================================


def load_baseline(path: str) -> List[Dict[str, object]]:
    """Read a baseline file (a JSON list of suppression entries)."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data.get("suppressions", data) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError("baseline must be a list of suppression entries")
    return entries


def _matches(finding: Finding, entry: Dict[str, object]) -> bool:
    if entry.get("rule") != finding.rule:
        return False
    if int(entry.get("line", -1)) != finding.line:
        return False
    suffix = _posix(str(entry.get("path", "")))
    return bool(suffix) and _posix(finding.path).endswith(suffix)


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Dict[str, object]]
) -> Tuple[List[Finding], List[Dict[str, object]]]:
    """Split findings into (kept, ) and report stale baseline entries.

    Returns ``(kept_findings, stale_entries)`` — a stale entry matched
    nothing, meaning the underlying issue was fixed and the entry should
    be deleted.
    """
    kept: List[Finding] = []
    used = [False] * len(entries)
    for finding in findings:
        hit = False
        for i, entry in enumerate(entries):
            if _matches(finding, entry):
                used[i] = True
                hit = True
                break
        if not hit:
            kept.append(finding)
    stale = [entry for entry, was in zip(entries, used) if not was]
    return kept, stale


def baseline_entry(finding: Finding, root: Optional[str] = None) -> Dict[str, object]:
    path = _posix(finding.path)
    if root:
        root_posix = _posix(root).rstrip("/") + "/"
        if path.startswith(root_posix):
            path = path[len(root_posix):]
    return {
        "path": path,
        "line": finding.line,
        "rule": finding.rule,
        "note": "TODO: justify this suppression",
    }


def write_baseline(
    findings: Sequence[Finding], path: str, root: Optional[str] = None
) -> None:
    entries = [baseline_entry(f, root) for f in findings]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"suppressions": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ======================================================================
# Driver
# ======================================================================


def deep_lint_sources(
    sources: Sequence[Tuple[str, str]]
) -> List[Finding]:
    """Deep-lint already-loaded ``(path, source)`` pairs together.

    All files share one call graph, so effect summaries cross file
    boundaries exactly as they do in ``run_deep_lint``.
    """
    parsed: List[Tuple[str, str, ast.Module]] = []
    findings: List[Finding] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path, exc.lineno or 1, "R000", "syntax error: %s" % exc.msg
                )
            )
            continue
        parsed.append((path, source, tree))
    graph = build_call_graph([(path, tree) for path, _, tree in parsed])
    for path, source, tree in parsed:
        raw: List[Finding] = []
        for info in graph.functions.values():
            if info.path != path:
                continue
            raw.extend(_HandleChecker(info, graph, path).run())
            raw.extend(_check_blocking_async(info, path))
            raw.extend(_check_fork_after_thread(info, graph, path))
        raw.extend(_check_lock_discipline(tree, path))
        raw.extend(_check_monotonic(tree, path))
        raw = remap_decorator_lines(raw, tree)
        noqa = _noqa_codes(source)
        for finding in raw:
            codes = noqa.get(finding.line, ())
            if codes is None or finding.rule in codes:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_deep_lint(paths: Sequence[str] = ()) -> List[Finding]:
    """Shallow + deep rules over ``paths`` (default: the repro package)."""
    from .lint import default_paths

    files = list(iter_python_files(list(paths) or default_paths()))
    sources: List[Tuple[str, str]] = []
    shallow: List[Finding] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        sources.append((path, source))
        shallow.extend(lint_source(source, path))
    deep = deep_lint_sources(sources)
    merged = [f for f in shallow if f.rule != "R000"] + deep
    merged.sort(key=lambda f: (f.path, f.line, f.rule))
    return merged

"""Repo-specific AST lint (``python -m repro lint``).

Generic tooling cannot express the invariants this codebase actually
depends on; these rules can:

``R001`` — **no recursive apply-style kernels in** ``repro/bdd/``.
    PR 2 rewrote every apply-style kernel onto explicit stacks so deep
    circuits cannot blow the Python recursion limit mid-image.  A
    self-recursive function reappearing in the kernel modules silently
    reintroduces the depth ceiling.

``R002`` — **no nondeterminism sources in byte-identical output paths.**
    The scheduler / journal / report layers promise byte-identical
    merged output across ``--jobs`` levels.  Wall-clock reads
    (``time.time``), the ``random`` module, unsorted directory listings
    (``os.listdir`` / ``os.scandir`` / ``glob``), mtime-keyed selection
    (``os.path.getmtime``) and iteration over unordered sets all break
    that promise in ways no generic linter flags.

``R003`` — **no node handles held across** ``collect_garbage``
    **without protection.**  A local bound to a BDD operation result and
    used after a ``collect_garbage`` call that neither lists it as a
    root nor increfs it is a stale handle: the slot can be freed and
    reused, corrupting whatever reads it next (the runtime counterpart
    is the sanitizer's ``bdd.mark_freed`` audit).

``R004`` — **no bare** ``except:`` **in** ``repro/harness/``.
    The harness must distinguish engine failures from
    ``KeyboardInterrupt`` / ``SystemExit``; a bare except swallows
    supervisor cancellation.

Suppression: a ``# noqa: R00X`` comment on the flagged line disarms that
rule for the line (a bare ``# noqa`` disarms all four); use it only with
a justification comment.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple


class Finding(NamedTuple):
    """One lint violation."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return "%s:%d: %s %s" % (self.path, self.line, self.rule, self.message)


#: Rule catalog: code -> one-line description (the full rationale lives
#: in docs/analysis.md).
RULES: Dict[str, str] = {
    "R001": "no recursive apply-style kernels in repro/bdd/",
    "R002": "no nondeterminism sources in byte-identical output paths",
    "R003": "no node handles held across collect_garbage without incref/roots",
    "R004": "no bare except in repro/harness/",
}

#: Apply-style kernel modules covered by R001.
_KERNEL_MODULES = frozenset(
    ["operations.py", "quantify.py", "cofactor.py", "substitute.py", "manager.py"]
)

#: Files whose serialized output must stay byte-identical across
#: ``--jobs`` levels (plus the fault injector, whose firing points must
#: be reproducible) — the R002 scope.  ``serve/cache.py`` is included
#: because cache entries are content-addressed: any nondeterminism in
#: what gets hashed or listed breaks entry identity across runs.
_DETERMINISTIC_SUFFIXES = (
    "repro/harness/scheduler.py",
    "repro/harness/journal.py",
    "repro/harness/checkpoint.py",
    "repro/harness/faults.py",
    "repro/obs/report.py",
    "repro/serve/cache.py",
)

#: Directories under the R002 scope (backend payloads must be
#: byte-stable too — they are embedded in checkpoints and cache keys).
_DETERMINISTIC_DIRS = ("repro/backends/",)

#: BDD-manager methods whose result is a node handle (R003).
_NODE_OPS = frozenset(
    [
        "not_",
        "and_",
        "or_",
        "xor",
        "equiv",
        "implies",
        "diff",
        "ite",
        "conjoin",
        "disjoin",
        "exists",
        "forall",
        "and_exists",
        "compose",
        "vector_compose",
        "rename",
        "cofactor",
        "cofactor_cube",
        "constrain",
        "restrict",
        "var",
        "nvar",
        "cube",
        "to_characteristic",
    ]
)

_WALL_CLOCK = frozenset(["time.time", "time.time_ns"])
_DIR_LISTERS = frozenset(
    ["os.listdir", "os.scandir", "glob.glob", "glob.iglob"]
)
_MTIME_FAMILY = frozenset(["getmtime", "getatime", "getctime"])


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _in_scope_r001(path: str) -> bool:
    p = _posix(path)
    return "repro/bdd/" in p and os.path.basename(p) in _KERNEL_MODULES


def _in_scope_r002(path: str) -> bool:
    p = _posix(path)
    if p.endswith(_DETERMINISTIC_SUFFIXES):
        return True
    return any(d in p for d in _DETERMINISTIC_DIRS)


def _in_scope_r003(path: str) -> bool:
    return "repro/" in _posix(path)


def _in_scope_r004(path: str) -> bool:
    return "repro/harness/" in _posix(path)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted-name string of a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parent: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parent[child] = node
    return parent


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


# ----------------------------------------------------------------------
# R001 — recursive kernels
# ----------------------------------------------------------------------


def check_recursive_kernels(tree: ast.AST, path: str) -> List[Finding]:
    """Flag functions in kernel modules that call themselves."""
    findings: List[Finding] = []

    def visit(node: ast.AST, enclosing: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            enclosing = enclosing + (node.name,)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                callee = None
                if isinstance(child.func, ast.Name):
                    callee = child.func.id
                elif isinstance(child.func, ast.Attribute) and isinstance(
                    child.func.value, ast.Name
                ) and child.func.value.id == "self":
                    callee = child.func.attr
                if callee is not None and callee in enclosing:
                    findings.append(
                        Finding(
                            path,
                            child.lineno,
                            "R001",
                            "recursive call to %r in an apply-style kernel "
                            "module (kernels must run on explicit stacks)"
                            % callee,
                        )
                    )
            visit(child, enclosing)

    visit(tree, ())
    return findings


# ----------------------------------------------------------------------
# R002 — nondeterminism sources
# ----------------------------------------------------------------------


def check_nondeterminism(tree: ast.AST, path: str) -> List[Finding]:
    """Flag wall-clock, randomness and unordered-iteration sources."""
    findings: List[Finding] = []
    parent = _parents(tree)

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(path, node.lineno, "R002", message))

    def is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    flag(node, "import of the 'random' module in a "
                         "deterministic-output path")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node, "import from the 'random' module in a "
                     "deterministic-output path")
        elif isinstance(node, ast.Attribute):
            chain = _dotted(node)
            if chain is None:
                continue
            if chain in _WALL_CLOCK:
                flag(node, "wall-clock read %r feeds deterministic output "
                     "(stamp at a boundary, or suppress with a "
                     "justification)" % chain)
            elif (
                node.attr in _MTIME_FAMILY
                and chain.startswith(("os.path.", "posixpath.", "ntpath."))
            ):
                flag(node, "file-timestamp selection (%s) is not "
                     "reproducible; key on content (e.g. the encoded "
                     "iteration number) instead" % chain)
            elif chain.startswith("random."):
                flag(node, "use of %r in a deterministic-output path"
                     % chain)
        elif isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain in _DIR_LISTERS:
                up = parent.get(node)
                wrapped = (
                    isinstance(up, ast.Call)
                    and isinstance(up.func, ast.Name)
                    and up.func.id == "sorted"
                )
                if not wrapped:
                    flag(node, "directory listing %r is OS-order dependent; "
                         "wrap it in sorted(...)" % chain)
        elif isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if is_set_expr(it):
                flag(it, "iteration over an unordered set; sort before "
                     "anything that serializes")
    return findings


# ----------------------------------------------------------------------
# R003 — handles across GC
# ----------------------------------------------------------------------


def check_gc_handles(tree: ast.AST, path: str) -> List[Finding]:
    """Flag node-handle locals used after an unprotecting GC call.

    Per function: a local assigned from a node-producing manager method,
    then a ``collect_garbage`` call that does not mention it in its
    roots, then a later use of the same (un-reassigned, never
    incref'ed) local.  Conservative by construction — only simple
    ``name = obj.node_op(...)`` bindings are tracked.
    """
    findings: List[Finding] = []

    def scan_function(fn: ast.AST) -> None:
        node_stores: Dict[str, List[int]] = {}
        all_stores: Dict[str, List[int]] = {}
        loads: Dict[str, List[int]] = {}
        increfed: Set[str] = set()
        gc_calls: List[Tuple[int, Set[str]]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr in _NODE_OPS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            node_stores.setdefault(target.id, []).append(
                                node.lineno
                            )
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    all_stores.setdefault(node.id, []).append(node.lineno)
                elif isinstance(node.ctx, ast.Load):
                    loads.setdefault(node.id, []).append(node.lineno)
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "incref":
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            increfed.add(arg.id)
                elif node.func.attr in ("collect_garbage", "maybe_collect"):
                    rooted: Set[str] = set()
                    for arg in node.args:
                        rooted |= _names_in(arg)
                    for kw in node.keywords:
                        rooted |= _names_in(kw.value)
                    gc_calls.append((node.lineno, rooted))
        if not gc_calls:
            return
        for name, store_lines in node_stores.items():
            if name in increfed:
                continue
            stores = sorted(all_stores.get(name, []))
            for gc_line, rooted in gc_calls:
                if name in rooted:
                    continue
                before = [s for s in store_lines if s < gc_line]
                if not before:
                    continue
                for use in loads.get(name, []):
                    if use <= gc_line:
                        continue
                    last_store = max(
                        (s for s in stores if s <= use), default=None
                    )
                    if (
                        last_store is not None
                        and last_store < gc_line
                        and last_store in store_lines
                    ):
                        findings.append(
                            Finding(
                                path,
                                use,
                                "R003",
                                "node handle %r (bound at line %d) used "
                                "after collect_garbage at line %d without "
                                "incref or being passed as a root"
                                % (name, last_store, gc_line),
                            )
                        )
                        break
        return

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node)
    return findings


# ----------------------------------------------------------------------
# R004 — bare except
# ----------------------------------------------------------------------


def check_bare_except(tree: ast.AST, path: str) -> List[Finding]:
    """Flag ``except:`` clauses (swallow SystemExit/KeyboardInterrupt)."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "R004",
                    "bare 'except:' in the harness swallows supervisor "
                    "cancellation; catch Exception (or narrower)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

_SCOPED_RULES = (
    ("R001", _in_scope_r001, check_recursive_kernels),
    ("R002", _in_scope_r002, check_nondeterminism),
    ("R003", _in_scope_r003, check_gc_handles),
    ("R004", _in_scope_r004, check_bare_except),
)


def _noqa_codes(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule codes (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        marker = line.find("# noqa")
        if marker < 0:
            continue
        rest = line[marker + len("# noqa"):]
        if rest.lstrip().startswith(":"):
            codes = {
                code.strip().upper()
                for code in rest.lstrip()[1:].split(",")
                if code.strip()
            }
            out[lineno] = codes
        else:
            out[lineno] = None
    return out


def remap_decorator_lines(
    findings: Sequence[Finding], tree: ast.AST
) -> List[Finding]:
    """Reattribute decorator-line findings to the decorated ``def`` line.

    ``@decorator`` lines cannot legally carry a trailing ``# noqa`` in
    some formatters' output, and users reasonably put the suppression on
    the ``def``/``class`` statement itself — the *suppressible statement
    line*.  Findings inside a decorator expression are therefore moved
    to the decorated statement's line (innermost decoration wins).
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node.decorator_list:
            start = min(d.lineno for d in node.decorator_list)
            spans.append((start, node.lineno))
    if not spans:
        return list(findings)
    # Innermost (latest-starting) decoration wins for nested defs.
    spans.sort(key=lambda s: s[0], reverse=True)
    out: List[Finding] = []
    for finding in findings:
        for start, def_line in spans:
            if start <= finding.line < def_line:
                finding = finding._replace(line=def_line)
                break
        out.append(finding)
    return out


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's source; applies every rule whose scope matches."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 1, "R000", "syntax error: %s" % exc.msg)
        ]
    findings: List[Finding] = []
    for rule, in_scope, check in _SCOPED_RULES:
        if in_scope(path):
            findings.extend(check(tree, path))
    if not findings:
        return findings
    findings = remap_decorator_lines(findings, tree)
    noqa = _noqa_codes(source)
    kept = []
    for finding in findings:
        codes = noqa.get(finding.line, ())
        if codes is None or finding.rule in codes:
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def lint_file(path: str) -> List[Finding]:
    """Lint one file from disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def default_paths() -> List[str]:
    """The installed ``repro`` package tree (what CI lints)."""
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def run_lint(paths: Sequence[str] = ()) -> List[Finding]:
    """Lint ``paths`` (default: the repro package); returns findings."""
    findings: List[Finding] = []
    for path in iter_python_files(list(paths) or default_paths()):
        findings.extend(lint_file(path))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific static checks (R001-R004)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            print("%s  %s" % (code, RULES[code]))
        return 0
    findings = run_lint(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            "%d finding%s" % (len(findings), "" if len(findings) == 1 else "s"),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro lint
    sys.exit(main())

"""Runtime invariant auditing ("sanitizer") for the BDD/BFV substrate.

Everything the reproduction claims rests on invariants that are normally
only *assumed*: ROBDD canonicity in the unique tables, soundness of the
memoized computed-table entries, and the Section 2.2 canonical-form
conditions for Boolean functional vectors (union, intersection and the
fix-point equality test are only correct on canonical vectors).  This
module makes them checkable while a run is in flight.

The audits are grouped into three domains:

* **BDD manager structure** (:func:`check_bdd_structure`,
  :func:`check_refcounts`) — no redundant ``lo == hi`` nodes, no
  duplicate ``(var, lo, hi)`` triples, variable-order monotonicity along
  every edge, unique-table / slot-array agreement, free-list and
  allocated-count bookkeeping, external-reference validity and
  mark-pass / ``count_live`` agreement.

* **Computed-table soundness** (:func:`check_cache_soundness`) — decode
  a sample of the newest packed-key entries per operation (see
  :mod:`repro.bdd.cache` for the layouts) and replay them through the
  seed recursive oracle (``tests/bdd/reference_kernels.py``).  Canonicity
  makes node-handle equality a complete check.  When the oracle is not
  importable (installed package without the test tree) a deterministic
  pointwise fallback evaluates both sides of each entry on enumerated
  assignments instead.

* **BFV canonicity** (:func:`check_bfv_canonical`,
  :func:`check_decomposition`) — structural triangular-support and
  monotonicity conditions, reparameterization idempotence
  (``from_characteristic(to_characteristic(F)) == F``), the constraint
  view round-trip through :mod:`repro.bfv.conjunctive`, and
  range / characteristic agreement by exhaustive enumeration on small
  instances.

Plus schema validation for persisted harness state
(:func:`validate_checkpoint_meta`, :func:`validate_journal_record`).

Violations raise :class:`repro.errors.SanitizerError` whose
``invariant`` attribute carries a stable dotted name (e.g.
``"bdd.unique_duplicate_triple"``), so tests and triage tooling match on
the name rather than the message.

:class:`Sanitizer` bundles the audits behind a sampling rate: engines
construct one per run (via ``RunMonitor``) and call
:meth:`Sanitizer.audit` once per reachability iteration; the audit runs
every ``round(1/rate)``-th iteration.  Sampling is deterministic — a
stride, not a coin flip — so a given rate audits the same iterations on
every run (the scheduler's byte-identical-output contract extends to
sanitized runs).
"""

from __future__ import annotations

from itertools import islice as _islice
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..bdd import cache as _cache
from ..bdd.manager import FREED_VAR, TERMINAL_LEVEL
from ..errors import BFVError, SanitizerError

#: Default number of (newest) computed-table entries replayed per
#: operation per audit pass.
DEFAULT_CACHE_SAMPLE = 8

#: Vectors at most this wide get the exhaustive range / characteristic
#: agreement check (2^width evaluations).
DEFAULT_SMALL_WIDTH = 6

#: Cap on the number of enumerated assignments in the pointwise
#: fallback replay (oracle unavailable).
_POINTWISE_SAMPLES = 64

_NODE_MASK = _cache.NODE_MASK


def _fail(invariant: str, message: str, iteration: Optional[int] = None) -> None:
    raise SanitizerError(invariant, message, iteration=iteration)


# ----------------------------------------------------------------------
# BDD manager structure
# ----------------------------------------------------------------------


def check_bdd_structure(bdd, iteration: Optional[int] = None) -> int:
    """Audit unique-table canonicity and slot-array consistency.

    Returns the number of allocated node slots scanned.  Invariants
    (dotted names raised on violation):

    * ``bdd.node_count_sync`` — ``_node_count == len(_var) - len(_free)``
    * ``bdd.level_permutation`` — ``var2level`` / ``level2var`` are
      inverse permutations and the terminal sentinel is intact
    * ``bdd.free_list_sync`` — free-list membership matches the
      ``FREED_VAR`` slot marking, with no duplicates
    * ``bdd.unique_redundant`` — no node with ``lo == hi``
    * ``bdd.unique_duplicate_triple`` — no two live slots share a
      ``(var, lo, hi)`` triple (canonicity)
    * ``bdd.dangling_child`` — children are allocated, non-freed slots
    * ``bdd.order_monotone`` — every edge descends in the current order
    * ``bdd.unique_orphan`` — every live slot is indexed by its
      variable's unique table
    * ``bdd.unique_sync`` — every unique-table entry describes its node
    """
    var_, lo_, hi_ = bdd._var, bdd._lo, bdd._hi
    var2level = bdd._var2level
    unique = bdd._unique
    n = len(var_)
    if bdd._node_count != n - len(bdd._free):
        _fail(
            "bdd.node_count_sync",
            "allocated-node counter %d != %d slots - %d free"
            % (bdd._node_count, n, len(bdd._free)),
            iteration,
        )
    if var2level[-1] != TERMINAL_LEVEL:
        _fail("bdd.level_permutation", "var2level sentinel lost", iteration)
    for level, var in enumerate(bdd._level2var):
        if var2level[var] != level:
            _fail(
                "bdd.level_permutation",
                "level2var[%d] = %d but var2level[%d] = %d"
                % (level, var, var, var2level[var]),
                iteration,
            )
    free_set = frozenset(bdd._free)
    if len(free_set) != len(bdd._free):
        _fail("bdd.free_list_sync", "duplicate slots on the free list", iteration)
    seen: Dict[Tuple[int, int, int], int] = {}
    scanned = 0
    for node in range(2, n):
        v = var_[node]
        if v == FREED_VAR:
            if node not in free_set:
                _fail(
                    "bdd.free_list_sync",
                    "slot %d marked freed but not on the free list" % node,
                    iteration,
                )
            continue
        if node in free_set:
            _fail(
                "bdd.free_list_sync",
                "slot %d on the free list but not marked freed" % node,
                iteration,
            )
        scanned += 1
        lo, hi = lo_[node], hi_[node]
        if lo == hi:
            _fail(
                "bdd.unique_redundant",
                "node %d has lo == hi == %d" % (node, lo),
                iteration,
            )
        triple = (v, lo, hi)
        other = seen.get(triple)
        if other is not None:
            _fail(
                "bdd.unique_duplicate_triple",
                "slots %d and %d both hold (var=%d, lo=%d, hi=%d)"
                % (other, node, v, lo, hi),
                iteration,
            )
        seen[triple] = node
        if not 0 <= v < len(unique):
            _fail(
                "bdd.unique_sync",
                "node %d labelled with unknown variable %d" % (node, v),
                iteration,
            )
        level = var2level[v]
        for child in (lo, hi):
            if child >= n or (child > 1 and var_[child] == FREED_VAR):
                _fail(
                    "bdd.dangling_child",
                    "node %d has dangling child %d" % (node, child),
                    iteration,
                )
            if child > 1 and var2level[var_[child]] <= level:
                _fail(
                    "bdd.order_monotone",
                    "edge %d -> %d does not descend in the order"
                    % (node, child),
                    iteration,
                )
        if unique[v].get((lo << 32) | hi) != node:
            _fail(
                "bdd.unique_orphan",
                "node %d missing from (or shadowed in) its unique table"
                % node,
                iteration,
            )
    for v, tab in enumerate(unique):
        for key, node in tab.items():
            lo, hi = key >> 32, key & _NODE_MASK
            if (
                node >= n
                or var_[node] != v
                or lo_[node] != lo
                or hi_[node] != hi
            ):
                _fail(
                    "bdd.unique_sync",
                    "unique table for var %d maps (%d, %d) to stale node %d"
                    % (v, lo, hi, node),
                    iteration,
                )
    return scanned


def check_refcounts(
    bdd, roots: Sequence[int] = (), iteration: Optional[int] = None
) -> int:
    """Audit external references and mark-pass / ``count_live`` agreement.

    Returns the live node count.  Invariants:

    * ``bdd.extref_dangling`` — every external reference points at an
      allocated, non-freed slot with a positive count
    * ``bdd.mark_freed`` — the mark pass never reaches a freed slot
    * ``bdd.live_accounting`` — live nodes never exceed allocated nodes
    * ``bdd.live_count`` — ``count_live`` agrees with an independent
      mark pass over the same roots
    """
    var_ = bdd._var
    n = len(var_)
    for node, count in bdd._extref.items():
        if count <= 0:
            _fail(
                "bdd.extref_dangling",
                "non-positive external refcount %d on node %d"
                % (count, node),
                iteration,
            )
        if node < 2 or node >= n or var_[node] == FREED_VAR:
            _fail(
                "bdd.extref_dangling",
                "external reference to invalid or freed slot %d" % node,
                iteration,
            )
    roots = tuple(roots)
    marked = bdd._mark(roots)
    for node in range(2, n):
        if marked[node] and var_[node] == FREED_VAR:
            _fail(
                "bdd.mark_freed",
                "mark pass reached freed slot %d (handle held across GC "
                "without incref?)" % node,
                iteration,
            )
    live = sum(marked)
    if live > bdd._node_count:
        _fail(
            "bdd.live_accounting",
            "%d live nodes exceed %d allocated" % (live, bdd._node_count),
            iteration,
        )
    counted = bdd.count_live(roots)
    if counted != live:
        _fail(
            "bdd.live_count",
            "count_live reports %d but the mark pass found %d"
            % (counted, live),
            iteration,
        )
    return live


# ----------------------------------------------------------------------
# Computed-table soundness (oracle replay)
# ----------------------------------------------------------------------

_ORACLE: Any = None
_ORACLE_LOADED = False


def _load_oracle() -> Any:
    """Import the seed recursive kernels (``tests/bdd/reference_kernels``).

    The test tree ships with the repository but not with an installed
    package; when it is unavailable the cache replay falls back to the
    pointwise semantic check.  The import is attempted once per process.
    """
    global _ORACLE, _ORACLE_LOADED
    if not _ORACLE_LOADED:
        _ORACLE_LOADED = True
        try:
            from tests.bdd import reference_kernels as oracle  # type: ignore

            _ORACLE = oracle
        except Exception:
            _ORACLE = None
    return _ORACLE


def _assignments(
    variables: Sequence[int],
) -> Iterable[Dict[int, bool]]:
    """Deterministic assignment patterns over ``variables``.

    Exhaustive when ``2**len(variables)`` fits the sample budget;
    otherwise a fixed bit-mixing pattern covers a spread of corners.
    No randomness — audits must not perturb run determinism.
    """
    k = len(variables)
    if k == 0:
        yield {}
        return
    if k <= 6:
        for t in range(1 << k):
            yield {v: bool((t >> j) & 1) for j, v in enumerate(variables)}
        return
    for t in range(_POINTWISE_SAMPLES):
        yield {
            v: bool(((t >> (j % 6)) ^ (t >> ((j + 3) % 7)) ^ j) & 1)
            for j, v in enumerate(variables)
        }


def _pointwise_agrees(bdd, nodes: Sequence[int], spec) -> Optional[bool]:
    """Fallback semantic check: evaluate ``spec`` on enumerated points.

    ``spec(assignment) -> (expected_bool, actual_bool)``; returns False
    on the first disagreement, True when every sampled point agrees.
    """
    support: List[int] = []
    seen: set = set()
    for node in nodes:
        for v in bdd.support(node):
            if v not in seen:
                seen.add(v)
                support.append(v)
    support.sort()
    for assignment in _assignments(support):
        expected, actual = spec(assignment)
        if expected != actual:
            return False
    return True


def _replay_fallback(
    bdd, op: int, key: int, result: int, cube, items
) -> Optional[bool]:
    """Pointwise replay of one cache entry without the oracle.

    Returns True/False for checked entries, None for entries whose
    semantics are not pointwise-checkable here (``constrain`` /
    ``restrict`` depend on the nearest-point metric, wide
    quantifications explode).
    """
    ev = bdd.evaluate
    if op == _cache.OP_NOT:
        f = key
        return _pointwise_agrees(
            bdd, (f, result), lambda a: (not ev(f, a), ev(result, a))
        )
    if op in (_cache.OP_AND, _cache.OP_OR, _cache.OP_XOR):
        f, g = key & _NODE_MASK, key >> 32
        fn = {
            _cache.OP_AND: lambda x, y: x and y,
            _cache.OP_OR: lambda x, y: x or y,
            _cache.OP_XOR: lambda x, y: x != y,
        }[op]
        return _pointwise_agrees(
            bdd,
            (f, g, result),
            lambda a: (fn(ev(f, a), ev(g, a)), ev(result, a)),
        )
    if op == _cache.OP_ITE:
        h = key & _NODE_MASK
        g = (key >> 32) & _NODE_MASK
        f = key >> 64
        return _pointwise_agrees(
            bdd,
            (f, g, h, result),
            lambda a: (ev(g, a) if ev(f, a) else ev(h, a), ev(result, a)),
        )
    if op in (_cache.OP_EXISTS, _cache.OP_FORALL):
        if cube is None or len(cube) > 6:
            return None
        f = key & _NODE_MASK
        want_any = op == _cache.OP_EXISTS

        def spec(a: Dict[int, bool]) -> Tuple[bool, bool]:
            vals = []
            for patch in _assignments(tuple(cube)):
                full = dict(a)
                full.update(patch)
                vals.append(ev(f, full))
            expected = any(vals) if want_any else all(vals)
            return expected, ev(result, a)

        return _pointwise_agrees(bdd, (f, result), spec)
    if op == _cache.OP_AND_EXISTS:
        if cube is None or len(cube) > 6:
            return None
        f = key & _NODE_MASK
        g = (key >> 32) & _NODE_MASK

        def spec(a: Dict[int, bool]) -> Tuple[bool, bool]:
            hit = False
            for patch in _assignments(tuple(cube)):
                full = dict(a)
                full.update(patch)
                if ev(f, full) and ev(g, full):
                    hit = True
                    break
            return hit, ev(result, a)

        return _pointwise_agrees(bdd, (f, g, result), spec)
    if op == _cache.OP_COFACTOR:
        f = key & _NODE_MASK
        value = bool((key >> 32) & 1)
        var = key >> 33

        def spec(a: Dict[int, bool]) -> Tuple[bool, bool]:
            full = dict(a)
            full[var] = value
            return ev(f, full), ev(result, a)

        return _pointwise_agrees(bdd, (f, result), spec)
    if op == _cache.OP_COFACTOR_CUBE:
        if items is None:
            return None
        f = key & _NODE_MASK
        fixed = dict(items)

        def spec(a: Dict[int, bool]) -> Tuple[bool, bool]:
            full = dict(a)
            full.update(fixed)
            return ev(f, full), ev(result, a)

        return _pointwise_agrees(bdd, (f, result), spec)
    if op == _cache.OP_COMPOSE:
        f = key & _NODE_MASK
        g = (key >> 32) & _NODE_MASK
        var = key >> 64

        def spec(a: Dict[int, bool]) -> Tuple[bool, bool]:
            full = dict(a)
            full[var] = ev(g, a)
            return ev(f, full), ev(result, a)

        return _pointwise_agrees(bdd, (f, g, result), spec)
    return None  # constrain / restrict: not pointwise-definable


def check_cache_soundness(
    bdd,
    sample: int = DEFAULT_CACHE_SAMPLE,
    iteration: Optional[int] = None,
) -> Tuple[int, int]:
    """Replay a sample of computed-table entries against the oracle.

    Decodes the ``sample`` newest packed-key entries of every
    per-operation table (newest because they are the ones produced since
    the previous audit) and recomputes each through the seed recursive
    kernels.  Canonicity makes node-handle equality a complete check.
    Returns ``(replayed, skipped)``.  Invariants:

    * ``bdd.cache_freed_operand`` — no entry references a freed or
      out-of-range node slot
    * ``bdd.cache_replay`` — every replayed entry reproduces its cached
      result (an undecodable key also lands here)
    """
    oracle = _load_oracle()
    var_ = bdd._var
    n = len(var_)
    num_vars = len(bdd._names)
    cube_by_id = {cid: cube for cube, cid in bdd._cube_ids.items()}
    items_by_id = {iid: items for items, iid in bdd._item_ids.items()}
    replayed = skipped = 0

    def alive(node: int) -> bool:
        return 0 <= node < n and (node < 2 or var_[node] != FREED_VAR)

    def check_alive(op: int, key: int, nodes: Sequence[int]) -> None:
        for node in nodes:
            if not alive(node):
                _fail(
                    "bdd.cache_freed_operand",
                    "%s entry 0x%x references freed/invalid node %d"
                    % (_cache.OP_NAMES[op], key, node),
                    iteration,
                )

    def check_var(op: int, key: int, var: int) -> bool:
        if not 0 <= var < num_vars:
            _fail(
                "bdd.cache_replay",
                "%s entry 0x%x encodes unknown variable %d"
                % (_cache.OP_NAMES[op], key, var),
                iteration,
            )
        return True

    for op in range(_cache.N_OPS):
        table = bdd._ctables[op]
        if not table:
            continue
        # Dict views iterate in insertion order and are reversible, so
        # this walks only the newest ``sample`` entries.
        entries = list(_islice(reversed(table.items()), sample))
        for key, result in entries:
            cube = items = None
            expected: Optional[int] = None
            try:
                if op == _cache.OP_NOT:
                    f = key
                    check_alive(op, key, (f, result))
                    if oracle is not None:
                        expected = oracle.not_(bdd, f)
                elif op in (_cache.OP_AND, _cache.OP_OR, _cache.OP_XOR):
                    f, g = key & _NODE_MASK, key >> 32
                    check_alive(op, key, (f, g, result))
                    if oracle is not None:
                        fn = (
                            oracle.and_
                            if op == _cache.OP_AND
                            else oracle.or_ if op == _cache.OP_OR else oracle.xor
                        )
                        expected = fn(bdd, f, g)
                elif op == _cache.OP_ITE:
                    h = key & _NODE_MASK
                    g = (key >> 32) & _NODE_MASK
                    f = key >> 64
                    check_alive(op, key, (f, g, h, result))
                    if oracle is not None:
                        expected = oracle.ite(bdd, f, g, h)
                elif op in (_cache.OP_EXISTS, _cache.OP_FORALL):
                    f = key & _NODE_MASK
                    index = (key >> 32) & _NODE_MASK
                    cid = key >> 64
                    check_alive(op, key, (f, result))
                    full = cube_by_id.get(cid)
                    if full is None or index > len(full):
                        skipped += 1
                        continue
                    cube = full[index:]
                    if oracle is not None:
                        fn = (
                            oracle.exists
                            if op == _cache.OP_EXISTS
                            else oracle.forall
                        )
                        expected = fn(bdd, f, list(cube))
                elif op == _cache.OP_AND_EXISTS:
                    f = key & _NODE_MASK
                    g = (key >> 32) & _NODE_MASK
                    index = (key >> 64) & _NODE_MASK
                    cid = key >> 96
                    check_alive(op, key, (f, g, result))
                    full = cube_by_id.get(cid)
                    if full is None or index > len(full):
                        skipped += 1
                        continue
                    cube = full[index:]
                    if oracle is not None:
                        expected = oracle.and_exists(bdd, f, g, list(cube))
                elif op == _cache.OP_COFACTOR:
                    f = key & _NODE_MASK
                    value = bool((key >> 32) & 1)
                    var = key >> 33
                    check_alive(op, key, (f, result))
                    check_var(op, key, var)
                    if oracle is not None:
                        expected = oracle.cofactor(bdd, f, var, value)
                elif op == _cache.OP_COFACTOR_CUBE:
                    f = key & _NODE_MASK
                    index = (key >> 32) & _NODE_MASK
                    iid = key >> 64
                    check_alive(op, key, (f, result))
                    full_items = items_by_id.get(iid)
                    if full_items is None or index > len(full_items):
                        skipped += 1
                        continue
                    items = full_items[index:]
                    if oracle is not None:
                        expected = oracle.cofactor_cube(bdd, f, dict(items))
                elif op in (_cache.OP_CONSTRAIN, _cache.OP_RESTRICT):
                    f = key & _NODE_MASK
                    c = key >> 32
                    check_alive(op, key, (f, c, result))
                    if c == 0:
                        _fail(
                            "bdd.cache_replay",
                            "%s entry cached for the empty care set"
                            % _cache.OP_NAMES[op],
                            iteration,
                        )
                    if oracle is not None:
                        fn = (
                            oracle.constrain
                            if op == _cache.OP_CONSTRAIN
                            else oracle.restrict
                        )
                        expected = fn(bdd, f, c)
                else:  # OP_COMPOSE
                    f = key & _NODE_MASK
                    g = (key >> 32) & _NODE_MASK
                    var = key >> 64
                    check_alive(op, key, (f, g, result))
                    check_var(op, key, var)
                    if oracle is not None:
                        expected = oracle.compose(bdd, f, var, g)
                if oracle is None:
                    agrees = _replay_fallback(bdd, op, key, result, cube, items)
                    if agrees is None:
                        skipped += 1
                        continue
                    if not agrees:
                        _fail(
                            "bdd.cache_replay",
                            "%s entry 0x%x disagrees with pointwise "
                            "evaluation (cached node %d)"
                            % (_cache.OP_NAMES[op], key, result),
                            iteration,
                        )
                    replayed += 1
                    continue
            except RecursionError:
                skipped += 1
                continue
            if expected != result:
                _fail(
                    "bdd.cache_replay",
                    "%s entry 0x%x cached node %d but the oracle "
                    "recomputes node %d"
                    % (_cache.OP_NAMES[op], key, result, expected),
                    iteration,
                )
            replayed += 1
    # The oracle memoizes in a per-manager dict that GC never sweeps;
    # drop it so stale handles cannot leak into later replays (and so
    # the audit leaves no hidden node roots behind).
    ref_cache = getattr(bdd, "_reference_cache", None)
    if ref_cache is not None:
        ref_cache.clear()
    return replayed, skipped


# ----------------------------------------------------------------------
# BFV canonicity (paper Sec 2.2)
# ----------------------------------------------------------------------


def check_bfv_canonical(
    vector,
    iteration: Optional[int] = None,
    small_width: int = DEFAULT_SMALL_WIDTH,
) -> None:
    """Audit one Boolean functional vector for canonical form.

    Invariants:

    * ``bfv.structure`` — triangular support and per-component
      monotonicity in the own choice variable (Sec 2.2 conditions)
    * ``bfv.reparam_idempotent`` — reparameterizing the vector's own
      range reproduces it component-for-component
      (``from_characteristic(to_characteristic(F)) == F``)
    * ``bfv.constraint_structure`` — the Sec 2.7 constraint view is a
      valid canonical conjunctive decomposition
    * ``bfv.constraint_roundtrip`` — the constraint view maps back to
      the identical vector
    * ``bfv.range_agreement`` — on widths up to ``small_width``, the
      enumerated members, the characteristic function and the selection
      fixed-point property all agree, and every choice assignment
      selects a member
    """
    from ..bfv.conjunctive import ConjunctiveDecomposition
    from ..bfv.vector import BFV

    if vector is None or vector.is_empty:
        return
    bdd = vector.bdd
    try:
        vector.check_structure()
    except BFVError as exc:
        _fail("bfv.structure", str(exc), iteration)
    try:
        chi = vector.to_characteristic()
        rebuilt = BFV.from_characteristic(bdd, vector.choice_vars, chi)
    except BFVError as exc:
        _fail("bfv.reparam_idempotent", str(exc), iteration)
    if rebuilt.components != vector.components:
        _fail(
            "bfv.reparam_idempotent",
            "reparameterize(F) != F: components %s became %s"
            % (vector.components, rebuilt.components),
            iteration,
        )
    decomposition = ConjunctiveDecomposition.from_bfv(vector)
    try:
        decomposition.check_structure()
    except BFVError as exc:
        _fail("bfv.constraint_structure", str(exc), iteration)
    back = decomposition.to_bfv()
    if back.components != vector.components:
        _fail(
            "bfv.constraint_roundtrip",
            "constraint-view round trip changed components %s to %s"
            % (vector.components, back.components),
            iteration,
        )
    if vector.width <= small_width:
        members = set(vector.enumerate())
        for point in _all_points(vector.width):
            assignment = {
                v: b for v, b in zip(vector.choice_vars, point)
            }
            in_chi = bdd.evaluate(chi, assignment)
            selected = vector.select(point)
            if (point in members) != in_chi:
                _fail(
                    "bfv.range_agreement",
                    "point %s: enumeration and characteristic function "
                    "disagree" % (point,),
                    iteration,
                )
            if selected not in members:
                _fail(
                    "bfv.range_agreement",
                    "choice %s selects non-member %s" % (point, selected),
                    iteration,
                )
            if in_chi and selected != point:
                _fail(
                    "bfv.range_agreement",
                    "member %s is not a selection fixed point (maps to %s)"
                    % (point, selected),
                    iteration,
                )


def _all_points(width: int) -> Iterable[Tuple[bool, ...]]:
    for t in range(1 << width):
        yield tuple(
            bool((t >> (width - 1 - j)) & 1) for j in range(width)
        )


def check_decomposition(
    decomposition, iteration: Optional[int] = None
) -> None:
    """Audit a conjunctive decomposition's canonical structure.

    Invariants: ``bfv.constraint_structure`` (triangular support and
    per-prefix satisfiability) and ``bfv.constraint_roundtrip`` (the
    evaluation-view vector maps back to the identical constraint list).
    """
    from ..bfv.conjunctive import ConjunctiveDecomposition

    if decomposition is None or decomposition.is_empty:
        return
    try:
        decomposition.check_structure()
    except BFVError as exc:
        _fail("bfv.constraint_structure", str(exc), iteration)
    back = ConjunctiveDecomposition.from_bfv(decomposition.to_bfv())
    if back.parts != decomposition.parts:
        _fail(
            "bfv.constraint_roundtrip",
            "evaluation-view round trip changed parts %s to %s"
            % (decomposition.parts, back.parts),
            iteration,
        )


# ----------------------------------------------------------------------
# Persisted-state schemas
# ----------------------------------------------------------------------

_CHECKPOINT_META_STR = ("engine", "circuit", "order")
_CHECKPOINT_META_LIST = ("functions", "vectors")


def validate_checkpoint_meta(
    meta: Mapping[str, Any], path: Optional[str] = None
) -> None:
    """Validate a checkpoint metadata record against its schema.

    Raises ``SanitizerError("checkpoint.schema", ...)`` when a required
    field is missing or ill-typed.  Runs on checkpoint load when the
    sanitizer is active (the loader's own checks only cover identity
    fields; this pins the full shape).
    """
    where = " in %s" % path if path else ""

    def bad(detail: str) -> None:
        _fail("checkpoint.schema", detail + where)

    if not isinstance(meta, Mapping):
        bad("checkpoint meta is not a mapping")
    for field in _CHECKPOINT_META_STR:
        if not isinstance(meta.get(field), str):
            bad("field %r missing or not a string" % field)
    iteration = meta.get("iteration")
    if not isinstance(iteration, int) or isinstance(iteration, bool):
        bad("field 'iteration' missing or not an integer")
    elif iteration < 0:
        bad("field 'iteration' is negative")
    for field in _CHECKPOINT_META_LIST:
        value = meta.get(field)
        if not isinstance(value, list) or not all(
            isinstance(name, str) for name in value
        ):
            bad("field %r missing or not a list of names" % field)
    counters = meta.get("counters")
    if counters is not None and not isinstance(counters, dict):
        bad("field 'counters' is not a mapping")


def validate_journal_record(
    record: Mapping[str, Any], line: Optional[int] = None
) -> None:
    """Validate one journal record against the attempt-record schema.

    Raises ``SanitizerError("journal.schema", ...)``.  Every record must
    be a JSON object with a string ``event`` discriminator and a numeric
    ``wall`` stamp; attempt-shaped events additionally need string
    ``engine`` / ``circuit`` fields.
    """
    where = "" if line is None else " (journal line %d)" % line

    def bad(detail: str) -> None:
        _fail("journal.schema", detail + where)

    if not isinstance(record, Mapping):
        bad("journal record is not a JSON object")
    event = record.get("event")
    if not isinstance(event, str) or not event:
        bad("field 'event' missing or not a string")
    wall = record.get("wall")
    if wall is not None and not isinstance(wall, (int, float)):
        bad("field 'wall' is not a number")
    if event in ("attempt", "fallback_attempt"):
        for field in ("engine", "circuit"):
            if not isinstance(record.get(field), str):
                bad("field %r missing or not a string" % field)


# ----------------------------------------------------------------------
# The per-run sanitizer
# ----------------------------------------------------------------------


class Sanitizer:
    """Sampling-rate-controlled audit driver for one reachability run.

    Parameters
    ----------
    bdd:
        The manager under audit.
    rate:
        Sampling rate in ``(0, 1]``: audits run on every
        ``round(1/rate)``-th iteration (deterministic stride, iteration
        0 always audited).  ``1.0`` audits every iteration.
    cache_sample:
        Newest computed-table entries replayed per operation per audit.
    small_width:
        Width bound for the exhaustive BFV range check.
    """

    def __init__(
        self,
        bdd,
        rate: float = 1.0,
        cache_sample: int = DEFAULT_CACHE_SAMPLE,
        small_width: int = DEFAULT_SMALL_WIDTH,
    ) -> None:
        rate = float(rate)
        if not 0.0 < rate <= 1.0:
            raise SanitizerError(
                "sanitizer.rate",
                "sampling rate must be in (0, 1], got %r" % rate,
            )
        self.bdd = bdd
        self.rate = rate
        self.stride = max(1, int(round(1.0 / rate)))
        self.cache_sample = cache_sample
        self.small_width = small_width
        self.counts: Dict[str, int] = {
            "audits": 0,
            "nodes_scanned": 0,
            "cache_replayed": 0,
            "cache_skipped": 0,
            "vectors_audited": 0,
            "decompositions_audited": 0,
            "checkpoints_validated": 0,
            "journal_records_validated": 0,
        }

    def should_audit(self, iteration: int) -> bool:
        """True when the stride lands on ``iteration``."""
        return iteration % self.stride == 0

    def audit(
        self,
        iteration: int,
        roots: Sequence[int] = (),
        vectors: Sequence[Any] = (),
        decompositions: Sequence[Any] = (),
    ) -> bool:
        """Run one full audit pass if the stride selects ``iteration``.

        ``roots`` are extra GC roots for the refcount audit (matching
        what the engine would pass to ``collect_garbage``); ``vectors``
        are the BFVs and ``decompositions`` the conjunctive
        decompositions currently accumulated by the engine.  Returns
        True when a pass actually ran.
        """
        if not self.should_audit(iteration):
            return False
        bdd = self.bdd
        counts = self.counts
        # Audits replay kernels and rebuild characteristic functions,
        # which allocates scratch nodes; a hard node budget must meter
        # the run, not the auditor.
        saved_limit = bdd.node_limit
        bdd.node_limit = None
        try:
            counts["nodes_scanned"] += check_bdd_structure(bdd, iteration)
            check_refcounts(bdd, roots, iteration)
            replayed, skipped = check_cache_soundness(
                bdd, self.cache_sample, iteration
            )
            counts["cache_replayed"] += replayed
            counts["cache_skipped"] += skipped
            for vector in vectors:
                if vector is None:
                    continue
                check_bfv_canonical(vector, iteration, self.small_width)
                counts["vectors_audited"] += 1
            for decomposition in decompositions:
                if decomposition is None:
                    continue
                check_decomposition(decomposition, iteration)
                counts["decompositions_audited"] += 1
        finally:
            bdd.node_limit = saved_limit
        counts["audits"] += 1
        return True

    def validate_checkpoint(self, meta: Mapping[str, Any], path: Optional[str] = None) -> None:
        """Schema-validate loaded checkpoint metadata (counts the pass)."""
        validate_checkpoint_meta(meta, path)
        self.counts["checkpoints_validated"] += 1

    def validate_journal(self, record: Mapping[str, Any], line: Optional[int] = None) -> None:
        """Schema-validate one journal record (counts the pass)."""
        validate_journal_record(record, line)
        self.counts["journal_records_validated"] += 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe audit counters for ``ReachResult.extra['sanitizer']``."""
        out: Dict[str, Any] = dict(self.counts)
        out["rate"] = self.rate
        out["stride"] = self.stride
        return out

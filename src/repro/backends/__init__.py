"""Pluggable set-representation backends (see ``docs/backends.md``).

The :class:`~repro.backends.protocol.SetBackend` protocol abstracts the
set algebra the breadth-first reachability loop needs; implementations
here deliberately share **no** code with the BDD substrate, making them
independent differential oracles for the six BDD-based engines:

* :class:`~repro.backends.bitset.BitsetBackend` (``bitset``) — explicit
  packed-int characteristic vectors, exact ground truth for small
  state spaces;
* :class:`~repro.backends.zonotope.LogicalZonotopeBackend` (``zono``)
  — GF(2) generator-matrix sets, exact on XOR-dominated structure and
  a flagged sound over-approximation elsewhere.

:data:`BACKENDS` is the name-keyed registry;
:func:`~repro.backends.engine.backend_engine` adapts any entry to the
standard engine signature for ``repro.reach.ENGINES``.
"""

from __future__ import annotations

from typing import Dict, Type

from .bitset import BitsetBackend, BitsetSet
from .engine import backend_engine
from .protocol import SetBackend, State
from .zonotope import LogicalZonotopeBackend, Zonotope

#: Registry of available backends, keyed by engine name.
BACKENDS: Dict[str, Type[SetBackend]] = {
    BitsetBackend.name: BitsetBackend,
    LogicalZonotopeBackend.name: LogicalZonotopeBackend,
}

__all__ = [
    "BACKENDS",
    "BitsetBackend",
    "BitsetSet",
    "LogicalZonotopeBackend",
    "SetBackend",
    "State",
    "Zonotope",
    "backend_engine",
]

"""Explicit bitset backend: packed-int characteristic vectors.

A set of states over ``n`` latches is one Python integer of ``2**n``
bits — bit ``i`` set iff state ``i`` (little-endian over latch
declaration order) is a member.  Every operation is exact, which makes
this backend the differential campaign's **ground truth**: it shares no
code with the BDD substrate it audits.  Even the gate semantics are an
independent implementation — next states are computed by *bit-parallel
truth-table evaluation* (each net's value over all ``2**m`` input
valuations is an integer of ``2**m`` bits, combined with Python's
native bitwise operators), not by :class:`repro.sim.ConcreteSimulator`.

Feasibility is capped structurally: the state space must fit
``max_latches`` (default 22 → a 4M-bit mask) and the per-state image
work ``2**(latches+inputs)`` must fit ``max_space_bits``.  Beyond either
cap :meth:`BitsetBackend.from_circuit` raises
:class:`~repro.errors.ResourceLimitError` tagged ``"memory"``, which the
engine adapter reports as a Table-2-style M.O. cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.netlist import Circuit
from ..errors import CircuitError, ResourceLimitError
from .protocol import SetBackend, State

#: Largest latch count the packed representation accepts (2**22 bits
#: per set ≈ 0.5 MiB of mask).
DEFAULT_MAX_LATCHES = 22

#: Cap on ``latches + inputs``: one image step costs O(|frontier| *
#: 2**inputs) successor evaluations, and pre-image sweeps all
#: ``2**latches`` states once.
DEFAULT_MAX_SPACE_BITS = 24


@dataclass(frozen=True)
class BitsetSet:
    """One set handle: a ``2**n``-bit characteristic integer."""

    mask: int
    #: The bitset representation is exact by construction.
    exact: bool = True


class BitsetBackend(SetBackend):
    """Exact explicit-state sets over small state spaces."""

    name = "bitset"

    def __init__(
        self,
        circuit: Circuit,
        max_latches: int = DEFAULT_MAX_LATCHES,
        max_space_bits: int = DEFAULT_MAX_SPACE_BITS,
    ) -> None:
        circuit.validate()
        n = circuit.num_latches
        m = len(circuit.inputs)
        if n > max_latches:
            raise ResourceLimitError(
                "memory",
                "bitset backend caps at %d latches, circuit %r has %d"
                % (max_latches, circuit.name, n),
            )
        if n + m > max_space_bits:
            raise ResourceLimitError(
                "memory",
                "bitset backend caps latches+inputs at %d bits, "
                "circuit %r has %d" % (max_space_bits, circuit.name, n + m),
            )
        self.circuit = circuit
        self.num_latches = n
        self.num_inputs = m
        self._state_nets: Tuple[str, ...] = tuple(circuit.latches)
        self._data_nets: Tuple[str, ...] = tuple(
            latch.data for latch in circuit.latches.values()
        )
        #: All-ones over the input-valuation truth-table width.
        self._input_ones = (1 << (1 << m)) - 1
        #: Truth table of input j over all 2**m valuations: bit k of
        #: ``_input_tables[j]`` is bit j of valuation index k.
        self._input_tables: Tuple[int, ...] = tuple(
            self._variable_table(j) for j in range(m)
        )
        #: All-ones over the state space (the universe mask).
        self.full_mask = (1 << (1 << n)) - 1
        #: Initial state as a state index.
        self._initial_index = self._index_of(circuit.initial_state)
        #: Memoized per-state successor masks.
        self._successors: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Bit-parallel evaluation
    # ------------------------------------------------------------------

    def _variable_table(self, j: int) -> int:
        """Truth table of input variable ``j`` over all valuations."""
        width = 1 << self.num_inputs
        block = 1 << j
        table = 0
        for k in range(0, width, 2 * block):
            table |= ((1 << block) - 1) << (k + block)
        return table

    def _index_of(self, point: Sequence[bool]) -> int:
        if len(point) != self.num_latches:
            raise CircuitError(
                "state width %d does not match %d latches"
                % (len(point), self.num_latches)
            )
        index = 0
        for i, bit in enumerate(point):
            if bit:
                index |= 1 << i
        return index

    def _state_of(self, index: int) -> State:
        return tuple(
            bool(index >> i & 1) for i in range(self.num_latches)
        )

    def _successor_mask(self, state_index: int) -> int:
        """Successor set of one state, over every input valuation.

        Evaluates the combinational core once, bit-parallel across all
        ``2**m`` input valuations: every net's value is a ``2**m``-bit
        truth table, gates are native int bitwise operations.
        """
        cached = self._successors.get(state_index)
        if cached is not None:
            return cached
        ones = self._input_ones
        values: Dict[str, int] = {}
        for j, net in enumerate(self.circuit.inputs):
            values[net] = self._input_tables[j]
        for i, net in enumerate(self._state_nets):
            values[net] = ones if state_index >> i & 1 else 0
        for gate in self.circuit.topological_gates():
            operands = [values[net] for net in gate.inputs]
            op = gate.op
            if op == "AND" or op == "NAND":
                acc = operands[0]
                for v in operands[1:]:
                    acc &= v
                if op == "NAND":
                    acc ^= ones
            elif op == "OR" or op == "NOR":
                acc = operands[0]
                for v in operands[1:]:
                    acc |= v
                if op == "NOR":
                    acc ^= ones
            elif op == "XOR" or op == "XNOR":
                acc = operands[0]
                for v in operands[1:]:
                    acc ^= v
                if op == "XNOR":
                    acc ^= ones
            elif op == "NOT":
                acc = operands[0] ^ ones
            else:  # BUF
                acc = operands[0]
            values[gate.output] = acc
        data_tables = [values[net] for net in self._data_nets]
        mask = 0
        for k in range(1 << self.num_inputs):
            target = 0
            for i, table in enumerate(data_tables):
                if table >> k & 1:
                    target |= 1 << i
            mask |= 1 << target
        self._successors[state_index] = mask
        return mask

    # ------------------------------------------------------------------
    # SetBackend protocol
    # ------------------------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: Any, **options: Any) -> "BitsetBackend":
        # Engine-agnostic sweeps pass BDD-layer options (e.g.
        # ``selection_heuristic``, ``schedule``) uniformly to every
        # entry in ``ENGINES``; only the backend's own caps apply here,
        # the rest are ignored like every engine ignores options it has
        # no analogue for.
        return cls(
            circuit,
            max_latches=options.get("max_latches", DEFAULT_MAX_LATCHES),
            max_space_bits=options.get(
                "max_space_bits", DEFAULT_MAX_SPACE_BITS
            ),
        )

    def initial(
        self, initial_points: Optional[Sequence[Sequence[bool]]] = None
    ) -> BitsetSet:
        if initial_points is None:
            return BitsetSet(1 << self._initial_index)
        points = list(initial_points)
        if not points:
            raise CircuitError("initial state set must be non-empty")
        return self.from_points(points)

    def from_points(self, points: Iterable[Sequence[bool]]) -> BitsetSet:
        mask = 0
        for point in points:
            mask |= 1 << self._index_of(point)
        return BitsetSet(mask)

    def empty(self) -> BitsetSet:
        return BitsetSet(0)

    def universe(self) -> BitsetSet:
        return BitsetSet(self.full_mask)

    def image(self, s: BitsetSet) -> BitsetSet:
        out = 0
        mask = s.mask
        while mask:
            low = mask & -mask
            mask ^= low
            out |= self._successor_mask(low.bit_length() - 1)
        return BitsetSet(out, exact=s.exact)

    def pre_image(self, s: BitsetSet) -> BitsetSet:
        out = 0
        target = s.mask
        for index in range(1 << self.num_latches):
            if self._successor_mask(index) & target:
                out |= 1 << index
        return BitsetSet(out, exact=s.exact)

    def union(self, a: BitsetSet, b: BitsetSet) -> BitsetSet:
        return BitsetSet(a.mask | b.mask, exact=a.exact and b.exact)

    def intersect(self, a: BitsetSet, b: BitsetSet) -> BitsetSet:
        """Set intersection (exact; handy for the property tests)."""
        return BitsetSet(a.mask & b.mask, exact=a.exact and b.exact)

    def complement(self, s: BitsetSet) -> BitsetSet:
        """Complement within the state space (exact).

        Not part of the minimal protocol — the bitset backend offers it
        so the pre/image Galois-connection law (``image(S) <= T`` iff
        ``S <= ~pre(~T)``) is testable without backend internals.
        """
        return BitsetSet(s.mask ^ self.full_mask, exact=s.exact)

    def equal(self, a: BitsetSet, b: BitsetSet) -> bool:
        return a.mask == b.mask

    def subset(self, a: BitsetSet, b: BitsetSet) -> bool:
        return a.mask & ~b.mask == 0

    def contains(self, s: BitsetSet, point: Sequence[bool]) -> bool:
        return bool(s.mask >> self._index_of(point) & 1)

    def count(self, s: BitsetSet) -> int:
        return bin(s.mask).count("1")

    def size(self, s: BitsetSet) -> int:
        # Representation size: set bits (the stored characteristic
        # vector is dense, but popcount is the comparable statistic).
        return self.count(s)

    def enumerate_states(
        self, s: BitsetSet, limit: Optional[int] = None
    ) -> List[State]:
        if limit is not None and self.count(s) > limit:
            raise ResourceLimitError(
                "memory",
                "enumeration of %d states exceeds limit %d"
                % (self.count(s), limit),
            )
        states = []
        mask = s.mask
        while mask:
            low = mask & -mask
            mask ^= low
            states.append(self._state_of(low.bit_length() - 1))
        return states

    def to_payload(self, s: BitsetSet) -> Dict[str, Any]:
        return {"mask": hex(s.mask), "exact": s.exact}

    def from_payload(self, data: Dict[str, Any]) -> BitsetSet:
        return BitsetSet(int(str(data["mask"]), 16), bool(data["exact"]))

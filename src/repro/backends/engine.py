"""Adapter from :class:`~repro.backends.protocol.SetBackend` to an engine.

:func:`backend_engine` wraps a backend class in a function with the
standard ``repro.reach.ENGINES`` signature, so non-BDD set
representations inherit the whole harness for free: resource budgets
and T.O./M.O./I.O. reporting through :class:`RunMonitor`, per-iteration
checkpoints with kill-resume (set payloads ride the checkpoint
container's ``meta.extra`` slot as JSON), fault-injection hooks,
sanitizer cadence, per-iteration tracing, and the fallback ladder /
scheduler integration that keys off ``ENGINES`` membership.

The loop is the Kleene iteration ``R <- R | image(R)``, stopping when
the union changes nothing — so ``result.iterations`` counts every pass
including the final fix-point-confirming one, directly comparable to
the BDD engines' counting.  Imaging the **full reached set** (not a
frontier) is what keeps the loop sound for over-approximating
backends: a zonotope union is an affine *hull*, so ``reached`` holds
states no frontier ever held, and a frontier-only image would declare
a "fix point" without ever computing their successors.  For exact
backends the fix point lands at the same iteration as frontier-based
BFS (``image(reached_k)`` adds a state iff some distance-``k`` state
has a new successor), so the bitset engine's iteration count still
equals BFS depth; the extra per-state image work is absorbed by the
backend's successor memoization.

On completion ``result.extra`` carries:

* ``"backend"`` — the backend's registry name;
* ``"exact"`` — the reached handle's exactness flag (JSON-safe, so it
  survives the supervisor process boundary);
* ``"reached_states"`` — the reached set as a *set* of
  declaration-order state tuples when small enough to enumerate
  (intentionally non-JSON, so it is available to in-process
  differential tests but dropped from cross-process results).

The monitor runs against a throwaway empty BDD manager: budgets, the
checkpoint container, and the sanitizer all expect one, and an empty
manager gives them a well-formed no-op target (node budgets simply
never trip — backend feasibility is enforced structurally by
``from_circuit``'s caps instead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence, Type

from ..bdd import BDD
from ..errors import ResourceLimitError
from ..obs import ensure_tracer
from .protocol import SetBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reach.common import ReachLimits, ReachResult

#: Largest reached-set cardinality enumerated into
#: ``extra["reached_states"]`` — differential-comparison-sized spaces
#: only.
ENUMERATION_CAP = 4096


def backend_engine(backend_cls: Type[SetBackend]):
    """An ``ENGINES``-compatible engine function for ``backend_cls``."""
    # Imported here, not at module scope: ``repro.reach`` imports this
    # module to register the backend engines, so a top-level import of
    # ``repro.reach.common`` would be circular when ``repro.backends``
    # is imported first.
    from ..reach.common import ReachResult, RunMonitor

    def engine(
        circuit,
        slots: Optional[Sequence[str]] = None,
        limits: Optional[ReachLimits] = None,
        count_states: bool = True,
        order_name: str = "?",
        space: Any = None,
        initial_points=None,
        checkpointer=None,
        tracer=None,
        sanitize=None,
        **options: Any,
    ) -> ReachResult:
        # ``slots`` / ``space`` are BDD-layout concerns with no backend
        # analogue; accepted (the harness passes them) and ignored.
        del slots, space
        tracer = ensure_tracer(tracer)
        scratch = BDD()
        tracer.attach(scratch)
        tracer.bind(
            engine=backend_cls.name, circuit=circuit.name, order=order_name
        )
        monitor = RunMonitor(
            scratch, limits, checkpointer, tracer=tracer, sanitize=sanitize
        )
        result = ReachResult(
            engine=backend_cls.name,
            circuit=circuit.name,
            order=order_name,
            completed=False,
        )
        iterations = 0
        reached = None
        backend = None
        peak_size = 0
        try:
            # Inside the try: infeasible circuits (over the backend's
            # structural caps) degrade to an M.O. result, not a crash.
            with tracer.span("setup"):
                backend = backend_cls.from_circuit(circuit, **options)
                init = backend.initial(initial_points)
            reached = init
            snapshot = monitor.restore()
            if snapshot is not None:
                payload = snapshot.meta.get("extra")
                if isinstance(payload, dict) and "reached" in payload:
                    reached = backend.from_payload(payload["reached"])
                    iterations = snapshot.iteration
                    result.extra["resumed_from"] = snapshot.iteration
            while True:
                iterations += 1
                tracer.begin_iteration(iterations)
                with tracer.span("image"):
                    image = backend.image(reached)
                with tracer.span("union"):
                    new_reached = backend.union(reached, image)
                with tracer.span("fixpoint_test"):
                    fixed = backend.equal(new_reached, reached)
                if fixed:
                    # Keep ``reached``: a final over-approximate image
                    # absorbed by the union must not taint the flag —
                    # the fix point certifies reached contains its own
                    # (true) image, so its exactness stands on its own
                    # construction history.
                    if tracer.enabled:
                        with tracer.span("telemetry"):
                            image_size = backend.size(image)
                            reached_size = backend.size(reached)
                        tracer.end_iteration(
                            iterations,
                            frontier_size=image_size,
                            reached_size=reached_size,
                            chi_size=reached_size,
                            fixpoint=True,
                        )
                    break
                reached = new_reached
                if monitor.want_checkpoint(iterations):
                    monitor.save_state(
                        iterations,
                        meta={"reached": backend.to_payload(reached)},
                    )
                monitor.checkpoint((), iterations)
                monitor.audit(iterations)
                reached_size = backend.size(reached)
                image_size = backend.size(image)
                if reached_size + image_size > peak_size:
                    peak_size = reached_size + image_size
                if tracer.enabled:
                    tracer.end_iteration(
                        iterations,
                        frontier_size=image_size,
                        reached_size=reached_size,
                        chi_size=reached_size,
                    )
            result.completed = True
        except ResourceLimitError as error:
            monitor.annotate(result, error, iterations)
        except RecursionError:
            monitor.annotate(
                result,
                ResourceLimitError("depth", "recursion limit exceeded"),
                iterations,
            )
        result.iterations = iterations
        with tracer.span("finalize"):
            if monitor.sanitizer is not None:
                result.extra["sanitizer"] = monitor.sanitizer.snapshot()
            if result.completed and backend is not None and reached is not None:
                # peak_live_nodes is the cross-engine "peak representation"
                # statistic; for backends that is the largest
                # reached+frontier footprint any iteration held.
                result.peak_live_nodes = max(
                    peak_size, backend.size(reached)
                )
                result.reached_size = backend.size(reached)
                result.extra["backend"] = backend.name
                result.extra["exact"] = bool(getattr(reached, "exact", True))
                states = backend.count(reached)
                if count_states:
                    result.num_states = states
                if states <= ENUMERATION_CAP:
                    result.extra["reached_states"] = set(
                        backend.enumerate_states(reached, ENUMERATION_CAP)
                    )
        # Captured after the finalize span, matching the BDD engines.
        result.seconds = monitor.elapsed
        if tracer.enabled:
            result.extra["obs"] = tracer.summary()
            tracer.finish(result)
        return result

    engine.__name__ = "%s_reachability" % backend_cls.name
    engine.__qualname__ = engine.__name__
    engine.__doc__ = (
        "Breadth-first reachability over the %r backend "
        "(generated by repro.backends.engine.backend_engine)."
        % backend_cls.name
    )
    return engine

"""The :class:`SetBackend` protocol: pluggable symbolic set representations.

The paper's BFV representation is one point in a space of symbolic set
representations.  This module pins down the *minimal* contract a
representation must satisfy to drive the breadth-first reachability loop
and to serve as a differential oracle for the BDD-substrate engines:

* **build from a netlist** — :meth:`SetBackend.from_circuit`;
* **set construction** — :meth:`~SetBackend.initial`,
  :meth:`~SetBackend.from_points`, :meth:`~SetBackend.empty`,
  :meth:`~SetBackend.universe`;
* **transformers** — :meth:`~SetBackend.image` /
  :meth:`~SetBackend.pre_image` (one synchronous step forward /
  backward over all input valuations) and :meth:`~SetBackend.union`;
* **fix-point test** — :meth:`~SetBackend.equal` (set equality; the
  reachability loop stops when ``union(reached, image) == reached``);
* **statistics** — :meth:`~SetBackend.count` (number of states) and
  :meth:`~SetBackend.size` (representation size);
* **canonical state enumeration** — :meth:`~SetBackend.enumerate_states`
  yields latch-declaration-order tuples for small spaces, the common
  currency the differential campaign compares in.

Set handles are backend-specific opaque objects with one mandatory
attribute: ``exact``.

**Exactness semantics.**  A handle with ``exact=True`` denotes *exactly*
the set its construction history describes.  ``exact=False`` means the
handle is a **sound over-approximation**: it contains every state of the
true set and possibly more.  Backends must never under-approximate —
``exact`` is a one-way ratchet (any operation with an inexact operand
yields an inexact result; an exact operation on exact operands stays
exact).  The explicit bitset backend (:mod:`repro.backends.bitset`) is
exact everywhere; the logical-zonotope backend
(:mod:`repro.backends.zonotope`) is exact for XOR/NOT-dominated
structure and over-approximates through AND-induced generator residues
and non-coset unions, flagging each loss of precision.

Backends plug into the reachability harness through
:func:`repro.backends.engine.backend_engine`, which adapts any
``SetBackend`` subclass to the standard engine signature (budgets,
checkpointing, tracing, telemetry) and registers it in
``repro.reach.ENGINES`` — see ``docs/backends.md`` for the full contract
and a how-to-add-a-backend walkthrough.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

State = Tuple[bool, ...]


class SetBackend(abc.ABC):
    """Abstract symbolic set representation over one circuit's state space.

    Subclasses fix a representation for subsets of the circuit's
    ``2**num_latches`` state space and implement the operations below.
    All state tuples cross the boundary in **latch declaration order**
    (the order of ``circuit.latches``), matching
    :func:`repro.sim.explicit_reachable` and
    :meth:`repro.reach.common.ReachSpace.initial_point_set`.
    """

    #: Registry/engine name of the backend (e.g. ``"bitset"``).
    name: str = "?"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def from_circuit(cls, circuit: Any, **options: Any) -> "SetBackend":
        """Build a backend instance from a validated :class:`Circuit`.

        Feasibility limits (state-space caps, input-valuation caps) are
        enforced here with :class:`repro.errors.ResourceLimitError`
        tagged ``"memory"``, so an infeasible circuit degrades to an
        M.O. result instead of crashing the attempt.
        """

    @abc.abstractmethod
    def initial(self, initial_points: Optional[Sequence[Sequence[bool]]] = None) -> Any:
        """The initial state set (default: the circuit's reset state).

        ``initial_points``, when given, lists initial states in latch
        declaration order — the same convention as
        :meth:`repro.reach.common.ReachSpace.initial_point_set`.
        """

    @abc.abstractmethod
    def from_points(self, points: Iterable[Sequence[bool]]) -> Any:
        """A set holding exactly ``points`` — or, for representations
        that cannot express arbitrary finite sets, the tightest
        representable superset with ``exact`` flagged accordingly."""

    @abc.abstractmethod
    def empty(self) -> Any:
        """The empty set."""

    @abc.abstractmethod
    def universe(self) -> Any:
        """The full state space."""

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def image(self, s: Any) -> Any:
        """States reachable from ``s`` in exactly one synchronous step,
        over every primary-input valuation."""

    @abc.abstractmethod
    def pre_image(self, s: Any) -> Any:
        """States with at least one successor in ``s`` (existential
        backward step over every primary-input valuation)."""

    @abc.abstractmethod
    def union(self, a: Any, b: Any) -> Any:
        """Set union — or the representation's tightest superset of it,
        with ``exact`` flagged when precision is lost."""

    # ------------------------------------------------------------------
    # Tests and statistics
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def equal(self, a: Any, b: Any) -> bool:
        """Set equality (the reachability fix-point test).

        Compares the *sets*, not the exactness flags: two handles
        denoting the same set are equal even if one was built
        approximately.
        """

    def subset(self, a: Any, b: Any) -> bool:
        """``a`` is a subset of ``b``.

        Default implementation via the union/equality laws
        (``a <= b  iff  a | b == b``), which is exact for any backend
        whose union of a set with a superset returns the superset —
        true for both shipped backends.  Override when a direct test is
        cheaper.
        """
        return self.equal(self.union(a, b), b)

    @abc.abstractmethod
    def contains(self, s: Any, point: Sequence[bool]) -> bool:
        """Membership of one declaration-order state tuple."""

    @abc.abstractmethod
    def count(self, s: Any) -> int:
        """Number of states in ``s`` (of the represented superset when
        ``s.exact`` is false)."""

    @abc.abstractmethod
    def size(self, s: Any) -> int:
        """Representation size (the analogue of shared BDD nodes)."""

    @abc.abstractmethod
    def enumerate_states(
        self, s: Any, limit: Optional[int] = None
    ) -> List[State]:
        """All member states as declaration-order tuples, sorted.

        Raises :class:`repro.errors.ResourceLimitError` tagged
        ``"memory"`` when the set holds more than ``limit`` states —
        enumeration is meant for small (differential-comparison-sized)
        spaces only.
        """

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def to_payload(self, s: Any) -> Dict[str, Any]:
        """JSON-safe serialization of a set handle (checkpoint rides in
        the container's ``meta.extra`` slot)."""

    @abc.abstractmethod
    def from_payload(self, data: Dict[str, Any]) -> Any:
        """Inverse of :meth:`to_payload`."""

"""Logical-zonotope backend: generator-matrix XOR/AND set arithmetic.

A *logical zonotope* (Alanwar et al., see PAPERS.md) represents a set
of binary vectors as ``c XOR {sum_i beta_i g_i : beta in {0,1}^k}`` — a
center ``c`` and generator vectors ``g_i`` over GF(2).  Because GF(2)
coefficients are exactly ``{0,1}``, the generated set is the *linear
span* of the generators shifted by the center: every logical zonotope
is an affine coset of GF(2)^n.  That observation drives this whole
module: generator matrices canonicalize by Gaussian elimination, set
equality is comparison of canonical forms, and cardinality is
``2**rank``.

**Image computation** evaluates the netlist over *affine forms* — each
net carries ``const XOR sum_i a_i beta_i`` with coefficient bitmask
``a`` over shared generator symbols, preserving correlations exactly
through XOR/XNOR/NOT/BUF.  AND is where zonotopes over-approximate:

    (cu + tA)(cv + tB) = cu cv + cu tB + cv tA + tA tB

and ``tA tB`` expands to the affine term ``sum a_i b_i beta_i`` plus the
nonlinear residue ``sum_{i<j} (a_i b_j + a_j b_i) beta_i beta_j``.  The
residue is zero exactly when ``A == B`` or either is zero (so ``x AND
x``-style correlations stay exact); otherwise it is replaced by one
**fresh generator symbol per distinct operand pair** — sound because
for every concrete ``beta`` the fresh symbol can take the residue's
true value, and every downstream use shares the same symbol.  An image
is exact iff no residue symbol survives into the next-state generator
columns (residues that cancel structurally, e.g. through XOR, cost
nothing).

**Union** returns the affine hull (``span(G_a, G_b, c_a XOR c_b)``),
which is exact iff the hull's cardinality equals ``|A| + |B| - |A & B|``
— checked by rank arithmetic, so the ``exact`` flag never guesses.

**Pre-image** solves the affine relation: with state bits as free
symbols, the latch forms give ``next = C XOR M beta``; states with a
successor in target ``T`` are the projection onto the state symbols of
the solution space of ``M beta XOR G_T tau = C XOR c_T`` — one GF(2)
linear solve.  Exact when the relation needed no residue symbols.

Every operation keeps the one-way ``exact`` ratchet of
:mod:`repro.backends.protocol`: results are always supersets of the
true set, never under-approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.netlist import Circuit
from ..errors import CircuitError, ResourceLimitError
from .protocol import SetBackend, State

# ----------------------------------------------------------------------
# GF(2) linear algebra on int-packed row vectors
# ----------------------------------------------------------------------


def rref(rows: Iterable[int]) -> Tuple[int, ...]:
    """Reduced row-echelon basis of the span of ``rows``.

    Rows are bit-packed GF(2) vectors.  The result is fully reduced
    (each pivot bit appears in exactly one row) and sorted by
    descending pivot — a canonical basis for the span.
    """
    basis: Dict[int, int] = {}
    for row in rows:
        row = reduce_by(row, basis)
        if not row:
            continue
        pivot = row.bit_length() - 1
        for p, existing in basis.items():
            if existing >> pivot & 1:
                basis[p] = existing ^ row
        basis[pivot] = row
    return tuple(basis[p] for p in sorted(basis, reverse=True))


def reduce_by(vector: int, basis: Dict[int, int]) -> int:
    """Canonical residue of ``vector`` modulo a fully reduced basis."""
    for pivot, row in basis.items():
        if vector >> pivot & 1:
            vector ^= row
    return vector


def _basis_map(rows: Sequence[int]) -> Dict[int, int]:
    return {row.bit_length() - 1: row for row in rows}


def in_span(vector: int, rows: Sequence[int]) -> bool:
    """Membership of ``vector`` in the span of a reduced basis."""
    return reduce_by(vector, _basis_map(rows)) == 0


def solve_affine(
    equations: Sequence[Tuple[int, int]], unknowns: int
) -> Optional[Tuple[int, List[int]]]:
    """Solve ``A u = d`` over GF(2).

    ``equations`` are ``(coefficient_mask, rhs_bit)`` rows over
    ``unknowns`` bit-indexed variables.  Returns ``(particular,
    null_basis)`` — the full solution set is ``particular XOR
    span(null_basis)`` — or None when inconsistent.
    """
    pivots: Dict[int, Tuple[int, int]] = {}
    for mask, rhs in equations:
        for pivot, (row_mask, row_rhs) in pivots.items():
            if mask >> pivot & 1:
                mask ^= row_mask
                rhs ^= row_rhs
        if mask == 0:
            if rhs:
                return None
            continue
        pivot = mask.bit_length() - 1
        for p, (row_mask, row_rhs) in list(pivots.items()):
            if row_mask >> pivot & 1:
                pivots[p] = (row_mask ^ mask, row_rhs ^ rhs)
        pivots[pivot] = (mask, rhs)
    particular = 0
    for pivot, (_, rhs) in pivots.items():
        if rhs:
            particular |= 1 << pivot
    null_basis = []
    for free in range(unknowns):
        if free in pivots:
            continue
        vector = 1 << free
        for pivot, (mask, _) in pivots.items():
            if mask >> free & 1:
                vector |= 1 << pivot
        null_basis.append(vector)
    return particular, null_basis


# ----------------------------------------------------------------------
# The zonotope handle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Zonotope:
    """One set handle: an affine coset in canonical form (or empty).

    ``center`` is reduced modulo the generator span and ``gens`` is a
    reduced row-echelon basis, so two handles denote the same set iff
    their fields compare equal (``exact`` rides along but is not part
    of set identity).
    """

    width: int
    center: int
    gens: Tuple[int, ...]
    exact: bool = True
    is_empty: bool = False

    @classmethod
    def make(
        cls,
        width: int,
        center: int,
        gens: Iterable[int],
        exact: bool,
    ) -> "Zonotope":
        basis = rref(gens)
        center = reduce_by(center, _basis_map(basis))
        return cls(width, center, basis, exact)

    @classmethod
    def empty_set(cls, width: int, exact: bool = True) -> "Zonotope":
        return cls(width, 0, (), exact, is_empty=True)

    @property
    def rank(self) -> int:
        return len(self.gens)

    def same_set(self, other: "Zonotope") -> bool:
        if self.is_empty or other.is_empty:
            return self.is_empty and other.is_empty
        return self.center == other.center and self.gens == other.gens


# Affine forms used during gate evaluation: (constant bit, coefficient
# bitmask over generator symbols).
_Form = Tuple[int, int]


class _FormEvaluator:
    """Evaluates the combinational core over shared-symbol affine forms."""

    def __init__(self, circuit: Circuit, next_symbol: int) -> None:
        self.circuit = circuit
        self.next_symbol = next_symbol
        #: Residue symbol per distinct AND-operand coefficient pair
        #: (symmetric in the pair), so repeated structure reuses one
        #: symbol instead of loosening twice.
        self._residues: Dict[Tuple[int, int], int] = {}

    @property
    def residue_symbols(self) -> List[int]:
        return sorted(self._residues.values())

    def _and(self, u: _Form, v: _Form) -> _Form:
        cu, a = u
        cv, b = v
        coeffs = (b if cu else 0) ^ (a if cv else 0) ^ (a & b)
        if a and b and a != b:
            key = (a, b) if a <= b else (b, a)
            symbol = self._residues.get(key)
            if symbol is None:
                symbol = self.next_symbol
                self.next_symbol += 1
                self._residues[key] = symbol
            coeffs ^= 1 << symbol
        return (cu & cv, coeffs)

    def _not(self, u: _Form) -> _Form:
        return (u[0] ^ 1, u[1])

    def evaluate(self, values: Dict[str, _Form]) -> Dict[str, _Form]:
        """Fill ``values`` (seeded with input/state forms) gate by gate."""
        for gate in self.circuit.topological_gates():
            operands = [values[net] for net in gate.inputs]
            op = gate.op
            if op in ("AND", "NAND"):
                acc = operands[0]
                for v in operands[1:]:
                    acc = self._and(acc, v)
                if op == "NAND":
                    acc = self._not(acc)
            elif op in ("OR", "NOR"):
                acc = self._not(operands[0])
                for v in operands[1:]:
                    acc = self._and(acc, self._not(v))
                if op == "OR":
                    acc = self._not(acc)
            elif op in ("XOR", "XNOR"):
                const, coeffs = operands[0]
                for c2, k2 in operands[1:]:
                    const ^= c2
                    coeffs ^= k2
                acc = (const ^ 1, coeffs) if op == "XNOR" else (const, coeffs)
            elif op == "NOT":
                acc = self._not(operands[0])
            else:  # BUF
                acc = operands[0]
            values[gate.output] = acc
        return values


class LogicalZonotopeBackend(SetBackend):
    """Affine-coset sets with exactness-tracked over-approximation."""

    name = "zono"

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.num_latches = circuit.num_latches
        self.num_inputs = len(circuit.inputs)
        self._state_nets: Tuple[str, ...] = tuple(circuit.latches)
        self._data_nets: Tuple[str, ...] = tuple(
            latch.data for latch in circuit.latches.values()
        )
        self._state_mask = (1 << self.num_latches) - 1
        #: Lazily built affine relation for pre-image: latch forms over
        #: (state, input, residue) symbols plus the symbol count.
        self._relation: Optional[Tuple[List[_Form], int, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_circuit(
        cls, circuit: Any, **options: Any
    ) -> "LogicalZonotopeBackend":
        # Engine-agnostic sweeps pass BDD-layer options uniformly to
        # every entry in ``ENGINES``; this backend has no tunables, so
        # all of them are ignored.
        del options
        return cls(circuit)

    def _index_of(self, point: Sequence[bool]) -> int:
        if len(point) != self.num_latches:
            raise CircuitError(
                "state width %d does not match %d latches"
                % (len(point), self.num_latches)
            )
        index = 0
        for i, bit in enumerate(point):
            if bit:
                index |= 1 << i
        return index

    def initial(
        self, initial_points: Optional[Sequence[Sequence[bool]]] = None
    ) -> Zonotope:
        if initial_points is None:
            points: List[Sequence[bool]] = [self.circuit.initial_state]
        else:
            points = list(initial_points)
            if not points:
                raise CircuitError("initial state set must be non-empty")
        return self.from_points(points)

    def from_points(self, points: Iterable[Sequence[bool]]) -> Zonotope:
        # Built as one affine hull (not a fold of pairwise unions): the
        # exact flag is a one-way ratchet, so an intermediate non-coset
        # prefix would flag a final point set that *is* a coset.  The
        # hull is exact iff its cardinality matches the distinct points.
        indices: List[int] = []
        seen = set()
        for point in points:
            index = self._index_of(point)
            if index not in seen:
                seen.add(index)
                indices.append(index)
        if not indices:
            return Zonotope.empty_set(self.num_latches)
        center = indices[0]
        basis = rref(index ^ center for index in indices[1:])
        exact = (1 << len(basis)) == len(indices)
        return Zonotope.make(self.num_latches, center, basis, exact)

    def empty(self) -> Zonotope:
        return Zonotope.empty_set(self.num_latches)

    def universe(self) -> Zonotope:
        gens = tuple(
            1 << i for i in reversed(range(self.num_latches))
        )
        return Zonotope(self.num_latches, 0, gens)

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def image(self, s: Zonotope) -> Zonotope:
        if s.is_empty:
            return Zonotope.empty_set(self.num_latches, s.exact)
        k0 = s.rank
        values: Dict[str, _Form] = {}
        for i, net in enumerate(self._state_nets):
            coeffs = 0
            for j, gen in enumerate(s.gens):
                if gen >> i & 1:
                    coeffs |= 1 << j
            values[net] = (s.center >> i & 1, coeffs)
        for j, net in enumerate(self.circuit.inputs):
            values[net] = (0, 1 << (k0 + j))
        evaluator = _FormEvaluator(self.circuit, k0 + self.num_inputs)
        evaluator.evaluate(values)
        forms = [values[net] for net in self._data_nets]
        center = 0
        for i, (const, _) in enumerate(forms):
            if const:
                center |= 1 << i
        columns = []
        residue_survives = False
        first_residue = k0 + self.num_inputs
        for symbol in range(evaluator.next_symbol):
            column = 0
            for i, (_, coeffs) in enumerate(forms):
                if coeffs >> symbol & 1:
                    column |= 1 << i
            if column:
                columns.append(column)
                if symbol >= first_residue:
                    residue_survives = True
        return Zonotope.make(
            self.num_latches,
            center,
            columns,
            exact=s.exact and not residue_survives,
        )

    def pre_image(self, t: Zonotope) -> Zonotope:
        if t.is_empty:
            return Zonotope.empty_set(self.num_latches, t.exact)
        forms, symbols, residues = self._relation_forms()
        kt = t.rank
        equations = []
        for i, (const, coeffs) in enumerate(forms):
            mask = coeffs
            for h, gen in enumerate(t.gens):
                if gen >> i & 1:
                    mask |= 1 << (symbols + h)
            rhs = const ^ (t.center >> i & 1)
            equations.append((mask, rhs))
        solution = solve_affine(equations, symbols + kt)
        relation_exact = residues == 0
        if solution is None:
            # The (super-)relation reaches nothing in the (super-)target,
            # so the true pre-image is empty too — exact by emptiness.
            return Zonotope.empty_set(self.num_latches, t.exact)
        particular, null_basis = solution
        center = particular & self._state_mask
        gens = [
            vector & self._state_mask
            for vector in null_basis
            if vector & self._state_mask
        ]
        return Zonotope.make(
            self.num_latches,
            center,
            gens,
            exact=t.exact and relation_exact,
        )

    def _relation_forms(self) -> Tuple[List[_Form], int, int]:
        """Affine next-state forms over free (state, input) symbols.

        Returns ``(latch forms, total symbol count, residue count)``;
        cached — the relation does not depend on the argument set.
        """
        if self._relation is not None:
            return self._relation
        n, m = self.num_latches, self.num_inputs
        values: Dict[str, _Form] = {}
        for i, net in enumerate(self._state_nets):
            values[net] = (0, 1 << i)
        for j, net in enumerate(self.circuit.inputs):
            values[net] = (0, 1 << (n + j))
        evaluator = _FormEvaluator(self.circuit, n + m)
        evaluator.evaluate(values)
        forms = [values[net] for net in self._data_nets]
        self._relation = (
            forms,
            evaluator.next_symbol,
            evaluator.next_symbol - n - m,
        )
        return self._relation

    def union(self, a: Zonotope, b: Zonotope) -> Zonotope:
        if a.is_empty:
            return Zonotope(
                b.width, b.center, b.gens, b.exact and a.exact, b.is_empty
            )
        if b.is_empty:
            return Zonotope(
                a.width, a.center, a.gens, a.exact and b.exact, a.is_empty
            )
        delta = a.center ^ b.center
        hull = rref(a.gens + b.gens + (delta,))
        joint = rref(a.gens + b.gens)
        if in_span(delta, joint):
            intersection = 1 << (a.rank + b.rank - len(joint))
        else:
            intersection = 0
        union_cardinality = (1 << a.rank) + (1 << b.rank) - intersection
        hull_exact = (1 << len(hull)) == union_cardinality
        return Zonotope.make(
            self.num_latches,
            a.center,
            hull,
            exact=a.exact and b.exact and hull_exact,
        )

    # ------------------------------------------------------------------
    # Tests and statistics
    # ------------------------------------------------------------------

    def equal(self, a: Zonotope, b: Zonotope) -> bool:
        return a.same_set(b)

    def contains(self, s: Zonotope, point: Sequence[bool]) -> bool:
        if s.is_empty:
            return False
        residual = reduce_by(
            self._index_of(point) ^ s.center, _basis_map(s.gens)
        )
        return residual == 0

    def count(self, s: Zonotope) -> int:
        return 0 if s.is_empty else 1 << s.rank

    def size(self, s: Zonotope) -> int:
        # Representation size: center plus generator rows.
        return 0 if s.is_empty else 1 + s.rank

    def enumerate_states(
        self, s: Zonotope, limit: Optional[int] = None
    ) -> List[State]:
        if s.is_empty:
            return []
        total = self.count(s)
        if limit is not None and total > limit:
            raise ResourceLimitError(
                "memory",
                "enumeration of %d states exceeds limit %d" % (total, limit),
            )
        indices = [s.center]
        for gen in s.gens:
            indices += [index ^ gen for index in indices]
        states = [
            tuple(bool(index >> i & 1) for i in range(self.num_latches))
            for index in indices
        ]
        states.sort()
        return states

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def to_payload(self, s: Zonotope) -> Dict[str, Any]:
        return {
            "center": hex(s.center),
            "gens": [hex(gen) for gen in s.gens],
            "exact": s.exact,
            "empty": s.is_empty,
        }

    def from_payload(self, data: Dict[str, Any]) -> Zonotope:
        if data.get("empty"):
            return Zonotope.empty_set(self.num_latches, bool(data["exact"]))
        return Zonotope.make(
            self.num_latches,
            int(str(data["center"]), 16),
            [int(str(gen), 16) for gen in data["gens"]],
            bool(data["exact"]),
        )

"""Pure-Python ROBDD engine.

This subpackage is the decision-diagram substrate for the reproduction of
Goel & Bryant's DATE 2003 Boolean-functional-vector paper.  The paper's
experiments were run on a C BDD package (CUDD inside VIS); no BDD library
is available in this environment, so the substrate is implemented from
scratch: unique/computed tables, reference counting with mark-and-sweep
GC, the classic apply/ITE operations, quantification with a fused
relational product, functional composition, the ``constrain`` /
``restrict`` generalized cofactors, dynamic reordering (in-place swaps +
sifting), SAT counting and model enumeration, and DOT export.

Public entry points:

* :class:`BDD` — the manager; all operations as methods on raw ``int``
  node handles (fast path, explicit ``incref``/``decref``).
* :class:`Function` — operator-overloaded wrapper that pins its node.
"""

from .expr import parse, to_expr
from .function import Function
from .manager import BDD

__all__ = ["BDD", "Function", "parse", "to_expr"]

"""Per-operation computed tables with packed integer keys.

The BDD kernels memoize subproblem results in *computed tables*.  The
seed implementation used one shared ``dict`` keyed by tuples like
``("&", f, g)`` — every probe paid a tuple allocation plus a string-tag
hash, and the whole table was wiped at every garbage collection.  This
module replaces it with:

* **one table per operation** (no string tags, no cross-op interference),
* **packed integer keys** — operands are packed into a single int with
  32-bit fields (e.g. ``g << 32 | f`` for the commutative binary ops),
  so a probe hashes one small int,
* **bounded size with batched oldest-half eviction** — when a table
  reaches :data:`DEFAULT_LIMIT` entries, :func:`evict_half` rebuilds it
  from the newest half (Python dicts preserve insertion order), which
  amortizes to O(1) per insert,
* **hit / miss / insert / eviction / sweep counters** per operation,
  surfaced through :meth:`repro.bdd.manager.BDD.cache_stats`,
* **live-preserving garbage collection** — at GC time, entries whose
  operand and result nodes are all marked live are *kept* (node handles
  are stable across GC), so reachability iterations stop rebuilding
  warm state; only entries referencing dead (freeable, hence
  reusable) node slots are dropped.

Key layouts (``f``/``g``/``h``/``c`` are node handles, assumed to fit
32 bits — the node-count budgets in this reproduction stay far below
``2**32``; ``var`` is a variable index, ``cid``/``iid`` intern ids for
level-sorted quantification cubes / cofactor literal lists, ``i`` the
current index into the interned tuple):

========== ==========================================================
op          key
========== ==========================================================
not         ``f``
and/or/xor  ``g << 32 | f``           (normalized ``f < g``)
ite         ``f << 64 | g << 32 | h``
exists      ``(cid << 64) | (i << 32) | f``
forall      ``(cid << 64) | (i << 32) | f``
and_exists  ``(cid << 96) | (i << 64) | (g << 32) | f``  (``f < g``)
cofactor    ``(var << 33) | (value << 32) | f``
cof_cube    ``(iid << 64) | (i << 32) | f``
constrain   ``c << 32 | f``
restrict    ``c << 32 | f``
compose     ``(var << 64) | (g << 32) | f``
========== ==========================================================

Quantification cubes are interned (tuple -> small id) per manager, so
the inner recursion threads an *index* into the cube rather than
re-slicing ``cube[1:]`` tuples at every level.  Intern tables are
cleared together with the computed tables on reorder (the level-sorted
tuples change meaning), and kept across GC (they reference variables,
not nodes).
"""

from __future__ import annotations

from typing import Dict, List

# Operation codes — indexes into the per-manager table/stats lists.
OP_NOT = 0
OP_AND = 1
OP_OR = 2
OP_XOR = 3
OP_ITE = 4
OP_EXISTS = 5
OP_FORALL = 6
OP_AND_EXISTS = 7
OP_COFACTOR = 8
OP_COFACTOR_CUBE = 9
OP_CONSTRAIN = 10
OP_RESTRICT = 11
OP_COMPOSE = 12
N_OPS = 13

OP_NAMES = (
    "not",
    "and",
    "or",
    "xor",
    "ite",
    "exists",
    "forall",
    "and_exists",
    "cofactor",
    "cofactor_cube",
    "constrain",
    "restrict",
    "compose",
)

#: Bit width of one node field in a packed key.
NODE_SHIFT = 32
NODE_MASK = (1 << NODE_SHIFT) - 1

#: Default per-operation entry bound (see ``BDD.cache_limit``).  Sized
#: so that single large image computations (millions of subproblems)
#: do not churn through mid-operation evictions — the seed's shared
#: table was unbounded between collections.
DEFAULT_LIMIT = 1 << 20

#: Per-op shifts of the key fields that hold *node handles* (the result
#: value is always a node and is checked separately).  Used by
#: :func:`sweep` to decide whether an entry may survive a GC.
_NODE_FIELDS = (
    (0,),  # not (key is the operand node itself)
    (0, 32),  # and
    (0, 32),  # or
    (0, 32),  # xor
    (0, 32, 64),  # ite
    (0,),  # exists
    (0,),  # forall
    (0, 32),  # and_exists
    (0,),  # cofactor
    (0,),  # cofactor_cube
    (0, 32),  # constrain
    (0, 32),  # restrict
    (0, 32),  # compose
)

# Stats slots (one list of 5 counters per op).
HITS = 0
MISSES = 1
INSERTS = 2
EVICTIONS = 3
SWEPT = 4


def new_tables() -> List[Dict[int, int]]:
    """Fresh empty computed tables, one dict per operation."""
    return [dict() for _ in range(N_OPS)]


def new_stats() -> List[List[int]]:
    """Fresh counters: ``[hits, misses, inserts, evictions, swept]``."""
    return [[0, 0, 0, 0, 0] for _ in range(N_OPS)]


def evict_half(table: Dict[int, int], st: List[int]) -> int:
    """Drop the (insertion-)oldest half of ``table``; returns the count.

    Rebuilding from the newest half amortizes eviction to O(1) per
    insert.  Deleting single front keys instead leaves tombstones at
    the head of the dict's entry array, degrading every subsequent
    ``next(iter(table))`` probe to a linear scan.
    """
    survivors = list(table.items())[len(table) // 2:]
    dropped = len(table) - len(survivors)
    table.clear()
    table.update(survivors)
    st[EVICTIONS] += dropped
    return dropped


def sweep(
    tables: List[Dict[int, int]], stats: List[List[int]], marked: bytearray
) -> int:
    """Drop entries that reference any non-live node; keep the rest.

    ``marked`` is the GC mark bytearray (index = node handle).  Live
    nodes keep their handles across a collection, so an entry whose
    operands *and* result are all marked stays valid; an entry touching
    a dead node must go before the freed slot is reused.  Returns the
    total number of entries dropped.
    """
    n = len(marked)
    mask = NODE_MASK
    dropped_total = 0
    # Specialized dict comprehensions per key arity: the sweep visits
    # every entry of every table, so per-entry interpreter overhead is
    # the whole cost.
    for op in range(N_OPS):
        table = tables[op]
        if not table:
            continue
        fields = _NODE_FIELDS[op]
        if fields == (0,):
            keep = {
                k: v
                for k, v in table.items()
                if v < n and marked[v]
                and (a := k & mask) < n and marked[a]
            }
        elif fields == (0, 32):
            keep = {
                k: v
                for k, v in table.items()
                if v < n and marked[v]
                and (a := k & mask) < n and marked[a]
                and (b := (k >> 32) & mask) < n and marked[b]
            }
        else:
            keep = {
                k: v
                for k, v in table.items()
                if v < n and marked[v]
                and (a := k & mask) < n and marked[a]
                and (b := (k >> 32) & mask) < n and marked[b]
                and (c := (k >> 64) & mask) < n and marked[c]
            }
        dropped = len(table) - len(keep)
        if dropped:
            stats[op][SWEPT] += dropped
            dropped_total += dropped
            tables[op] = keep
    return dropped_total


def clear(tables: List[Dict[int, int]]) -> None:
    """Empty every computed table (counters are preserved)."""
    for table in tables:
        table.clear()


def stats_dict(tables: List[Dict[int, int]], stats: List[List[int]]) -> Dict[str, Dict[str, object]]:
    """JSON-safe per-op and total statistics for ``BDD.cache_stats()``."""
    out: Dict[str, Dict[str, object]] = {}
    totals = [0, 0, 0, 0, 0]
    total_entries = 0
    for op in range(N_OPS):
        h, miss, ins, ev, sw = stats[op]
        probes = h + miss
        entries = len(tables[op])
        out[OP_NAMES[op]] = {
            "hits": h,
            "misses": miss,
            "inserts": ins,
            "evictions": ev,
            "swept": sw,
            "entries": entries,
            "hit_rate": (h / probes) if probes else 0.0,
        }
        for slot in range(5):
            totals[slot] += stats[op][slot]
        total_entries += entries
    probes = totals[HITS] + totals[MISSES]
    out["total"] = {
        "hits": totals[HITS],
        "misses": totals[MISSES],
        "inserts": totals[INSERTS],
        "evictions": totals[EVICTIONS],
        "swept": totals[SWEPT],
        "entries": total_entries,
        "hit_rate": (totals[HITS] / probes) if probes else 0.0,
    }
    return out

"""Cofactoring operators: Shannon cofactors, ``constrain`` and ``restrict``.

* :func:`cofactor` / :func:`cofactor_cube` — plain Shannon cofactors
  (fix variables to constants).  These implement the paper's Section 2.5
  component-wise cofactoring of Boolean functional vectors.
* :func:`constrain` — the generalized cofactor of Coudert, Berthet and
  Madre: ``constrain(f, c)`` agrees with ``f`` on ``c`` and maps each
  off-``c`` point to ``f``'s value at the *nearest* point of ``c`` under
  the variable-order distance metric — the same metric that canonicalizes
  Boolean functional vectors.  It is the primitive behind McMillan's
  conjunctive-decomposition operations (paper Sec 2.7).
* :func:`restrict` — the Coudert-Madre size-minimizing variant.
"""

from __future__ import annotations

from typing import Dict

from ..errors import BDDError
from . import operations as _operations


def cofactor(m, f: int, var: int, value: bool) -> int:
    """Shannon cofactor ``f|var=value``."""
    if f < 2:
        return f
    cache = m._cache
    key = ("c1", f, var, value)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    if lvl[v] > lvl[var]:
        result = f
    elif v == var:
        result = hi_[f] if value else lo_[f]
    else:
        result = m._mk(
            v,
            cofactor(m, lo_[f], var, value),
            cofactor(m, hi_[f], var, value),
        )
    cache[key] = result
    return result


def cofactor_cube(m, f: int, assignment: Dict[int, bool]) -> int:
    """Cofactor ``f`` by a conjunction of literals ``{var: value}``."""
    if f < 2 or not assignment:
        return f
    items = tuple(
        sorted(assignment.items(), key=lambda item: m._var2level[item[0]])
    )
    return _cofactor_cube(m, f, items)


def _cofactor_cube(m, f: int, items) -> int:
    if f < 2 or not items:
        return f
    cache = m._cache
    key = ("cc", f, items)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    lf = lvl[v]
    while items and lvl[items[0][0]] < lf:
        items = items[1:]
    if not items:
        result = f
    elif v == items[0][0]:
        child = hi_[f] if items[0][1] else lo_[f]
        result = _cofactor_cube(m, child, items[1:])
    else:
        result = m._mk(
            v,
            _cofactor_cube(m, lo_[f], items),
            _cofactor_cube(m, hi_[f], items),
        )
    cache[key] = result
    return result


def constrain(m, f: int, c: int) -> int:
    """Generalized cofactor ``f ↓ c`` (Coudert-Berthet-Madre).

    Requires ``c != FALSE``.  Satisfies ``constrain(f, c) AND c == f AND c``
    and, for characteristic functions, ``image(constrain(F, c)) ==
    image of F restricted to c`` — the property used for range computation
    in the paper's Figure 1 flow.
    """
    if c == 0:
        raise BDDError("constrain by the empty care set is undefined")
    return _constrain(m, f, c)


def _constrain(m, f: int, c: int) -> int:
    if c == 1 or f < 2:
        return f
    if f == c:
        return 1
    cache = m._cache
    key = ("gc", f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lc = lvl[var_[c]]
    level = lf if lf <= lc else lc
    v = m._level2var[level]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if var_[c] == v:
        c0, c1 = lo_[c], hi_[c]
    else:
        c0 = c1 = c
    if c0 == 0:
        result = _constrain(m, f1, c1)
    elif c1 == 0:
        result = _constrain(m, f0, c0)
    else:
        result = m._mk(v, _constrain(m, f0, c0), _constrain(m, f1, c1))
    cache[key] = result
    return result


def restrict(m, f: int, c: int) -> int:
    """Coudert-Madre ``restrict``: a don't-care minimization of ``f``.

    Agrees with ``f`` wherever ``c`` holds and is chosen to (heuristically)
    shrink the BDD.  Unlike :func:`constrain` it existentially quantifies
    care-set variables that ``f`` does not depend on, avoiding spurious
    support growth.
    """
    if c == 0:
        raise BDDError("restrict by the empty care set is undefined")
    return _restrict(m, f, c)


def _restrict(m, f: int, c: int) -> int:
    if c == 1 or f < 2:
        return f
    if f == c:
        return 1
    cache = m._cache
    key = ("rs", f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lc = lvl[var_[c]]
    if lc < lf:
        # c's top variable does not occur in f: drop it from the care set.
        v = var_[c]
        result = _restrict(m, f, _operations.or_(m, lo_[c], hi_[c]))
    else:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
        if var_[c] == v:
            c0, c1 = lo_[c], hi_[c]
        else:
            c0 = c1 = c
        if c0 == 0:
            result = _restrict(m, f1, c1)
        elif c1 == 0:
            result = _restrict(m, f0, c0)
        else:
            result = m._mk(v, _restrict(m, f0, c0), _restrict(m, f1, c1))
    cache[key] = result
    return result

"""Cofactoring operators: Shannon cofactors, ``constrain`` and ``restrict``.

* :func:`cofactor` / :func:`cofactor_cube` — plain Shannon cofactors
  (fix variables to constants).  These implement the paper's Section 2.5
  component-wise cofactoring of Boolean functional vectors.
* :func:`constrain` — the generalized cofactor of Coudert, Berthet and
  Madre: ``constrain(f, c)`` agrees with ``f`` on ``c`` and maps each
  off-``c`` point to ``f``'s value at the *nearest* point of ``c`` under
  the variable-order distance metric — the same metric that canonicalizes
  Boolean functional vectors.  It is the primitive behind McMillan's
  conjunctive-decomposition operations (paper Sec 2.7).
* :func:`restrict` — the Coudert-Madre size-minimizing variant.

All kernels are iterative (explicit task stacks, see
:mod:`repro.bdd.operations` for the encoding conventions) and memoize in
the packed-key per-op computed tables of :mod:`repro.bdd.cache`.
``cofactor_cube`` interns the level-sorted literal list (``m._item_ids``)
and threads an index through it, mirroring the quantification kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import BDDError
from . import operations as _operations
from .cache import (
    OP_COFACTOR,
    OP_COFACTOR_CUBE,
    OP_CONSTRAIN,
    OP_RESTRICT,
    evict_half,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import BDD


def cofactor(m: "BDD", f: int, var: int, value: bool) -> int:
    """Shannon cofactor ``f|var=value``."""
    m.op_count += 1
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    # O(1) structural outcomes: ``var`` above the root level cannot
    # appear in ``f``; ``var`` at the root is a child lookup.
    v = var_[f]
    lvl_var = lvl[var]
    if lvl[v] > lvl_var:
        return f
    if v == var:
        return hi_[f] if value else lo_[f]
    table = m._ctables[OP_COFACTOR]
    st = m._cstats[OP_COFACTOR]
    kbase = (var << 33) | ((1 if value else 0) << 32)
    get = table.get
    r = get(kbase | f)
    if r is not None:
        st[0] += 1
        return r
    mk = m._mk
    limit = m.cache_limit
    # Tasks: non-negative int = expand; negative int = literal (terminal
    # or level-bypassed node, folded at push time); (v, key) mk-combine.
    tasks = [f]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            if t < 0:
                vals.append(-1 - t)
                continue
            v = var_[t]
            key = kbase | t
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            if v == var:
                res = hi_[t] if value else lo_[t]
                if len(table) >= limit:
                    evict_half(table, st)
                table[key] = res
                st[2] += 1
                vals.append(res)
                continue
            push((v, key))
            hi = hi_[t]
            push(-1 - hi if hi < 2 or lvl[var_[hi]] > lvl_var else hi)
            lo = lo_[t]
            push(-1 - lo if lo < 2 or lvl[var_[lo]] > lvl_var else lo)
        else:
            v, key = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]


def cofactor2(m: "BDD", f: int, var: int) -> Tuple[int, int]:
    """Both Shannon cofactors ``(f|var=0, f|var=1)`` in one traversal.

    The two cofactors share every node of ``f`` above ``var``'s level;
    computing them together walks that region once instead of twice.
    Results are inserted into the ordinary ``OP_COFACTOR`` table under
    the same keys the single-sided kernel uses, so the two entry points
    feed each other's cache and the GC sweep needs no special casing.
    """
    m.op_count += 1
    if f < 2:
        return f, f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    lvl_var = lvl[var]
    if lvl[v] > lvl_var:
        return f, f
    if v == var:
        return lo_[f], hi_[f]
    table = m._ctables[OP_COFACTOR]
    st = m._cstats[OP_COFACTOR]
    kbase0 = var << 33
    kbase1 = kbase0 | (1 << 32)
    get = table.get
    r0 = get(kbase0 | f)
    if r0 is not None:
        r1 = get(kbase1 | f)
        if r1 is not None:
            st[0] += 2
            return r0, r1
    mk = m._mk
    limit = m.cache_limit

    def resolve(c: int) -> Optional[Tuple[int, int]]:
        """Result pair for child ``c``, or None when it needs a task."""
        if c < 2 or lvl[var_[c]] > lvl_var:
            return c, c
        if var_[c] == var:
            return lo_[c], hi_[c]
        r0 = get(kbase0 | c)
        if r0 is not None:
            r1 = get(kbase1 | c)
            if r1 is not None:
                st[0] += 2
                return r0, r1
        return None

    # Tasks: int = expand node; (v, key0, key1, inline, flag) =
    # mk-combine, where ``inline`` is the already-resolved child pair
    # (flag 0: it is the lo pair, flag 1: the hi pair, flag 2: none —
    # both pairs come off ``vals``).  ``vals`` holds ``(at-var=0,
    # at-var=1)`` result pairs.
    tasks = [f]
    vals = []
    push = tasks.append
    pop = tasks.pop
    vpush = vals.append
    while tasks:
        t = pop()
        if type(t) is int:
            st[1] += 2
            v = var_[t]
            key0 = kbase0 | t
            key1 = kbase1 | t
            hi = hi_[t]
            lo = lo_[t]
            ph = resolve(hi)
            pl = resolve(lo)
            if pl is not None and ph is not None:
                res0 = mk(v, pl[0], ph[0])
                res1 = mk(v, pl[1], ph[1])
                if len(table) >= limit:
                    evict_half(table, st)
                table[key0] = res0
                table[key1] = res1
                st[2] += 2
                vpush((res0, res1))
            elif pl is not None:
                push((v, key0, key1, pl, 0))
                push(hi)
            elif ph is not None:
                push((v, key0, key1, ph, 1))
                push(lo)
            else:
                push((v, key0, key1, None, 2))
                push(hi)
                push(lo)
        else:
            v, key0, key1, inline, flag = t
            if flag == 0:
                pl = inline
                ph = vals.pop()
            elif flag == 1:
                ph = inline
                pl = vals.pop()
            else:
                ph = vals.pop()
                pl = vals.pop()
            res0 = mk(v, pl[0], ph[0])
            res1 = mk(v, pl[1], ph[1])
            if len(table) >= limit:
                evict_half(table, st)
            table[key0] = res0
            table[key1] = res1
            st[2] += 2
            vpush((res0, res1))
    return vals[-1]


def _intern_items(m: "BDD", items: Tuple[Tuple[int, bool], ...]) -> int:
    """Small integer id for a level-sorted literal tuple (per manager)."""
    ids = m._item_ids
    iid = ids.get(items)
    if iid is None:
        iid = len(ids)
        ids[items] = iid
    return iid


def cofactor_cube(m: "BDD", f: int, assignment: Dict[int, bool]) -> int:
    """Cofactor ``f`` by a conjunction of literals ``{var: value}``."""
    m.op_count += 1
    if f < 2 or not assignment:
        return f
    lvl = m._var2level
    items = tuple(sorted(assignment.items(), key=lambda item: lvl[item[0]]))
    table = m._ctables[OP_COFACTOR_CUBE]
    st = m._cstats[OP_COFACTOR_CUBE]
    kbase = _intern_items(m, items) << 64
    nitems = len(items)
    var_, lo_, hi_ = m._var, m._lo, m._hi
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # Tasks: negative int = literal; (f, s) expand; (v, key, 0) mk-combine;
    # (key,) forward (cache the tail-call result under key).
    tasks = [(f, 0)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            vals.append(-1 - t)
            continue
        n = len(t)
        if n == 2:
            ff, s = t
            v = var_[ff]
            lf = lvl[v]
            while s < nitems and lvl[items[s][0]] < lf:
                s += 1
            if s == nitems:
                vals.append(ff)
                continue
            key = kbase | (s << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            if v == items[s][0]:
                child = hi_[ff] if items[s][1] else lo_[ff]
                if child < 2:
                    if len(table) >= limit:
                        evict_half(table, st)
                    table[key] = child
                    st[2] += 1
                    vals.append(child)
                else:
                    push((key,))
                    push((child, s + 1))
            else:
                push((v, key, 0))
                hi = hi_[ff]
                push(-1 - hi if hi < 2 else (hi, s))
                lo = lo_[ff]
                push(-1 - lo if lo < 2 else (lo, s))
        elif n == 3:
            v, key, _ = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        else:
            key = t[0]
            res = vals[-1]
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
    return vals[-1]


def constrain(m: "BDD", f: int, c: int) -> int:
    """Generalized cofactor ``f ↓ c`` (Coudert-Berthet-Madre).

    Requires ``c != FALSE``.  Satisfies ``constrain(f, c) AND c == f AND c``
    and, for characteristic functions, ``image(constrain(F, c)) ==
    image of F restricted to c`` — the property used for range computation
    in the paper's Figure 1 flow.
    """
    if c == 0:
        raise BDDError("constrain by the empty care set is undefined")
    m.op_count += 1
    table = m._ctables[OP_CONSTRAIN]
    st = m._cstats[OP_CONSTRAIN]
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    level2var = m._level2var
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # Tasks: (f, c) expand; (v, key, 0) mk-combine; (key,) forward.
    tasks = [(f, c)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        n = len(t)
        if n == 2:
            ff, cc = t
            if cc == 1 or ff < 2:
                vals.append(ff)
                continue
            if ff == cc:
                vals.append(1)
                continue
            key = (cc << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            lf = lvl[var_[ff]]
            lc = lvl[var_[cc]]
            level = lf if lf <= lc else lc
            v = level2var[level]
            if var_[ff] == v:
                f0, f1 = lo_[ff], hi_[ff]
            else:
                f0 = f1 = ff
            if var_[cc] == v:
                c0, c1 = lo_[cc], hi_[cc]
            else:
                c0 = c1 = cc
            if c0 == 0:
                push((key,))
                push((f1, c1))
            elif c1 == 0:
                push((key,))
                push((f0, c0))
            else:
                push((v, key, 0))
                push((f1, c1))
                push((f0, c0))
        elif n == 3:
            v, key, _ = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        else:
            key = t[0]
            res = vals[-1]
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
    return vals[-1]


def restrict(m: "BDD", f: int, c: int) -> int:
    """Coudert-Madre ``restrict``: a don't-care minimization of ``f``.

    Agrees with ``f`` wherever ``c`` holds and is chosen to (heuristically)
    shrink the BDD.  Unlike :func:`constrain` it existentially quantifies
    care-set variables that ``f`` does not depend on, avoiding spurious
    support growth.
    """
    if c == 0:
        raise BDDError("restrict by the empty care set is undefined")
    m.op_count += 1
    table = m._ctables[OP_RESTRICT]
    st = m._cstats[OP_RESTRICT]
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    tasks = [(f, c)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        n = len(t)
        if n == 2:
            ff, cc = t
            if cc == 1 or ff < 2:
                vals.append(ff)
                continue
            if ff == cc:
                vals.append(1)
                continue
            key = (cc << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            lf = lvl[var_[ff]]
            lc = lvl[var_[cc]]
            if lc < lf:
                # c's top variable does not occur in f: drop it from the
                # care set (existential quantification, done inline).
                push((key,))
                push((ff, _operations.or_(m, lo_[cc], hi_[cc])))
                continue
            v = var_[ff]
            f0, f1 = lo_[ff], hi_[ff]
            if var_[cc] == v:
                c0, c1 = lo_[cc], hi_[cc]
            else:
                c0 = c1 = cc
            if c0 == 0:
                push((key,))
                push((f1, c1))
            elif c1 == 0:
                push((key,))
                push((f0, c0))
            else:
                push((v, key, 0))
                push((f1, c1))
                push((f0, c0))
        elif n == 3:
            v, key, _ = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        else:
            key = t[0]
            res = vals[-1]
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
    return vals[-1]

"""Graphviz DOT export for debugging and documentation figures."""

from __future__ import annotations

from typing import Iterable, List


def to_dot(m, f: int, name: str = "bdd") -> str:
    """Render the BDD rooted at ``f`` as a Graphviz digraph.

    Solid edges are ``hi`` (variable true), dashed edges are ``lo``.
    Nodes at the same level share a rank so the drawing reflects the
    variable order.
    """
    return to_dot_shared(m, [f], name=name)


def to_dot_shared(m, roots: Iterable[int], name: str = "bdd") -> str:
    """Render several roots into one shared-DAG drawing.

    Useful for visualizing Boolean functional vectors, whose components
    share structure (paper Table 3 measures exactly this shared size).
    """
    lines: List[str] = ["digraph %s {" % name, "  ordering=out;"]
    seen = set()
    by_level = {}
    stack = list(roots)
    edges: List[str] = []
    terminals = set()
    while stack:
        n = stack.pop()
        if n < 2:
            terminals.add(n)
            continue
        if n in seen:
            continue
        seen.add(n)
        var = m._var[n]
        by_level.setdefault(m._var2level[var], []).append(n)
        lo, hi = m._lo[n], m._hi[n]
        edges.append('  n%d -> n%d [style=dashed];' % (n, lo))
        edges.append('  n%d -> n%d;' % (n, hi))
        stack.append(lo)
        stack.append(hi)
    for level in sorted(by_level):
        nodes = by_level[level]
        labels = "; ".join(
            'n%d [label="%s"]' % (n, m._names[m._var[n]]) for n in nodes
        )
        lines.append("  { rank=same; %s; }" % labels)
    for t in sorted(terminals):
        lines.append('  n%d [shape=box, label="%d"];' % (t, t))
    for i, root in enumerate(roots):
        lines.append('  r%d [shape=plaintext, label="f%d"];' % (i, i))
        lines.append("  r%d -> n%d [style=dotted];" % (i, root))
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)

"""A small Boolean expression language over BDD variables.

Ergonomics for tests, examples and interactive use: build BDDs from
strings instead of nested method calls.

Grammar (standard precedence, loosest first)::

    expr     := iff
    iff      := implies ( ('<->' | '==') implies )*
    implies  := or_ ( '->' or_ )*          (right associative)
    or_      := xor ( '|' xor )*
    xor      := and_ ( '^' and_ )*
    and_     := unary ( '&' unary )*
    unary    := '!' unary | '~' unary | atom
    atom     := '0' | '1' | 'true' | 'false' | NAME | '(' expr ')'

Names match ``[A-Za-z_][A-Za-z0-9_.\\[\\]]*`` so netlist-style names
(``s0``, ``u1_ct3``, ``reg[4]``) work directly.  Unknown names raise
:class:`repro.errors.VariableError` unless ``auto_declare`` is set.

>>> from repro.bdd import BDD
>>> bdd = BDD(["a", "b", "c"])
>>> f = parse(bdd, "a & !(b | c) -> a ^ b")
>>> bdd.evaluate(f, {"a": False, "b": True, "c": False})
True
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import BDDError

_TOKEN_RE = re.compile(
    r"\s*(<->|->|==|[()&|^!~]|true|false|[01]|[A-Za-z_][A-Za-z0-9_.\[\]]*)"
)


class _Parser:
    def __init__(self, bdd, text: str, auto_declare: bool) -> None:
        self.bdd = bdd
        self.text = text
        self.auto_declare = auto_declare
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens = []
        index = 0
        while index < len(text):
            match = _TOKEN_RE.match(text, index)
            if match is None:
                if text[index:].strip():
                    raise BDDError(
                        "cannot tokenize %r at position %d" % (text, index)
                    )
                break
            tokens.append(match.group(1))
            index = match.end()
        return tokens

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise BDDError("unexpected end of expression %r" % self.text)
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise BDDError(
                "expected %r but found %r in %r" % (token, got, self.text)
            )

    # precedence-climbing levels -----------------------------------

    def parse(self) -> int:
        node = self.iff()
        if self.peek() is not None:
            raise BDDError(
                "trailing input %r in %r" % (self.peek(), self.text)
            )
        return node

    def iff(self) -> int:
        node = self.implies()
        while self.peek() in ("<->", "=="):
            self.take()
            node = self.bdd.equiv(node, self.implies())
        return node

    def implies(self) -> int:
        node = self.or_()
        if self.peek() == "->":
            self.take()
            # right associative: a -> b -> c == a -> (b -> c)
            node = self.bdd.implies(node, self.implies())
        return node

    def or_(self) -> int:
        node = self.xor()
        while self.peek() == "|":
            self.take()
            node = self.bdd.or_(node, self.xor())
        return node

    def xor(self) -> int:
        node = self.and_()
        while self.peek() == "^":
            self.take()
            node = self.bdd.xor(node, self.and_())
        return node

    def and_(self) -> int:
        node = self.unary()
        while self.peek() == "&":
            self.take()
            node = self.bdd.and_(node, self.unary())
        return node

    def unary(self) -> int:
        if self.peek() in ("!", "~"):
            self.take()
            return self.bdd.not_(self.unary())
        return self.atom()

    def atom(self) -> int:
        token = self.take()
        if token == "(":
            node = self.iff()
            self.expect(")")
            return node
        if token in ("1", "true"):
            return self.bdd.true
        if token in ("0", "false"):
            return self.bdd.false
        if token in ("&", "|", "^", ")", "->", "<->", "=="):
            raise BDDError(
                "unexpected operator %r in %r" % (token, self.text)
            )
        try:
            return self.bdd.var(token)
        except Exception:
            if self.auto_declare:
                return self.bdd.var(self.bdd.add_var(token))
            raise


def parse(bdd, text: str, auto_declare: bool = False) -> int:
    """Parse ``text`` into a BDD node over ``bdd``'s variables.

    With ``auto_declare``, unknown names are declared (at the bottom of
    the current order) instead of raising.  Pathologically nested input
    (the parser recursion tracks *expression* depth, not BDD depth)
    fails cleanly as ``ResourceLimitError("depth")``.
    """
    try:
        return _Parser(bdd, text, auto_declare).parse()
    except RecursionError:
        from ..errors import ResourceLimitError

        raise ResourceLimitError(
            "depth", "expression nesting exceeds the recursion limit"
        ) from None


def to_expr(bdd, node: int, limit: int = 10_000) -> str:
    """Render a BDD as a (sum-of-cubes) expression string.

    Intended for debugging and documentation; raises
    :class:`BDDError` when the cover would exceed ``limit`` cubes.
    The output round-trips through :func:`parse`.
    """
    if node == bdd.false:
        return "false"
    if node == bdd.true:
        return "true"
    cubes: List[str] = []
    # Enumerate prime-ish cubes via the satisfying paths of the BDD.
    stack: List[Tuple[int, List[str]]] = [(node, [])]
    while stack:
        current, literals = stack.pop()
        if current == bdd.false:
            continue
        if current == bdd.true:
            cubes.append(" & ".join(literals) if literals else "true")
            if len(cubes) > limit:
                raise BDDError("expression would exceed %d cubes" % limit)
            continue
        var = bdd.node_var(current)
        name = bdd.var_name(var)
        lo, hi = bdd.node_children(current)
        stack.append((lo, literals + ["!" + name]))
        stack.append((hi, literals + [name]))
    return " | ".join("(%s)" % cube for cube in cubes)

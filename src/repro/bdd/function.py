"""Ergonomic, reference-managed wrapper around raw BDD node handles.

The algorithm layers of this package work on raw integer handles for speed
and manage garbage-collection roots explicitly.  :class:`Function` is the
public-facing convenience layer: it pins its node with an external
reference for its lifetime and overloads the Boolean operators.

>>> from repro.bdd import BDD, Function
>>> bdd = BDD(["a", "b"])
>>> a, b = Function.var(bdd, "a"), Function.var(bdd, "b")
>>> f = a & ~b
>>> f.evaluate(a=True, b=False)
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Function:
    """A Boolean function: a BDD manager plus a pinned node handle."""

    __slots__ = ("bdd", "node")

    def __init__(self, bdd, node: int) -> None:
        self.bdd = bdd
        self.node = node
        bdd.incref(node)

    def __del__(self) -> None:
        try:
            self.bdd.decref(self.node)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # -- constructors ---------------------------------------------------

    @classmethod
    def var(cls, bdd, name) -> "Function":
        """The positive literal of variable ``name``."""
        return cls(bdd, bdd.var(name))

    @classmethod
    def true(cls, bdd) -> "Function":
        """The constant TRUE function."""
        return cls(bdd, bdd.true)

    @classmethod
    def false(cls, bdd) -> "Function":
        """The constant FALSE function."""
        return cls(bdd, bdd.false)

    def _wrap(self, node: int) -> "Function":
        return Function(self.bdd, node)

    def _node_of(self, other) -> int:
        if isinstance(other, Function):
            if other.bdd is not self.bdd:
                raise ValueError("mixing functions from different managers")
            return other.node
        if other is True:
            return self.bdd.true
        if other is False:
            return self.bdd.false
        raise TypeError("expected Function or bool, got %r" % (other,))

    # -- operators --------------------------------------------------------

    def __invert__(self) -> "Function":
        return self._wrap(self.bdd.not_(self.node))

    def __and__(self, other) -> "Function":
        return self._wrap(self.bdd.and_(self.node, self._node_of(other)))

    __rand__ = __and__

    def __or__(self, other) -> "Function":
        return self._wrap(self.bdd.or_(self.node, self._node_of(other)))

    __ror__ = __or__

    def __xor__(self, other) -> "Function":
        return self._wrap(self.bdd.xor(self.node, self._node_of(other)))

    __rxor__ = __xor__

    def implies(self, other) -> "Function":
        """Implication ``self -> other``."""
        return self._wrap(self.bdd.implies(self.node, self._node_of(other)))

    def equiv(self, other) -> "Function":
        """Equivalence ``self <-> other``."""
        return self._wrap(self.bdd.equiv(self.node, self._node_of(other)))

    def ite(self, then, otherwise) -> "Function":
        """If-then-else with ``self`` as the condition."""
        return self._wrap(
            self.bdd.ite(
                self.node, self._node_of(then), self._node_of(otherwise)
            )
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, Function):
            return self.bdd is other.bdd and self.node == other.node
        if isinstance(other, bool):
            return self.node == (self.bdd.true if other else self.bdd.false)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_true()/.is_false()"
        )

    # -- queries ----------------------------------------------------------

    def is_true(self) -> bool:
        """True iff this is the constant TRUE function."""
        return self.node == self.bdd.true

    def is_false(self) -> bool:
        """True iff this is the constant FALSE function."""
        return self.node == self.bdd.false

    def evaluate(self, **assignment: bool) -> bool:
        """Evaluate under a keyword assignment of variable names."""
        return self.bdd.evaluate(self.node, assignment)

    def support(self) -> List[str]:
        """Names of the variables this function depends on."""
        return self.bdd.support_names(self.node)

    def dag_size(self) -> int:
        """Node count of this function's BDD."""
        return self.bdd.dag_size(self.node)

    def sat_count(self, over: Optional[Iterable] = None) -> int:
        """Number of satisfying assignments (see ``BDD.sat_count``)."""
        return self.bdd.sat_count(self.node, over)

    def pick_model(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment, or ``None``."""
        return self.bdd.pick_model(self.node)

    def iter_models(self) -> Iterator[Dict[str, bool]]:
        """All satisfying assignments over the support."""
        return self.bdd.iter_models(self.node)

    # -- transformations ---------------------------------------------------

    def exists(self, *variables) -> "Function":
        """Existentially quantify the named variables."""
        return self._wrap(self.bdd.exists(variables, self.node))

    def forall(self, *variables) -> "Function":
        """Universally quantify the named variables."""
        return self._wrap(self.bdd.forall(variables, self.node))

    def cofactor(self, **assignment: bool) -> "Function":
        """Shannon cofactor by the keyword literal assignment."""
        return self._wrap(self.bdd.cofactor_cube(self.node, assignment))

    def compose(self, var, other) -> "Function":
        """Substitute ``other`` for variable ``var``."""
        return self._wrap(
            self.bdd.compose(self.node, var, self._node_of(other))
        )

    def rename(self, var_map: Dict) -> "Function":
        """Rename variables according to ``var_map``."""
        return self._wrap(self.bdd.rename(self.node, var_map))

    def constrain(self, care) -> "Function":
        """Generalized cofactor w.r.t. the care set."""
        return self._wrap(self.bdd.constrain(self.node, self._node_of(care)))

    def restrict(self, care) -> "Function":
        """Coudert-Madre restrict w.r.t. the care set."""
        return self._wrap(self.bdd.restrict(self.node, self._node_of(care)))

    def to_dot(self, name: str = "bdd") -> str:
        """Graphviz DOT rendering."""
        return self.bdd.to_dot(self.node, name)

    def __repr__(self) -> str:
        if self.node == 0:
            return "Function(FALSE)"
        if self.node == 1:
            return "Function(TRUE)"
        return "Function(node=%d, vars=%s)" % (self.node, self.support())

"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This module provides the node store and bookkeeping for the BDD substrate
used throughout the reproduction: a unique table per variable (guaranteeing
canonicity), per-operation computed tables with packed integer keys (see
:mod:`repro.bdd.cache`), external reference counting with mark-and-sweep
garbage collection that *preserves* cache entries among live nodes, and the
live / allocated node accounting that backs the "peak live BDD nodes"
statistics reported in the paper's Table 2.

Nodes are plain integers indexing parallel arrays; ``0`` is the constant
FALSE and ``1`` the constant TRUE.  The manager stores, for every node, its
*variable index* (not its level); a separate ``var -> level`` permutation
supports dynamic reordering (see :mod:`repro.bdd.ordering`), which rewrites
nodes **in place** so that user-held node handles survive reorders.

The actual algorithms (apply, quantification, composition, cofactoring,
traversal, reordering) live in sibling modules and are re-exported here as
methods for ergonomic use:

>>> bdd = BDD(["a", "b"])
>>> a, b = bdd.var("a"), bdd.var("b")
>>> f = bdd.and_(a, bdd.not_(b))
>>> bdd.evaluate(f, {"a": True, "b": False})
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import BDDError, VariableError
from . import cache as _cache
from . import cofactor as _cofactor
from . import operations as _operations
from . import ordering as _ordering
from . import quantify as _quantify
from . import substitute as _substitute
from . import traversal as _traversal

#: Level assigned (via the ``var2level`` sentinel trick) to terminal nodes so
#: that they always compare below every proper variable.
TERMINAL_LEVEL = 1 << 60

#: Variable index stored for the two terminal nodes.  ``-1`` indexes the
#: sentinel entry kept at the *end* of the ``var -> level`` array, so
#: ``self._var2level[self._var[node]]`` is valid for terminals too.
TERMINAL_VAR = -1

#: Variable index marking a node slot that is currently on the free list.
FREED_VAR = -2

VarLike = Union[int, str]


class BDD:
    """A reduced ordered BDD manager.

    Parameters
    ----------
    var_names:
        Optional iterable of variable names declared up front, in order
        (first name gets the topmost level).  More variables can be added
        later with :meth:`add_var`.
    """

    #: Node handle of the constant FALSE function.
    false = 0
    #: Node handle of the constant TRUE function.
    true = 1

    def __init__(self, var_names: Iterable[str] = ()) -> None:
        # Parallel per-node arrays.  Slots 0/1 are the terminals.
        self._var: List[int] = [TERMINAL_VAR, TERMINAL_VAR]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        # Unique table: one dict per variable mapping the packed child
        # pair ``lo << 32 | hi`` -> node.  Packed int keys hash faster
        # than tuples and allocate nothing on the ``_mk`` hot path
        # (node handles fit 32 bits; see repro.bdd.cache).
        self._unique: List[Dict[int, int]] = []
        # Variable naming and ordering.
        self._names: List[str] = []
        self._name2var: Dict[str, int] = {}
        self._level2var: List[int] = []
        # Note the trailing sentinel: ``self._var2level[-1]`` must always be
        # TERMINAL_LEVEL so terminal nodes (var == -1) sort below all vars.
        self._var2level: List[int] = [TERMINAL_LEVEL]
        # Free slots available for reuse after garbage collection.
        self._free: List[int] = []
        # Allocated-node count (``len(_var) - len(_free)``), maintained
        # incrementally so the ``_mk`` hot path avoids two len() calls.
        self._node_count = 2
        # External references (node -> count); the GC roots.
        self._extref: Dict[int, int] = {}
        # Per-operation computed tables with packed integer keys, plus
        # their [hits, misses, inserts, evictions, swept] counters; see
        # repro.bdd.cache.  Bounded at ``cache_limit`` entries per op
        # (FIFO eviction); swept (not cleared) at GC time.
        self._ctables = _cache.new_tables()
        self._cstats = _cache.new_stats()
        self.cache_limit = _cache.DEFAULT_LIMIT
        # Intern tables for quantification cubes and cofactor literal
        # lists (level-sorted tuple -> small id used in packed cache
        # keys).  They reference variables, not nodes, so they survive
        # GC; they are cleared with the caches on reorder.
        self._cube_ids: Dict[Tuple[int, ...], int] = {}
        self._item_ids: Dict[Tuple[Tuple[int, bool], ...], int] = {}
        # Statistics.  ``op_count`` counts *kernel invocations*: every
        # entry into an apply-style kernel (not_/and_/or_/xor/ite,
        # exists/forall/and_exists, cofactor*/constrain/restrict,
        # compose/vector_compose/rename) increments it once, including
        # internal cross-kernel calls — so ``equiv`` counts 2 (XOR then
        # NOT) and ``conjoin`` counts one per conjunct.
        self.peak_nodes = 2
        self.peak_live = 2
        self.op_count = 0
        self.gc_count = 0
        self.gc_threshold = 200_000
        self._nodes_at_last_gc = 2
        #: Optional hard ceiling on allocated nodes; exceeding it raises
        #: ResourceLimitError("memory") from inside node creation, so
        #: run-away operations abort promptly (the paper's M.O.).
        self.node_limit: Optional[int] = None
        #: Observers called as ``hook(bdd, freed)`` after every garbage
        #: collection (the observability layer's GC-event feed; an empty
        #: list costs one truth test per collection).
        self.gc_hooks: List = []
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the current order.

        Returns the variable index.  ``name`` defaults to ``x<index>``.
        """
        var = len(self._names)
        if name is None:
            name = "x%d" % var
        if name in self._name2var:
            raise VariableError("variable %r already declared" % name)
        self._names.append(name)
        self._name2var[name] = var
        self._unique.append({})
        level = len(self._level2var)
        self._level2var.append(var)
        # Insert before the trailing sentinel.
        self._var2level.insert(var, level)
        return var

    def add_vars(self, names: Iterable[str]) -> List[int]:
        """Declare several variables at once; returns their indices."""
        return [self.add_var(name) for name in names]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._names)

    def var_index(self, var: VarLike) -> int:
        """Resolve a variable name or index to its index."""
        if isinstance(var, str):
            try:
                return self._name2var[var]
            except KeyError:
                raise VariableError("unknown variable %r" % var) from None
        if not 0 <= var < len(self._names):
            raise VariableError("unknown variable index %d" % var)
        return var

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._names[self.var_index(var)]

    def var(self, var: VarLike) -> int:
        """Return the node for the positive literal of ``var``."""
        return self._mk(self.var_index(var), 0, 1)

    def nvar(self, var: VarLike) -> int:
        """Return the node for the negative literal of ``var``."""
        return self._mk(self.var_index(var), 1, 0)

    def level_of(self, var: VarLike) -> int:
        """Current level (position in the order) of ``var``."""
        return self._var2level[self.var_index(var)]

    def var_at_level(self, level: int) -> int:
        """Variable currently placed at ``level``."""
        return self._level2var[level]

    @property
    def order(self) -> List[int]:
        """Current variable order, top level first."""
        return list(self._level2var)

    @property
    def order_names(self) -> List[str]:
        """Current variable order as names, top level first."""
        return [self._names[v] for v in self._level2var]

    def node_var(self, node: int) -> int:
        """Variable index labelling ``node`` (terminals raise)."""
        if node < 2:
            raise BDDError("terminal nodes have no variable")
        return self._var[node]

    def node_children(self, node: int) -> Tuple[int, int]:
        """``(lo, hi)`` children of ``node`` (terminals raise)."""
        if node < 2:
            raise BDDError("terminal nodes have no children")
        return self._lo[node], self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True iff ``node`` is one of the constants."""
        return node < 2

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(var, lo, hi)`` (the unique-table hook).

        Callers must guarantee that ``var`` lies strictly above the top
        variables of ``lo`` and ``hi`` in the current order.
        """
        if lo == hi:
            return lo
        tab = self._unique[var]
        key = (lo << 32) | hi
        node = tab.get(key)
        if node is not None:
            return node
        free = self._free
        if free:
            node = free.pop()
            self._var[node] = var
            self._lo[node] = lo
            self._hi[node] = hi
        else:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
        tab[key] = node
        size = self._node_count + 1
        self._node_count = size
        if size > self.peak_nodes:
            self.peak_nodes = size
        if self.node_limit is not None and size > self.node_limit:
            from ..errors import ResourceLimitError

            raise ResourceLimitError(
                "memory", "allocated nodes %d exceed limit" % size
            )
        return node

    def _resolve_assignment(self, assignment: Dict[VarLike, bool]) -> Dict[int, bool]:
        """Resolve an assignment's keys to variable indices.

        Raises :class:`VariableError` when the same variable appears twice
        with conflicting polarity (possible via mixed name/index spelling,
        e.g. ``{"a": True, 0: False}``) — silently building the constant
        FALSE or letting the last writer win would hide a caller bug.
        """
        resolved: Dict[int, bool] = {}
        for v, val in assignment.items():
            var = self.var_index(v)
            val = bool(val)
            prev = resolved.get(var)
            if prev is None:
                resolved[var] = val
            elif prev != val:
                raise VariableError(
                    "conflicting polarity for variable %r in assignment"
                    % self._names[var]
                )
        return resolved

    def cube(self, assignment: Dict[VarLike, bool]) -> int:
        """Node for the conjunction of literals given by ``assignment``.

        Raises :class:`VariableError` if a variable is listed twice with
        conflicting polarity.
        """
        items = sorted(
            self._resolve_assignment(assignment).items(),
            key=lambda item: self._var2level[item[0]],
            reverse=True,
        )
        node = 1
        for var, val in items:
            node = self._mk(var, 0, node) if val else self._mk(var, node, 0)
        return node

    # ------------------------------------------------------------------
    # Reference counting and garbage collection
    # ------------------------------------------------------------------

    def incref(self, node: int) -> int:
        """Protect ``node`` (and its descendants) from garbage collection."""
        if node > 1:
            self._extref[node] = self._extref.get(node, 0) + 1
        return node

    def decref(self, node: int) -> None:
        """Drop one external reference previously taken with :meth:`incref`."""
        if node <= 1:
            return
        count = self._extref.get(node, 0)
        if count <= 1:
            self._extref.pop(node, None)
        else:
            self._extref[node] = count - 1

    def _mark(self, extra_roots: Sequence[int]) -> bytearray:
        """Mark every node reachable from the external refs + extras."""
        marked = bytearray(len(self._var))
        marked[0] = marked[1] = 1
        stack = [n for n in self._extref]
        stack.extend(extra_roots)
        lo, hi = self._lo, self._hi
        while stack:
            n = stack.pop()
            if n < 2 or marked[n]:
                continue
            marked[n] = 1
            stack.append(lo[n])
            stack.append(hi[n])
        return marked

    def collect_garbage(self, roots: Sequence[int] = ()) -> int:
        """Reclaim all nodes unreachable from external refs and ``roots``.

        Returns the number of nodes freed.  Computed-table entries whose
        operands and result are all still live are *kept* (live node
        handles are stable across GC), so repeated collections — e.g. one
        per reachability iteration — do not discard warm cache state;
        entries touching a dead (hence reusable) node slot are dropped.
        """
        marked = self._mark(roots)
        _cache.sweep(self._ctables, self._cstats, marked)
        var_ = self._var
        unique, free = self._unique, self._free
        # Rebuild each unique table from its live entries (one dict
        # comprehension per variable beats a hash-delete per dead node),
        # then scan the slot array once to maintain the free list.
        for v, tab in enumerate(unique):
            if tab:
                keep = {k: n for k, n in tab.items() if marked[n]}
                if len(keep) != len(tab):
                    unique[v] = keep
        freed = 0
        for n in range(2, len(var_)):
            if var_[n] == FREED_VAR or marked[n]:
                continue
            var_[n] = FREED_VAR
            free.append(n)
            freed += 1
        self.gc_count += 1
        self._node_count -= freed
        self._nodes_at_last_gc = self._node_count
        if self.gc_hooks:
            for hook in list(self.gc_hooks):
                hook(self, freed)
        return freed

    def maybe_collect(self, roots: Sequence[int] = ()) -> int:
        """Run GC if allocation grew past the threshold since the last GC."""
        if self._node_count - self._nodes_at_last_gc >= self.gc_threshold:
            return self.collect_garbage(roots)
        return 0

    @property
    def num_nodes(self) -> int:
        """Number of allocated (possibly dead-but-uncollected) nodes."""
        return self._node_count

    def count_live(self, roots: Sequence[int] = ()) -> int:
        """Count nodes reachable from external refs and ``roots``.

        Also updates :attr:`peak_live`, the statistic reported as the
        paper's "peak live BDD node count" analogue.
        """
        live = sum(self._mark(roots))
        if live > self.peak_live:
            self.peak_live = live
        return live

    def reset_peak(self) -> None:
        """Reset peak statistics (e.g. between benchmark runs)."""
        self.peak_live = self.count_live()
        self.peak_nodes = self.num_nodes

    def clear_cache(self) -> None:
        """Drop all computed tables and intern tables (automatic on reorder).

        Counters are preserved; GC does *not* call this — it sweeps dead
        entries instead (see :meth:`collect_garbage`).
        """
        _cache.clear(self._ctables)
        self._cube_ids.clear()
        self._item_ids.clear()

    def cache_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-operation computed-table statistics.

        Returns a JSON-safe dict keyed by operation name (plus a
        ``"total"`` aggregate), each with ``hits`` / ``misses`` /
        ``inserts`` / ``evictions`` / ``swept`` / ``entries`` /
        ``hit_rate`` fields.
        """
        return _cache.stats_dict(self._ctables, self._cstats)

    def counters_snapshot(self) -> Dict[str, object]:
        """JSON-safe snapshot of the monotonic operation/GC counters.

        Stored in checkpoint metadata so that a resumed run can restore
        the counters via :meth:`restore_counters` and keep reporting
        monotonic (not reset-to-zero) statistics across the resume.
        """
        return {
            "op_count": self.op_count,
            "gc_count": self.gc_count,
            "cache": [list(st) for st in self._cstats],
        }

    def restore_counters(self, snapshot: Dict[str, object]) -> None:
        """Add a prior run's :meth:`counters_snapshot` onto this manager.

        Used on checkpoint resume: the fresh manager starts at zero, so
        adding the snapshot makes ``op_count`` / ``gc_count`` and every
        ``cache_stats`` counter continue from where the interrupted run
        left off (table ``entries`` are naturally *not* restored — the
        resumed manager starts with cold tables).
        """
        self.op_count += int(snapshot.get("op_count", 0))
        self.gc_count += int(snapshot.get("gc_count", 0))
        for st, base in zip(self._cstats, snapshot.get("cache", ())):
            for slot, value in enumerate(base[: len(st)]):
                st[slot] += int(value)

    # ------------------------------------------------------------------
    # Boolean operations (delegated to the algorithm modules)
    # ------------------------------------------------------------------

    def not_(self, f: int) -> int:
        """Negation ``NOT f``."""
        return _operations.not_(self, f)

    def and_(self, f: int, g: int) -> int:
        """Conjunction ``f AND g``."""
        self.op_count += 1
        return _operations._apply2(self, _cache.OP_AND, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction ``f OR g``."""
        self.op_count += 1
        return _operations._apply2(self, _cache.OP_OR, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or ``f XOR g``."""
        self.op_count += 1
        return _operations._apply2(self, _cache.OP_XOR, f, g)

    def equiv(self, f: int, g: int) -> int:
        """Equivalence ``f XNOR g`` (two kernel invocations, plus any
        nested kernels the XOR itself invokes)."""
        return _operations.not_(self, _operations.xor(self, f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` (two kernel invocations)."""
        return _operations.or_(self, _operations.not_(self, f), g)

    def diff(self, f: int, g: int) -> int:
        """Difference ``f AND NOT g`` (two kernel invocations)."""
        return _operations.and_(self, f, _operations.not_(self, g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f AND g) OR (NOT f AND h)``."""
        return _operations.ite(self, f, g, h)

    def conjoin(self, nodes: Iterable[int]) -> int:
        """Conjunction of all ``nodes`` (one kernel invocation each)."""
        result = 1
        for node in nodes:
            result = _operations.and_(self, result, node)
            if result == 0:
                break
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """Disjunction of all ``nodes`` (one kernel invocation each)."""
        result = 0
        for node in nodes:
            result = _operations.or_(self, result, node)
            if result == 1:
                break
        return result

    # -- quantification -------------------------------------------------

    def exists(self, variables: Iterable[VarLike], f: int) -> int:
        """Existential quantification of ``variables`` from ``f``."""
        return _quantify.exists(self, f, self._resolve_vars(variables))

    def forall(self, variables: Iterable[VarLike], f: int) -> int:
        """Universal quantification of ``variables`` from ``f``."""
        return _quantify.forall(self, f, self._resolve_vars(variables))

    def and_exists(self, f: int, g: int, variables: Iterable[VarLike]) -> int:
        """Relational product ``EXISTS variables . f AND g`` (fused)."""
        return _quantify.and_exists(self, f, g, self._resolve_vars(variables))

    def _resolve_vars(self, variables: Iterable[VarLike]) -> List[int]:
        return [self.var_index(v) for v in variables]

    # -- substitution ---------------------------------------------------

    def compose(self, f: int, var: VarLike, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return _substitute.compose(self, f, self.var_index(var), g)

    def vector_compose(self, f: int, mapping: Dict[VarLike, int]) -> int:
        """Simultaneously substitute ``mapping[var]`` for each ``var``."""
        resolved = {self.var_index(v): g for v, g in mapping.items()}
        return _substitute.vector_compose(self, f, resolved)

    def rename(self, f: int, var_map: Dict[VarLike, VarLike]) -> int:
        """Rename variables of ``f`` according to ``var_map``."""
        resolved = {
            self.var_index(old): self.var_index(new)
            for old, new in var_map.items()
        }
        return _substitute.rename(self, f, resolved)

    # -- cofactoring ----------------------------------------------------

    def cofactor(self, f: int, var: VarLike, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to ``var = value``."""
        return _cofactor.cofactor(self, f, self.var_index(var), bool(value))

    def cofactors(self, f: int, var: VarLike) -> Tuple[int, int]:
        """Both Shannon cofactors ``(f|var=0, f|var=1)`` in one pass."""
        return _cofactor.cofactor2(self, f, self.var_index(var))

    def cofactor_cube(self, f: int, assignment: Dict[VarLike, bool]) -> int:
        """Cofactor of ``f`` by a conjunction of literals.

        Raises :class:`VariableError` if a variable is listed twice with
        conflicting polarity.
        """
        return _cofactor.cofactor_cube(
            self, f, self._resolve_assignment(assignment)
        )

    def constrain(self, f: int, c: int) -> int:
        """Generalized cofactor (the BDD ``constrain`` operator)."""
        return _cofactor.constrain(self, f, c)

    def restrict(self, f: int, c: int) -> int:
        """Coudert-Madre ``restrict``: minimize ``f`` w.r.t. care set ``c``."""
        return _cofactor.restrict(self, f, c)

    # -- traversal / inspection ------------------------------------------

    def support(self, f: int) -> List[int]:
        """Variables ``f`` depends on, sorted by current level."""
        return _traversal.support(self, f)

    def support_names(self, f: int) -> List[str]:
        """Like :meth:`support` but returning names."""
        return [self._names[v] for v in _traversal.support(self, f)]

    def dag_size(self, f: int) -> int:
        """Number of nodes in the BDD rooted at ``f`` (incl. terminals)."""
        return _traversal.dag_size(self, f)

    def shared_size(self, nodes: Iterable[int]) -> int:
        """Number of nodes in the shared DAG of all ``nodes``.

        This is the paper's "shared size of all the components" metric
        used in Table 3 for Boolean functional vectors.
        """
        return _traversal.shared_size(self, nodes)

    def evaluate(self, f: int, assignment: Dict[VarLike, bool]) -> bool:
        """Evaluate ``f`` under a (complete-enough) variable assignment."""
        resolved = {
            self.var_index(v): bool(val) for v, val in assignment.items()
        }
        return _traversal.evaluate(self, f, resolved)

    def sat_count(self, f: int, over: Optional[Iterable[VarLike]] = None) -> int:
        """Number of satisfying assignments over a variable set.

        ``over`` defaults to all declared variables and must cover the
        support of ``f``.
        """
        resolved = None if over is None else [self.var_index(v) for v in over]
        return _traversal.sat_count(self, f, resolved)

    def pick_model(self, f: int, care_vars: Iterable[VarLike] = ()) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of ``f`` (None if unsatisfiable)."""
        care = [self.var_index(v) for v in care_vars]
        return _traversal.pick_model(self, f, care)

    def iter_models(self, f: int, care_vars: Iterable[VarLike] = ()) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying assignments (complete over care set)."""
        care = [self.var_index(v) for v in care_vars]
        return _traversal.iter_models(self, f, care)

    # -- dynamic reordering ----------------------------------------------

    def swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place."""
        _ordering.swap_adjacent(self, level)

    def reorder_to(self, order: Sequence[VarLike]) -> None:
        """Reorder variables to match ``order`` (top level first)."""
        _ordering.reorder_to(self, [self.var_index(v) for v in order])

    def sift(self, max_growth: float = 1.2, max_vars: Optional[int] = None) -> int:
        """Run Rudell-style sifting; returns the resulting live node count."""
        return _ordering.sift(self, max_growth=max_growth, max_vars=max_vars)

    # -- misc -------------------------------------------------------------

    def to_dot(self, f: int, name: str = "bdd") -> str:
        """Graphviz DOT rendering of the BDD rooted at ``f``."""
        from . import dot as _dot

        return _dot.to_dot(self, f, name)

    def check_invariants(self) -> None:
        """Validate internal structure (tests / debugging aid)."""
        if self._node_count != len(self._var) - len(self._free):
            raise BDDError("allocated-node counter out of sync")
        var2level = self._var2level
        if var2level[-1] != TERMINAL_LEVEL:
            raise BDDError("var2level sentinel lost")
        for level, var in enumerate(self._level2var):
            if var2level[var] != level:
                raise BDDError("level permutation inconsistent")
        for var, tab in enumerate(self._unique):
            for key, n in tab.items():
                lo, hi = key >> 32, key & 0xFFFFFFFF
                if lo == hi:
                    raise BDDError("redundant node %d in unique table" % n)
                if self._var[n] != var or self._lo[n] != lo or self._hi[n] != hi:
                    raise BDDError("unique table out of sync at node %d" % n)
                for child in (lo, hi):
                    if child > 1 and (
                        var2level[self._var[child]] <= var2level[var]
                    ):
                        raise BDDError("ordering violated at node %d" % n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<BDD vars=%d nodes=%d live_refs=%d>" % (
            self.num_vars,
            self.num_nodes,
            len(self._extref),
        )

"""Core Boolean operations on BDD nodes: NOT, AND, OR, XOR and ITE.

These are the classic Bryant ``apply`` recursions with a shared computed
table (``manager._cache``).  The binary operations normalize commutative
operand order to improve cache hit rates, and the hot paths read the
manager's parallel arrays into locals.

All functions take the manager as the first argument and raw integer node
handles; they are re-exported as methods on :class:`repro.bdd.manager.BDD`.
"""

from __future__ import annotations


def not_(m, f: int) -> int:
    """Negation of ``f``."""
    if f < 2:
        return f ^ 1
    cache = m._cache
    key = ("!", f)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = m._mk(m._var[f], not_(m, m._lo[f]), not_(m, m._hi[f]))
    cache[key] = result
    # Negation is an involution; seed the reverse entry for free.
    cache[("!", result)] = f
    return result


def and_(m, f: int, g: int) -> int:
    """Conjunction of ``f`` and ``g``."""
    if f == g:
        return f
    if f > g:
        f, g = g, f
    if f == 0:
        return 0
    if f == 1:
        return g
    cache = m._cache
    key = ("&", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, and_(m, f0, g0), and_(m, f1, g1))
    cache[key] = result
    return result


def or_(m, f: int, g: int) -> int:
    """Disjunction of ``f`` and ``g``."""
    if f == g:
        return f
    if f > g:
        f, g = g, f
    if f == 1:
        return 1
    if f == 0:
        return g
    cache = m._cache
    key = ("|", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, or_(m, f0, g0), or_(m, f1, g1))
    cache[key] = result
    return result


def xor(m, f: int, g: int) -> int:
    """Exclusive-or of ``f`` and ``g``."""
    if f == g:
        return 0
    if f > g:
        f, g = g, f
    if f == 0:
        return g
    if f == 1:
        return not_(m, g)
    cache = m._cache
    key = ("^", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, xor(m, f0, g0), xor(m, f1, g1))
    cache[key] = result
    return result


def ite(m, f: int, g: int, h: int) -> int:
    """If-then-else: ``(f AND g) OR (NOT f AND h)``.

    Applies the standard terminal simplifications before recursing, and
    falls back to the two-operand operations where possible so their
    (better-shared) cache entries are reused.
    """
    if f == 1:
        return g
    if f == 0:
        return h
    if g == h:
        return g
    if g == 1 and h == 0:
        return f
    if g == 0 and h == 1:
        return not_(m, f)
    if g == 1:
        return or_(m, f, h)
    if h == 0:
        return and_(m, f, g)
    if g == 0:
        return and_(m, not_(m, f), h)
    if h == 1:
        return or_(m, not_(m, f), g)
    if f == g:
        return or_(m, f, h)
    if f == h:
        return and_(m, f, g)
    cache = m._cache
    key = ("?", f, g, h)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    level = min(lvl[var_[f]], lvl[var_[g]], lvl[var_[h]])
    v = m._level2var[level]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if g > 1 and var_[g] == v:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    if h > 1 and var_[h] == v:
        h0, h1 = lo_[h], hi_[h]
    else:
        h0 = h1 = h
    result = m._mk(v, ite(m, f0, g0, h0), ite(m, f1, g1, h1))
    cache[key] = result
    return result

"""Core Boolean operations on BDD nodes: NOT, AND, OR, XOR and ITE.

These are the classic Bryant ``apply`` kernels, implemented with
**explicit stacks** instead of Python recursion, so no operation can hit
the interpreter recursion limit regardless of BDD depth, and per-step
overhead stays constant.  AND/OR/XOR share one iterative driver
(:func:`_apply2`); NOT and ITE have their own loops of the same shape.

Memoization uses the per-operation packed-key computed tables of
:mod:`repro.bdd.cache` (``m._ctables`` / ``m._cstats``): one dict per
op, keys packed into a single int, bounded size with batched
oldest-half eviction.

Every kernel entry increments ``m.op_count`` — the manager-level
statistic therefore counts *kernel invocations*, including internal
cross-kernel calls (e.g. the XOR-with-TRUE fallback into NOT, or ITE's
simplification into AND/OR).

The explicit stacks hold three kinds of tasks, dispatched by type:

* a non-negative ``int`` — *expand* this subproblem (probe the table,
  split on the top variable, push children),
* a negative ``int`` ``-1 - v`` — a *literal*: push value ``v`` onto
  the value stack (used for children resolved at push time),
* a ``tuple`` — a *combine* frame: pop the children's results off the
  value stack, build the result node, insert it into the table.

Combine frames always find their operands on top of the value stack
because every pushed task nets exactly one value by the time it is
consumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .cache import OP_AND, OP_ITE, OP_NOT, OP_OR, OP_XOR, evict_half

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import BDD


def not_(m: "BDD", f: int) -> int:
    """Negation of ``f`` (iterative)."""
    m.op_count += 1
    if f < 2:
        return f ^ 1
    table = m._ctables[OP_NOT]
    st = m._cstats[OP_NOT]
    r = table.get(f)
    if r is not None:
        st[0] += 1
        return r
    var_, lo_, hi_ = m._var, m._lo, m._hi
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # One-level fast path: both children terminal or cache-resident.
    lo = lo_[f]
    hi = hi_[f]
    r0 = lo ^ 1 if lo < 2 else get(lo)
    if r0 is not None:
        r1 = hi ^ 1 if hi < 2 else get(hi)
        if r1 is not None:
            res = mk(var_[f], r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[f] = res
            table[res] = f
            st[0] += (lo >= 2) + (hi >= 2)
            st[1] += 1
            st[2] += 2
            return res
    # Tasks: tagged ints — negative = literal value; even = expand node
    # ``t >> 1``; odd = mk-combine node ``t >> 1``.
    tasks = [f << 1]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if t < 0:
            vals.append(-1 - t)
            continue
        n = t >> 1
        if t & 1:
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(var_[n], r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[n] = res
            # Negation is an involution; seed the reverse entry for free.
            if len(table) >= limit:
                evict_half(table, st)
            table[res] = n
            st[2] += 2
            vals.append(res)
            continue
        r = get(n)
        if r is not None:
            st[0] += 1
            vals.append(r)
            continue
        st[1] += 1
        push((n << 1) | 1)
        hi = hi_[n]
        push(-1 - (hi ^ 1) if hi < 2 else hi << 1)
        lo = lo_[n]
        push(-1 - (lo ^ 1) if lo < 2 else lo << 1)
    return vals[-1]


def _apply2(m: "BDD", op: int, f: int, g: int) -> int:
    """Shared iterative apply driver for the commutative binary ops.

    ``op`` is one of ``OP_AND`` / ``OP_OR`` / ``OP_XOR``; operand pairs
    are normalized to ``f < g`` so the packed key ``g << 32 | f`` is
    canonical.
    """
    # Top-level trivial cases (same ladder as the per-child resolution
    # below, kept inline so the fast path has no loop setup).
    if f == g:
        return 0 if op == OP_XOR else f
    if f > g:
        f, g = g, f
    if f < 2:
        if op == OP_AND:
            return 0 if f == 0 else g
        if op == OP_OR:
            return g if f == 0 else 1
        return g if f == 0 else not_(m, g)
    table = m._ctables[op]
    st = m._cstats[op]
    key = (g << 32) | f
    r = table.get(key)
    if r is not None:
        st[0] += 1
        return r
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # One-level fast path.  The average subproblem (especially inside
    # the engines' warm-cache fixpoint loops) resolves both children by
    # the constant ladder or a cache probe; handle that without paying
    # for the task-stack machinery below.  Mirrors the resolution logic
    # in the loop — on failure the root is simply re-expanded there,
    # and no stats are flushed here so nothing is double-counted.
    fhits = 0
    la = lvl[var_[f]]
    lb = lvl[var_[g]]
    if la <= lb:
        v = var_[f]
        a0, a1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        a0 = a1 = f
    if lb <= la:
        b0, b1 = lo_[g], hi_[g]
    else:
        b0 = b1 = g
    if a0 == b0:
        r0 = 0 if op == OP_XOR else a0
    else:
        if a0 > b0:
            a0, b0 = b0, a0
        if a0 == 0:
            r0 = 0 if op == OP_AND else b0
        elif a0 == 1:
            if op == OP_AND:
                r0 = b0
            elif op == OP_OR:
                r0 = 1
            else:
                r0 = not_(m, b0)
        else:
            rc = get((b0 << 32) | a0)
            if rc is None:
                r0 = -1
            else:
                fhits += 1
                r0 = rc
    if r0 >= 0:
        if a1 == b1:
            r1 = 0 if op == OP_XOR else a1
        else:
            if a1 > b1:
                a1, b1 = b1, a1
            if a1 == 0:
                r1 = 0 if op == OP_AND else b1
            elif a1 == 1:
                if op == OP_AND:
                    r1 = b1
                elif op == OP_OR:
                    r1 = 1
                else:
                    r1 = not_(m, b1)
            else:
                rc = get((b1 << 32) | a1)
                if rc is None:
                    r1 = -1
                else:
                    fhits += 1
                    r1 = rc
        if r1 >= 0:
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[0] += fhits
            st[1] += 1
            st[2] += 1
            return res
    # Tasks are 3-tuples dispatched on the sign of the first element:
    #
    # * ``(a, b, key)`` with ``a >= 2`` — *expand* this operand pair
    #   (already probed: its table miss was counted at push time),
    # * ``(-1 - v, key, r1)`` — *combine*: build ``mk(v, r0, r1)``,
    #   popping ``r0`` off the value stack, and ``r1`` too when it is
    #   carried as ``-1`` rather than an inline value.
    #
    # Children are resolved eagerly at push time — constant ladder first,
    # then a table probe — so cache-hit children never become tasks, and
    # a node whose children both resolve is built immediately with no
    # combine frame.  Stats are tallied in locals and flushed once.
    tasks = [(f, g, key)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    vpush = vals.append
    vpop = vals.pop
    hits = 0
    misses = 1
    inserts = 0
    entries = len(table)
    while tasks:
        t = pop()
        a = t[0]
        if a >= 0:
            b = t[1]
            key = t[2]
            la = lvl[var_[a]]
            lb = lvl[var_[b]]
            if la <= lb:
                v = var_[a]
                a0, a1 = lo_[a], hi_[a]
            else:
                v = var_[b]
                a0 = a1 = a
            if lb <= la:
                b0, b1 = lo_[b], hi_[b]
            else:
                b0 = b1 = b
            # Resolve each child to a value (constant ladder, then a
            # cache probe) or to -1 (needs its own expansion).
            if a0 == b0:
                r0 = 0 if op == OP_XOR else a0
            else:
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 0:
                    r0 = 0 if op == OP_AND else b0
                elif a0 == 1:
                    if op == OP_AND:
                        r0 = b0
                    elif op == OP_OR:
                        r0 = 1
                    else:
                        r0 = not_(m, b0)
                else:
                    k0 = (b0 << 32) | a0
                    rc = get(k0)
                    if rc is None:
                        r0 = -1
                    else:
                        hits += 1
                        r0 = rc
            if a1 == b1:
                r1 = 0 if op == OP_XOR else a1
            else:
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 == 0:
                    r1 = 0 if op == OP_AND else b1
                elif a1 == 1:
                    if op == OP_AND:
                        r1 = b1
                    elif op == OP_OR:
                        r1 = 1
                    else:
                        r1 = not_(m, b1)
                else:
                    k1 = (b1 << 32) | a1
                    rc = get(k1)
                    if rc is None:
                        r1 = -1
                    else:
                        hits += 1
                        r1 = rc
            if r0 >= 0:
                if r1 >= 0:
                    res = mk(v, r0, r1)
                    if entries >= limit:
                        evict_half(table, st)
                        entries = len(table)
                    table[key] = res
                    entries += 1
                    inserts += 1
                    vpush(res)
                else:
                    # r0 lands on the value stack now; the hi subtree
                    # nets exactly one value on top of it.
                    misses += 1
                    vpush(r0)
                    push((-1 - v, key, -1))
                    push((a1, b1, k1))
            elif r1 >= 0:
                misses += 1
                push((-1 - v, key, r1))
                push((a0, b0, k0))
            else:
                misses += 2
                push((-1 - v, key, -1))
                # hi pair first, lo pair second: LIFO pops lo first, so
                # the combine frame finds (r0, r1) in order.
                push((a1, b1, k1))
                push((a0, b0, k0))
        else:
            key = t[1]
            r1 = t[2]
            if r1 < 0:
                r1 = vpop()
            r0 = vpop()
            res = mk(-1 - a, r0, r1)
            if entries >= limit:
                evict_half(table, st)
                entries = len(table)
            table[key] = res
            entries += 1
            inserts += 1
            vpush(res)
    st[0] += hits
    st[1] += misses
    st[2] += inserts
    return vals[-1]


def and_(m: "BDD", f: int, g: int) -> int:
    """Conjunction of ``f`` and ``g``."""
    m.op_count += 1
    return _apply2(m, OP_AND, f, g)


def or_(m: "BDD", f: int, g: int) -> int:
    """Disjunction of ``f`` and ``g``."""
    m.op_count += 1
    return _apply2(m, OP_OR, f, g)


def xor(m: "BDD", f: int, g: int) -> int:
    """Exclusive-or of ``f`` and ``g``."""
    m.op_count += 1
    return _apply2(m, OP_XOR, f, g)


def _ite_shallow(m: "BDD", f: int, g: int, h: int) -> Optional[int]:
    """Standard ITE simplifications; a node, or None when none apply.

    Falls back to the two-operand kernels where possible so their
    (better-shared) cache entries are reused.
    """
    if f == 1:
        return g
    if f == 0:
        return h
    if g == h:
        return g
    if g == 1 and h == 0:
        return f
    if g == 0 and h == 1:
        return not_(m, f)
    if g == 1:
        return or_(m, f, h)
    if h == 0:
        return and_(m, f, g)
    if g == 0:
        return and_(m, not_(m, f), h)
    if h == 1:
        return or_(m, not_(m, f), g)
    if f == g:
        return or_(m, f, h)
    if f == h:
        return and_(m, f, g)
    return None


def ite(m: "BDD", f: int, g: int, h: int) -> int:
    """If-then-else ``(f AND g) OR (NOT f AND h)`` (iterative)."""
    m.op_count += 1
    res = _ite_shallow(m, f, g, h)
    if res is not None:
        return res
    table = m._ctables[OP_ITE]
    st = m._cstats[OP_ITE]
    r = table.get((f << 64) | (g << 32) | h)
    if r is not None:
        st[0] += 1
        return r
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    level2var = m._level2var
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    tasks = [(f, g, h)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            vals.append(-1 - t)
            continue
        if len(t) == 3:
            a, b, c = t
            key = (a << 64) | (b << 32) | c
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            level = lvl[var_[a]]
            if b > 1:
                lb = lvl[var_[b]]
                if lb < level:
                    level = lb
            if c > 1:
                lc = lvl[var_[c]]
                if lc < level:
                    level = lc
            v = level2var[level]
            if var_[a] == v:
                a0, a1 = lo_[a], hi_[a]
            else:
                a0 = a1 = a
            if b > 1 and var_[b] == v:
                b0, b1 = lo_[b], hi_[b]
            else:
                b0 = b1 = b
            if c > 1 and var_[c] == v:
                c0, c1 = lo_[c], hi_[c]
            else:
                c0 = c1 = c
            push((v, key))
            res = _ite_shallow(m, a1, b1, c1)
            push(-1 - res if res is not None else (a1, b1, c1))
            res = _ite_shallow(m, a0, b0, c0)
            push(-1 - res if res is not None else (a0, b0, c0))
        else:
            v, key = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]

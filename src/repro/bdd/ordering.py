"""Dynamic variable reordering: in-place level swaps and Rudell sifting.

The paper's Table 2 experiments use *fixed* variable orders, some of which
were produced by an earlier dynamic-reordering run ("D" orders).  This
module provides the machinery to produce such orders: the classic
adjacent-level swap that rewrites interacting nodes **in place** (so user
node handles stay valid, like CUDD), plus sifting built on top of it, and
``reorder_to`` which permutes to an arbitrary target order via bubble
swaps.

Correctness argument for :func:`swap_adjacent` (levels ``l``/``l+1`` with
variables ``x``/``y``): an ``x`` node whose children do not mention ``y``
is untouched — it simply ends up at level ``l+1``.  An interacting node
``n = (x, lo, hi)`` is rewritten as ``(y, mk(x, lo0, hi0), mk(x, lo1, hi1))``
where ``lo0/lo1`` (``hi0/hi1``) are ``lo``'s (``hi``'s) cofactors w.r.t.
``y``.  Because at least one child mentions ``y``, the rewritten node still
depends on ``y`` and the fresh ``(f0, f1)`` key cannot collide with an
existing ``y`` node; both facts are asserted.  Node ``n`` keeps its handle
and represents the same function, so every externally held BDD is
unaffected.  Old children that lose their last parent stay in the unique
table as garbage until the next collection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import BDDError


def swap_adjacent(m, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place."""
    if not 0 <= level < len(m._level2var) - 1:
        raise BDDError("cannot swap level %d" % level)
    x = m._level2var[level]
    y = m._level2var[level + 1]
    var_, lo_, hi_ = m._var, m._lo, m._hi
    xtab = m._unique[x]
    ytab = m._unique[y]
    keep: Dict[int, int] = {}
    interacting: List[int] = []
    for key, n in xtab.items():
        lo, hi = key >> 32, key & 0xFFFFFFFF
        if var_[lo] == y or var_[hi] == y:
            interacting.append(n)
        else:
            keep[key] = n
    m._unique[x] = keep
    mk = m._mk
    for n in interacting:
        lo, hi = lo_[n], hi_[n]
        if var_[lo] == y:
            lo0, lo1 = lo_[lo], hi_[lo]
        else:
            lo0 = lo1 = lo
        if var_[hi] == y:
            hi0, hi1 = lo_[hi], hi_[hi]
        else:
            hi0 = hi1 = hi
        f0 = mk(x, lo0, hi0)
        f1 = mk(x, lo1, hi1)
        if f0 == f1:  # pragma: no cover - impossible by the argument above
            raise BDDError("swap produced a redundant node")
        key = (f0 << 32) | f1
        if key in ytab:  # pragma: no cover - impossible by canonicity
            raise BDDError("swap produced a duplicate node")
        var_[n] = y
        lo_[n] = f0
        hi_[n] = f1
        ytab[key] = n
    m._level2var[level] = y
    m._level2var[level + 1] = x
    m._var2level[x] = level + 1
    m._var2level[y] = level
    # Cached results remain *semantically* valid (nodes keep their
    # functions) but quantification cache keys embed interned level-sorted
    # tuples; clearing the computed and intern tables keeps the invariants
    # simple and swaps are rare outside sifting, which clears caches
    # itself.
    m.clear_cache()


def reorder_to(m, order: Sequence[int]) -> None:
    """Permute the variable order to ``order`` (top level first)."""
    if sorted(order) != list(range(m.num_vars)):
        raise BDDError("reorder_to needs a permutation of all variables")
    m.collect_garbage()
    for target_level, var in enumerate(order):
        current = m._var2level[var]
        while current > target_level:
            swap_adjacent(m, current - 1)
            current -= 1
    m.collect_garbage()


def _live_table_size(m) -> int:
    """Live unique-table occupancy (dead nodes collected first).

    Swaps strand dead nodes in the unique tables; without collecting
    them the size metric would grow monotonically along a sift pass and
    every "best position" decision would degenerate to the start.
    """
    m.collect_garbage()
    return 2 + sum(len(tab) for tab in m._unique)


def sift(m, max_growth: float = 1.2, max_vars: Optional[int] = None) -> int:
    """Rudell's sifting algorithm over all (or the largest) variables.

    Each selected variable is moved through the whole order via adjacent
    swaps, and parked at the position that minimized the total node count;
    a search direction is abandoned early when the table grows beyond
    ``max_growth`` times the best size seen.  Returns the final live node
    count.
    """
    m.collect_garbage()
    nvars = m.num_vars
    if nvars < 2:
        return m.num_nodes
    candidates = sorted(
        range(nvars), key=lambda v: len(m._unique[v]), reverse=True
    )
    if max_vars is not None:
        candidates = candidates[:max_vars]
    last_level = nvars - 1
    for var in candidates:
        m.collect_garbage()
        best_size = _live_table_size(m)
        start = m._var2level[var]
        best_level = start
        level = start
        # Search the closer end first to keep swap counts down, then sweep
        # through to the other end; abandon a direction on excessive growth.
        down_first = (last_level - start) <= start
        directions = (1, -1) if down_first else (-1, 1)
        for step in directions:
            end = last_level if step == 1 else 0
            while level != end:
                swap_adjacent(m, level if step == 1 else level - 1)
                level += step
                size = _live_table_size(m)
                if size < best_size:
                    best_size = size
                    best_level = level
                elif size > max_growth * best_size:
                    break
        # Park the variable at the best position found.
        while level > best_level:
            swap_adjacent(m, level - 1)
            level -= 1
        while level < best_level:
            swap_adjacent(m, level)
            level += 1
    m.collect_garbage()
    return m.num_nodes

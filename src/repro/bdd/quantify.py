"""Quantification over BDDs: EXISTS, FORALL and the fused relational product.

``and_exists`` implements ``EXISTS V . f AND g`` in a single pass with
early termination — the workhorse of image computation in the
characteristic-function (VIS/IWLS95-style) reachability baseline.

Quantified variable sets are normalized to tuples sorted by *current
level* and **interned** to a small integer id (``m._cube_ids``); the
iterative kernels thread an *index* into the interned tuple instead of
re-slicing ``cube[1:]`` at every level, and cache keys pack
``(cube id, index, operand)`` into one integer (see
:mod:`repro.bdd.cache`).  The computed results are plain functions and
thus remain valid across reorders; the caches and intern tables are
nevertheless cleared on reorder (the level-sorted tuples change
meaning) and swept at GC.

All three kernels run on explicit stacks (no Python recursion); the
quantified-variable case short-circuits the hi branch when the lo
branch already decided the result (1 for EXISTS, 0 for FORALL), exactly
like the classic recursive formulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Tuple

from . import operations as _operations
from .cache import OP_AND_EXISTS, OP_EXISTS, OP_FORALL, evict_half

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import BDD


def _sorted_cube(m: "BDD", variables: Sequence[int]) -> Tuple[int, ...]:
    """Deduplicate and sort variables by their current level.

    Quantified variable lists carry no polarity, so duplicates (also by
    mixed name/index spelling, resolved upstream) are harmlessly
    coalesced.
    """
    lvl = m._var2level
    return tuple(sorted(set(variables), key=lvl.__getitem__))


def _intern_cube(m: "BDD", cube: Tuple[int, ...]) -> int:
    """Small integer id for a level-sorted cube tuple (per manager)."""
    ids = m._cube_ids
    cid = ids.get(cube)
    if cid is None:
        cid = len(ids)
        ids[cube] = cid
    return cid


def exists(m: "BDD", f: int, variables: Sequence[int]) -> int:
    """Existentially quantify ``variables`` out of ``f``."""
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        m.op_count += 1
        return f
    return _exists(m, f, cube, 0)


def _exists(m: "BDD", f: int, cube: Tuple[int, ...], start: int) -> int:
    m.op_count += 1
    if f < 2:
        return f
    table = m._ctables[OP_EXISTS]
    st = m._cstats[OP_EXISTS]
    kbase = _intern_cube(m, cube) << 64
    ncube = len(cube)
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # Tasks: negative int = literal; (f, s) expand; (v, key, 0) mk-combine;
    # (key, hi, rest, 0) check-lo; (key,) or-combine.
    tasks = [(f, start)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            vals.append(-1 - t)
            continue
        n = len(t)
        if n == 2:
            ff, s = t
            lf = lvl[var_[ff]]
            # Skip quantified variables above ff's top: they no longer
            # occur in ff (index advance replaces cube[1:] re-slicing).
            while s < ncube and lvl[cube[s]] < lf:
                s += 1
            if s == ncube:
                vals.append(ff)
                continue
            key = kbase | (s << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            v = var_[ff]
            if v == cube[s]:
                rest = s + 1
                push((key, hi_[ff], rest, 0))
                lo = lo_[ff]
                push(-1 - lo if lo < 2 else (lo, rest))
            else:
                push((v, key, 0))
                hi = hi_[ff]
                push(-1 - hi if hi < 2 else (hi, s))
                lo = lo_[ff]
                push(-1 - lo if lo < 2 else (lo, s))
        elif n == 3:
            v, key, _ = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        elif n == 4:
            key, hi, rest, _ = t
            r0 = vals.pop()
            if r0 == 1:
                if len(table) >= limit:
                    evict_half(table, st)
                table[key] = 1
                st[2] += 1
                vals.append(1)
            else:
                push((key,))
                push(-1 - hi if hi < 2 else (hi, rest))
                push(-1 - r0)
        else:
            key = t[0]
            r1 = vals.pop()
            r0 = vals.pop()
            res = _operations.or_(m, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]


def forall(m: "BDD", f: int, variables: Sequence[int]) -> int:
    """Universally quantify ``variables`` out of ``f``."""
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        m.op_count += 1
        return f
    return _forall(m, f, cube, 0)


def _forall(m: "BDD", f: int, cube: Tuple[int, ...], start: int) -> int:
    m.op_count += 1
    if f < 2:
        return f
    table = m._ctables[OP_FORALL]
    st = m._cstats[OP_FORALL]
    kbase = _intern_cube(m, cube) << 64
    ncube = len(cube)
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    tasks = [(f, start)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            vals.append(-1 - t)
            continue
        n = len(t)
        if n == 2:
            ff, s = t
            lf = lvl[var_[ff]]
            while s < ncube and lvl[cube[s]] < lf:
                s += 1
            if s == ncube:
                vals.append(ff)
                continue
            key = kbase | (s << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            v = var_[ff]
            if v == cube[s]:
                rest = s + 1
                push((key, hi_[ff], rest, 0))
                lo = lo_[ff]
                push(-1 - lo if lo < 2 else (lo, rest))
            else:
                push((v, key, 0))
                hi = hi_[ff]
                push(-1 - hi if hi < 2 else (hi, s))
                lo = lo_[ff]
                push(-1 - lo if lo < 2 else (lo, s))
        elif n == 3:
            v, key, _ = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        elif n == 4:
            key, hi, rest, _ = t
            r0 = vals.pop()
            if r0 == 0:
                if len(table) >= limit:
                    evict_half(table, st)
                table[key] = 0
                st[2] += 1
                vals.append(0)
            else:
                push((key,))
                push(-1 - hi if hi < 2 else (hi, rest))
                push(-1 - r0)
        else:
            key = t[0]
            r1 = vals.pop()
            r0 = vals.pop()
            res = _operations.and_(m, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]


def and_exists(m: "BDD", f: int, g: int, variables: Sequence[int]) -> int:
    """Relational product: ``EXISTS variables . f AND g`` in one pass."""
    cube = _sorted_cube(m, variables)
    if not cube:
        return _operations.and_(m, f, g)
    return _and_exists(m, f, g, cube)


def _and_exists(m: "BDD", f: int, g: int, cube: Tuple[int, ...]) -> int:
    m.op_count += 1
    table = m._ctables[OP_AND_EXISTS]
    st = m._cstats[OP_AND_EXISTS]
    kbase = _intern_cube(m, cube) << 96
    ncube = len(cube)
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    level2var = m._level2var
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # Tasks: negative int = literal; (0, f, g, s) expand; (1, v, key)
    # mk-combine; (2, key, f1, g1, rest) check-lo; (3, key) or-combine.
    tasks = [(0, f, g, 0)]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            vals.append(-1 - t)
            continue
        tag = t[0]
        if tag == 0:
            _, ff, gg, s = t
            if ff > gg:
                ff, gg = gg, ff
            if ff == 0:
                vals.append(0)
                continue
            if ff == 1:
                vals.append(1 if gg == 1 else _exists(m, gg, cube, s))
                continue
            if ff == gg:
                vals.append(_exists(m, ff, cube, s))
                continue
            vf = var_[ff]
            vg = var_[gg]
            lf = lvl[vf]
            lg = lvl[vg]
            top = lf if lf <= lg else lg
            while s < ncube and lvl[cube[s]] < top:
                s += 1
            if s == ncube:
                vals.append(_operations.and_(m, ff, gg))
                continue
            key = kbase | (s << 64) | (gg << 32) | ff
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            v = level2var[top]
            if vf == v:
                f0, f1 = lo_[ff], hi_[ff]
            else:
                f0 = f1 = ff
            if vg == v:
                g0, g1 = lo_[gg], hi_[gg]
            else:
                g0 = g1 = gg
            # Zero children fold at push time (-1 encodes literal 0):
            # AND with 0 needs no task of its own.
            if v == cube[s]:
                rest = s + 1
                push((2, key, f1, g1, rest))
                push(-1 if f0 == 0 or g0 == 0 else (0, f0, g0, rest))
            else:
                push((1, v, key))
                push(-1 if f1 == 0 or g1 == 0 else (0, f1, g1, s))
                push(-1 if f0 == 0 or g0 == 0 else (0, f0, g0, s))
        elif tag == 1:
            _, v, key = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = mk(v, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
        elif tag == 2:
            _, key, f1, g1, rest = t
            r0 = vals.pop()
            if r0 == 1:
                if len(table) >= limit:
                    evict_half(table, st)
                table[key] = 1
                st[2] += 1
                vals.append(1)
            else:
                push((3, key))
                push(-1 if f1 == 0 or g1 == 0 else (0, f1, g1, rest))
                push(-1 - r0)
        else:
            _, key = t
            r1 = vals.pop()
            r0 = vals.pop()
            res = _operations.or_(m, r0, r1)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]

"""Quantification over BDDs: EXISTS, FORALL and the fused relational product.

``and_exists`` implements ``EXISTS V . f AND g`` in a single recursion with
early termination — the workhorse of image computation in the
characteristic-function (VIS/IWLS95-style) reachability baseline.

Quantified variable sets are normalized to tuples sorted by *current level*
so that the recursion can drop variables that can no longer occur, and so
cache keys are canonical.  The computed results are plain functions and thus
remain valid across reorders; the caches are nevertheless cleared on reorder
and GC by the manager.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from . import operations as _operations


def _sorted_cube(m, variables: Sequence[int]) -> Tuple[int, ...]:
    """Deduplicate and sort variables by their current level."""
    lvl = m._var2level
    return tuple(sorted(set(variables), key=lvl.__getitem__))


def exists(m, f: int, variables: Sequence[int]) -> int:
    """Existentially quantify ``variables`` out of ``f``."""
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        return f
    return _exists(m, f, cube)


def _exists(m, f: int, cube: Tuple[int, ...]) -> int:
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    # Drop quantified variables that lie above f's top variable: they no
    # longer occur in f.
    while cube and lvl[cube[0]] < lf:
        cube = cube[1:]
    if not cube:
        return f
    cache = m._cache
    key = ("E", f, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = var_[f]
    if v == cube[0]:
        rest = cube[1:]
        r0 = _exists(m, lo_[f], rest)
        if r0 == 1:
            result = 1
        else:
            result = _operations.or_(m, r0, _exists(m, hi_[f], rest))
    else:
        result = m._mk(v, _exists(m, lo_[f], cube), _exists(m, hi_[f], cube))
    cache[key] = result
    return result


def forall(m, f: int, variables: Sequence[int]) -> int:
    """Universally quantify ``variables`` out of ``f``."""
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        return f
    return _forall(m, f, cube)


def _forall(m, f: int, cube: Tuple[int, ...]) -> int:
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    while cube and lvl[cube[0]] < lf:
        cube = cube[1:]
    if not cube:
        return f
    cache = m._cache
    key = ("A", f, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = var_[f]
    if v == cube[0]:
        rest = cube[1:]
        r0 = _forall(m, lo_[f], rest)
        if r0 == 0:
            result = 0
        else:
            result = _operations.and_(m, r0, _forall(m, hi_[f], rest))
    else:
        result = m._mk(v, _forall(m, lo_[f], cube), _forall(m, hi_[f], cube))
    cache[key] = result
    return result


def and_exists(m, f: int, g: int, variables: Sequence[int]) -> int:
    """Relational product: ``EXISTS variables . f AND g`` in one pass."""
    cube = _sorted_cube(m, variables)
    if not cube:
        return _operations.and_(m, f, g)
    return _and_exists(m, f, g, cube)


def _and_exists(m, f: int, g: int, cube: Tuple[int, ...]) -> int:
    if f == 0 or g == 0:
        return 0
    if f == 1 and g == 1:
        return 1
    if f == 1:
        return _exists(m, g, cube)
    if g == 1:
        return _exists(m, f, cube)
    if f == g:
        return _exists(m, f, cube)
    if f > g:
        f, g = g, f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    top = lf if lf <= lg else lg
    while cube and lvl[cube[0]] < top:
        cube = cube[1:]
    if not cube:
        return _operations.and_(m, f, g)
    cache = m._cache
    key = ("AE", f, g, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = m._level2var[top]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if var_[g] == v:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    if v == cube[0]:
        rest = cube[1:]
        r0 = _and_exists(m, f0, g0, rest)
        if r0 == 1:
            result = 1
        else:
            result = _operations.or_(m, r0, _and_exists(m, f1, g1, rest))
    else:
        result = m._mk(
            v, _and_exists(m, f0, g0, cube), _and_exists(m, f1, g1, cube)
        )
    cache[key] = result
    return result

"""Functional composition and variable renaming on BDDs.

``compose`` substitutes one function for one variable; ``vector_compose``
performs a *simultaneous* substitution of several functions — the primitive
behind the Boolean-functional-vector intersection's final normalization pass
(paper Sec 2.4) and the characteristic-function parameterization.

``rename`` maps variables to variables; it detects the common
order-compatible case (every renamed variable keeps its relative level
position and target variables do not collide with the support) and then uses
a fast structural rebuild, falling back to general composition otherwise.

All traversals are iterative.  ``compose`` memoizes in the shared
packed-key computed table (:mod:`repro.bdd.cache`); ``vector_compose``
and the monotone rename keep per-call memo dicts because their results
depend on the whole (unhashable) mapping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from . import operations as _operations
from . import traversal as _traversal
from .cache import OP_COMPOSE, evict_half

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import BDD


def compose(m: "BDD", f: int, var: int, g: int) -> int:
    """Substitute function ``g`` for variable ``var`` in ``f``."""
    m.op_count += 1
    if f < 2:
        return f
    table = m._ctables[OP_COMPOSE]
    st = m._cstats[OP_COMPOSE]
    kbase = (var << 64) | (g << 32)
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lv = lvl[var]
    mk = m._mk
    limit = m.cache_limit
    get = table.get
    # Tasks: int = expand (terminals resolve to themselves at pop);
    # (vf, key) ite-combine.
    tasks = [f]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            if t < 2:
                vals.append(t)
                continue
            vf = var_[t]
            if lvl[vf] > lv:
                vals.append(t)
                continue
            key = kbase | t
            r = get(key)
            if r is not None:
                st[0] += 1
                vals.append(r)
                continue
            st[1] += 1
            if vf == var:
                res = _operations.ite(m, g, hi_[t], lo_[t])
                if len(table) >= limit:
                    evict_half(table, st)
                table[key] = res
                st[2] += 1
                vals.append(res)
                continue
            push((vf, key))
            push(hi_[t])
            push(lo_[t])
        else:
            vf, key = t
            r1 = vals.pop()
            r0 = vals.pop()
            # Children may now contain variables above f's own variable (g
            # can reference anything), so rebuild with ITE instead of _mk.
            res = _operations.ite(m, mk(vf, 0, 1), r1, r0)
            if len(table) >= limit:
                evict_half(table, st)
            table[key] = res
            st[2] += 1
            vals.append(res)
    return vals[-1]


def vector_compose(m: "BDD", f: int, mapping: Dict[int, int]) -> int:
    """Simultaneously substitute ``mapping[var]`` for each variable.

    Variables absent from ``mapping`` are left untouched.  The substitution
    is simultaneous: replacement functions are *not* themselves rewritten,
    even if they mention variables that also appear as mapping keys.
    """
    m.op_count += 1
    if f < 2 or not mapping:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    max_level = max(lvl[v] for v in mapping)
    mk = m._mk
    # Per-call memo table: mapping dicts are not hashable and results
    # depend on the whole mapping, so a shared cache key would be awkward.
    memo: Dict[int, int] = {}
    memo_get = memo.get
    tasks = [f]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            if t < 2 or lvl[var_[t]] > max_level:
                # No mapped variable can occur at or below this node.
                vals.append(t)
                continue
            r = memo_get(t)
            if r is not None:
                vals.append(r)
                continue
            push((t,))
            push(hi_[t])
            push(lo_[t])
        else:
            ff = t[0]
            r1 = vals.pop()
            r0 = vals.pop()
            v = var_[ff]
            g = mapping.get(v)
            if g is None:
                g = mk(v, 0, 1)
            res = _operations.ite(m, g, r1, r0)
            memo[ff] = res
            vals.append(res)
    return vals[-1]


def rename(m: "BDD", f: int, var_map: Dict[int, int]) -> int:
    """Rename variables of ``f``: each key variable becomes its value.

    Uses a fast monotone rebuild when the renaming preserves the relative
    order of the support and introduces no collisions; otherwise falls back
    to simultaneous composition with literal nodes.
    """
    if f < 2 or not var_map:
        m.op_count += 1
        return f
    support = set(_traversal.support(m, f))
    effective = {v: w for v, w in var_map.items() if v in support and v != w}
    if not effective:
        m.op_count += 1
        return f
    lvl = m._var2level
    targets = set(effective.values())
    untouched = support - set(effective)
    collision = bool(targets & untouched)
    if not collision:
        pairs = [
            (lvl[v], lvl[effective.get(v, v)]) for v in support
        ]
        pairs.sort()
        monotone = all(
            pairs[i][1] < pairs[i + 1][1] for i in range(len(pairs) - 1)
        )
        if monotone:
            return _rename_monotone(m, f, effective)
    literal_map = {v: m._mk(w, 0, 1) for v, w in effective.items()}
    return vector_compose(m, f, literal_map)


def _rename_monotone(m: "BDD", f: int, var_map: Dict[int, int]) -> int:
    m.op_count += 1
    var_, lo_, hi_ = m._var, m._lo, m._hi
    mk = m._mk
    memo: Dict[int, int] = {}
    memo_get = memo.get
    tasks = [f]
    vals = []
    push = tasks.append
    pop = tasks.pop
    while tasks:
        t = pop()
        if type(t) is int:
            if t < 2:
                vals.append(t)
                continue
            r = memo_get(t)
            if r is not None:
                vals.append(r)
                continue
            push((t,))
            push(hi_[t])
            push(lo_[t])
        else:
            ff = t[0]
            r1 = vals.pop()
            r0 = vals.pop()
            v = var_[ff]
            res = mk(var_map.get(v, v), r0, r1)
            memo[ff] = res
            vals.append(res)
    return vals[-1]

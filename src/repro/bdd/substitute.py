"""Functional composition and variable renaming on BDDs.

``compose`` substitutes one function for one variable; ``vector_compose``
performs a *simultaneous* substitution of several functions — the primitive
behind the Boolean-functional-vector intersection's final normalization pass
(paper Sec 2.4) and the characteristic-function parameterization.

``rename`` maps variables to variables; it detects the common
order-compatible case (every renamed variable keeps its relative level
position and target variables do not collide with the support) and then uses
a fast structural rebuild, falling back to general composition otherwise.
"""

from __future__ import annotations

from typing import Dict

from . import operations as _operations
from . import traversal as _traversal


def compose(m, f: int, var: int, g: int) -> int:
    """Substitute function ``g`` for variable ``var`` in ``f``."""
    if f < 2:
        return f
    cache = m._cache
    key = ("C", f, var, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lv = lvl[var]
    if lf > lv:
        result = f
    elif var_[f] == var:
        result = _operations.ite(m, g, hi_[f], lo_[f])
    else:
        r0 = compose(m, lo_[f], var, g)
        r1 = compose(m, hi_[f], var, g)
        # Children may now contain variables above f's own variable (g can
        # reference anything), so rebuild with ITE instead of _mk.
        v_node = m._mk(var_[f], 0, 1)
        result = _operations.ite(m, v_node, r1, r0)
    cache[key] = result
    return result


def vector_compose(m, f: int, mapping: Dict[int, int]) -> int:
    """Simultaneously substitute ``mapping[var]`` for each variable.

    Variables absent from ``mapping`` are left untouched.  The substitution
    is simultaneous: replacement functions are *not* themselves rewritten,
    even if they mention variables that also appear as mapping keys.
    """
    if f < 2 or not mapping:
        return f
    lvl = m._var2level
    max_level = max(lvl[v] for v in mapping)
    # Per-call memo table: mapping dicts are not hashable and results
    # depend on the whole mapping, so a shared cache key would be awkward.
    memo: Dict[int, int] = {}
    return _vector_compose(m, f, mapping, max_level, memo)


def _vector_compose(
    m, f: int, mapping: Dict[int, int], max_level: int, memo: Dict[int, int]
) -> int:
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    if lvl[v] > max_level:
        # No mapped variable can occur at or below this node.
        return f
    cached = memo.get(f)
    if cached is not None:
        return cached
    r0 = _vector_compose(m, lo_[f], mapping, max_level, memo)
    r1 = _vector_compose(m, hi_[f], mapping, max_level, memo)
    g = mapping.get(v)
    if g is None:
        g = m._mk(v, 0, 1)
    result = _operations.ite(m, g, r1, r0)
    memo[f] = result
    return result


def rename(m, f: int, var_map: Dict[int, int]) -> int:
    """Rename variables of ``f``: each key variable becomes its value.

    Uses a fast monotone rebuild when the renaming preserves the relative
    order of the support and introduces no collisions; otherwise falls back
    to simultaneous composition with literal nodes.
    """
    if f < 2 or not var_map:
        return f
    support = set(_traversal.support(m, f))
    effective = {v: w for v, w in var_map.items() if v in support and v != w}
    if not effective:
        return f
    lvl = m._var2level
    targets = set(effective.values())
    untouched = support - set(effective)
    collision = bool(targets & untouched)
    if not collision:
        pairs = [
            (lvl[v], lvl[effective.get(v, v)]) for v in support
        ]
        pairs.sort()
        monotone = all(
            pairs[i][1] < pairs[i + 1][1] for i in range(len(pairs) - 1)
        )
        if monotone:
            memo: Dict[int, int] = {}
            return _rename_monotone(m, f, effective, memo)
    literal_map = {v: m._mk(w, 0, 1) for v, w in effective.items()}
    return vector_compose(m, f, literal_map)


def _rename_monotone(m, f: int, var_map: Dict[int, int], memo: Dict[int, int]) -> int:
    if f < 2:
        return f
    cached = memo.get(f)
    if cached is not None:
        return cached
    v = m._var[f]
    result = m._mk(
        var_map.get(v, v),
        _rename_monotone(m, m._lo[f], var_map, memo),
        _rename_monotone(m, m._hi[f], var_map, memo),
    )
    memo[f] = result
    return result

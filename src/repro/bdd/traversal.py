"""Structural traversals: support, sizes, evaluation, SAT counting/models."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import BDDError


def support(m, f: int) -> List[int]:
    """Variables in the support of ``f``, sorted by current level."""
    seen = set()
    variables = set()
    stack = [f]
    var_, lo_, hi_ = m._var, m._lo, m._hi
    while stack:
        n = stack.pop()
        if n < 2 or n in seen:
            continue
        seen.add(n)
        variables.add(var_[n])
        stack.append(lo_[n])
        stack.append(hi_[n])
    lvl = m._var2level
    return sorted(variables, key=lvl.__getitem__)


def dag_size(m, f: int) -> int:
    """Number of distinct nodes (including terminals) rooted at ``f``."""
    return shared_size(m, [f])


def shared_size(m, nodes: Iterable[int]) -> int:
    """Node count of the shared DAG of all ``nodes`` (incl. terminals).

    This is the metric the paper reports for Boolean functional vectors in
    Table 3: "the shared size of all the components".
    """
    seen = set()
    stack = list(nodes)
    var_, lo_, hi_ = m._var, m._lo, m._hi
    count = 0
    terminals = set()
    while stack:
        n = stack.pop()
        if n < 2:
            terminals.add(n)
            continue
        if n in seen:
            continue
        seen.add(n)
        count += 1
        stack.append(lo_[n])
        stack.append(hi_[n])
    return count + len(terminals)


def evaluate(m, f: int, assignment: Dict[int, bool]) -> bool:
    """Evaluate ``f`` under ``assignment`` (must cover the path taken)."""
    var_, lo_, hi_ = m._var, m._lo, m._hi
    n = f
    while n > 1:
        v = var_[n]
        try:
            value = assignment[v]
        except KeyError:
            raise BDDError(
                "assignment missing variable %r" % m._names[v]
            ) from None
        n = hi_[n] if value else lo_[n]
    return bool(n)


def sat_count(m, f: int, over: Optional[Iterable[int]] = None) -> int:
    """Number of satisfying assignments of ``f`` over a variable set.

    ``over`` defaults to all declared variables; it must be a superset of
    ``support(f)``.  Counting is exact (Python big integers).
    """
    if over is None:
        variables = list(range(m.num_vars))
    else:
        variables = sorted(set(over), key=m._var2level.__getitem__)
    if f == 0:
        return 0
    missing = set(support(m, f)) - set(variables)
    if missing:
        raise BDDError(
            "sat_count variable set misses support vars: %s"
            % [m._names[v] for v in sorted(missing)]
        )
    rank = {v: i for i, v in enumerate(variables)}
    total = len(variables)
    # Iterative post-order over the DAG: each node's count covers the
    # counted variables at ranks >= rank(var(node)).
    var_, lo_, hi_ = m._var, m._lo, m._hi
    counts: Dict[int, int] = {0: 0, 1: 1}
    stack = [f]
    while stack:
        n = stack[-1]
        if n in counts:
            stack.pop()
            continue
        lo, hi = lo_[n], hi_[n]
        clo = counts.get(lo)
        chi = counts.get(hi)
        if clo is None or chi is None:
            if clo is None:
                stack.append(lo)
            if chi is None:
                stack.append(hi)
            continue
        r = rank[var_[n]]
        lo_rank = rank[var_[lo]] if lo > 1 else total
        hi_rank = rank[var_[hi]] if hi > 1 else total
        counts[n] = (clo << (lo_rank - r - 1)) + (chi << (hi_rank - r - 1))
        stack.pop()
    top_rank = rank[var_[f]] if f > 1 else total
    return counts[f] << top_rank


def pick_model(m, f: int, care_vars: List[int]) -> Optional[Dict[str, bool]]:
    """One satisfying assignment as ``{name: value}``, or ``None``.

    The assignment always includes every variable in ``care_vars`` (filled
    with ``False`` when irrelevant) plus the variables on the chosen path.
    """
    if f == 0:
        return None
    model: Dict[str, bool] = {m._names[v]: False for v in care_vars}
    var_, lo_, hi_ = m._var, m._lo, m._hi
    n = f
    while n > 1:
        v = var_[n]
        if lo_[n] != 0:
            model[m._names[v]] = False
            n = lo_[n]
        else:
            model[m._names[v]] = True
            n = hi_[n]
    return model


def iter_models(
    m, f: int, care_vars: List[int]
) -> Iterator[Dict[str, bool]]:
    """Iterate all satisfying assignments, complete over the care set.

    Variables outside ``support(f) | care_vars`` are left implicit; free
    care variables are expanded to both values, so the iterator yields
    exactly ``sat_count`` models over the union of support and care set.
    """
    variables = sorted(
        set(support(m, f)) | set(care_vars), key=m._var2level.__getitem__
    )
    names = [m._names[v] for v in variables]
    nvars = len(variables)
    var_, lo_, hi_ = m._var, m._lo, m._hi
    # Iterative backtracking (no recursion, so model width is unbounded).
    # Frame = [node, index, state]; state 0 = descend lo, 1 = descend hi,
    # 2 = exhausted.  ``values[:index]`` is the assignment prefix.
    values: List[bool] = []
    frames = [[f, 0, 0]]
    while frames:
        frame = frames[-1]
        node, index, state = frame
        if node == 0 or state == 2:
            frames.pop()
            del values[index:]
            continue
        if index == nvars:
            yield dict(zip(names, values))
            frames.pop()
            continue
        v = variables[index]
        if node > 1 and var_[node] == v:
            lo, hi = lo_[node], hi_[node]
        else:
            lo = hi = node
        del values[index:]
        if state == 0:
            frame[2] = 1
            values.append(False)
            frames.append([lo, index + 1, 0])
        else:
            frame[2] = 2
            values.append(True)
            frames.append([hi, index + 1, 0])

"""Structural traversals: support, sizes, evaluation, SAT counting/models."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import BDDError


def support(m, f: int) -> List[int]:
    """Variables in the support of ``f``, sorted by current level."""
    seen = set()
    variables = set()
    stack = [f]
    var_, lo_, hi_ = m._var, m._lo, m._hi
    while stack:
        n = stack.pop()
        if n < 2 or n in seen:
            continue
        seen.add(n)
        variables.add(var_[n])
        stack.append(lo_[n])
        stack.append(hi_[n])
    lvl = m._var2level
    return sorted(variables, key=lvl.__getitem__)


def dag_size(m, f: int) -> int:
    """Number of distinct nodes (including terminals) rooted at ``f``."""
    return shared_size(m, [f])


def shared_size(m, nodes: Iterable[int]) -> int:
    """Node count of the shared DAG of all ``nodes`` (incl. terminals).

    This is the metric the paper reports for Boolean functional vectors in
    Table 3: "the shared size of all the components".
    """
    seen = set()
    stack = list(nodes)
    var_, lo_, hi_ = m._var, m._lo, m._hi
    count = 0
    terminals = set()
    while stack:
        n = stack.pop()
        if n < 2:
            terminals.add(n)
            continue
        if n in seen:
            continue
        seen.add(n)
        count += 1
        stack.append(lo_[n])
        stack.append(hi_[n])
    return count + len(terminals)


def evaluate(m, f: int, assignment: Dict[int, bool]) -> bool:
    """Evaluate ``f`` under ``assignment`` (must cover the path taken)."""
    var_, lo_, hi_ = m._var, m._lo, m._hi
    n = f
    while n > 1:
        v = var_[n]
        try:
            value = assignment[v]
        except KeyError:
            raise BDDError(
                "assignment missing variable %r" % m._names[v]
            ) from None
        n = hi_[n] if value else lo_[n]
    return bool(n)


def sat_count(m, f: int, over: Optional[Iterable[int]] = None) -> int:
    """Number of satisfying assignments of ``f`` over a variable set.

    ``over`` defaults to all declared variables; it must be a superset of
    ``support(f)``.  Counting is exact (Python big integers).
    """
    if over is None:
        variables = list(range(m.num_vars))
    else:
        variables = sorted(set(over), key=m._var2level.__getitem__)
    if f == 0:
        return 0
    missing = set(support(m, f)) - set(variables)
    if missing:
        raise BDDError(
            "sat_count variable set misses support vars: %s"
            % [m._names[v] for v in sorted(missing)]
        )
    rank = {v: i for i, v in enumerate(variables)}
    total = len(variables)
    cache: Dict[int, int] = {}
    count = _sat_count(m, f, rank, total, cache)
    top_rank = rank[m._var[f]] if f > 1 else total
    return count << top_rank


def _sat_count(
    m, f: int, rank: Dict[int, int], total: int, cache: Dict[int, int]
) -> int:
    """Count models over the counted variables at ranks >= rank(var(f))."""
    if f == 0:
        return 0
    if f == 1:
        return 1
    cached = cache.get(f)
    if cached is not None:
        return cached
    r = rank[m._var[f]]
    lo, hi = m._lo[f], m._hi[f]
    lo_rank = rank[m._var[lo]] if lo > 1 else total
    hi_rank = rank[m._var[hi]] if hi > 1 else total
    count = _sat_count(m, lo, rank, total, cache) << (lo_rank - r - 1)
    count += _sat_count(m, hi, rank, total, cache) << (hi_rank - r - 1)
    cache[f] = count
    return count


def pick_model(m, f: int, care_vars: List[int]) -> Optional[Dict[str, bool]]:
    """One satisfying assignment as ``{name: value}``, or ``None``.

    The assignment always includes every variable in ``care_vars`` (filled
    with ``False`` when irrelevant) plus the variables on the chosen path.
    """
    if f == 0:
        return None
    model: Dict[str, bool] = {m._names[v]: False for v in care_vars}
    var_, lo_, hi_ = m._var, m._lo, m._hi
    n = f
    while n > 1:
        v = var_[n]
        if lo_[n] != 0:
            model[m._names[v]] = False
            n = lo_[n]
        else:
            model[m._names[v]] = True
            n = hi_[n]
    return model


def iter_models(
    m, f: int, care_vars: List[int]
) -> Iterator[Dict[str, bool]]:
    """Iterate all satisfying assignments, complete over the care set.

    Variables outside ``support(f) | care_vars`` are left implicit; free
    care variables are expanded to both values, so the iterator yields
    exactly ``sat_count`` models over the union of support and care set.
    """
    variables = sorted(
        set(support(m, f)) | set(care_vars), key=m._var2level.__getitem__
    )
    names = [m._names[v] for v in variables]

    def recurse(node: int, index: int) -> Iterator[List[bool]]:
        if node == 0:
            return
        if index == len(variables):
            yield []
            return
        v = variables[index]
        var_ = m._var
        if node > 1 and var_[node] == v:
            lo, hi = m._lo[node], m._hi[node]
        else:
            lo = hi = node
        for tail in recurse(lo, index + 1):
            yield [False] + tail
        for tail in recurse(hi, index + 1):
            yield [True] + tail

    for values in recurse(f, 0):
        yield dict(zip(names, values))

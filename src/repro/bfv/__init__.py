"""Boolean functional vectors with direct set manipulation.

The primary contribution of Goel & Bryant (DATE 2003): a canonical
vector-of-BDDs set representation with union, intersection and
quantification algorithms that never build the characteristic function,
plus the re-parameterization procedure that canonicalizes symbolic
simulation outputs, and McMillan's conjunctive decomposition as the
related constraint-view representation (Sec 2.7).
"""

from .build import constraints, from_characteristic, to_characteristic
from .conjunctive import ConjunctiveDecomposition
from .ops import consensus, intersect, is_subset, project, smooth, union
from .reorder import (
    functional_dependencies,
    greedy_component_order,
    reorder_components,
)
from .reparam import eliminate_params, reparameterize
from .vector import BFV

__all__ = [
    "BFV",
    "ConjunctiveDecomposition",
    "consensus",
    "constraints",
    "eliminate_params",
    "from_characteristic",
    "functional_dependencies",
    "greedy_component_order",
    "intersect",
    "is_subset",
    "project",
    "reorder_components",
    "reparameterize",
    "smooth",
    "to_characteristic",
    "union",
]

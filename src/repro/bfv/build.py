"""Conversions between characteristic functions and canonical BFVs.

``from_characteristic`` is the Coudert-Berthet-Madre parameterization
(paper Sec 2.1 / [6]): components are built heaviest-bit-first; bit ``i``
is *free* when, given the already-selected prefix, the set contains
extensions with both bit values, *forced* otherwise.  Greedy prefix
matching realizes the nearest-member map because the distance weights
decrease geometrically (``2^(n-i)`` strictly dominates all later bits).

``to_characteristic`` is the Sec 2.7 observation: the canonical vector
``F`` and the constraint view agree via
``chi = AND_i (v_i <-> f_i)`` — each member must be a fixed point of the
selection process.  Note we deliberately identify choice variable ``v_i``
with the ``i``-th set variable, as the paper does, making the conversion a
pure conjunction without renaming.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import BFVError
from .vector import BFV


def from_characteristic(bdd, choice_vars: Sequence[int], chi: int) -> BFV:
    """Canonical BFV of the set ``{X over choice_vars : chi(X)}``.

    ``chi`` must depend only on ``choice_vars``.  Returns the flagged
    empty BFV when ``chi`` is unsatisfiable.
    """
    choice_vars = tuple(choice_vars)
    extra = set(bdd.support(chi)) - set(choice_vars)
    if extra:
        raise BFVError(
            "characteristic function depends on non-set variables: %s"
            % sorted(bdd.var_name(v) for v in extra)
        )
    if chi == bdd.false:
        return BFV.empty(bdd, choice_vars)
    n = len(choice_vars)
    comps: List[int] = []
    remaining = chi
    for i in range(n):
        v = choice_vars[i]
        zero, one = bdd.cofactors(remaining, v)
        rest = choice_vars[i + 1:]
        can_zero = bdd.exists(rest, zero)
        can_one = bdd.exists(rest, one)
        forced_one = bdd.diff(can_one, can_zero)
        free = bdd.and_(can_one, can_zero)
        f_i = bdd.or_(forced_one, bdd.and_(free, bdd.var(v)))
        comps.append(f_i)
        # Substitute the selected bit for v_i: remaining becomes the set
        # constraint as seen through the selection made so far.
        remaining = bdd.ite(f_i, one, zero)
    if remaining != bdd.true:
        raise BFVError(
            "parameterization failed to cover the set (internal error)"
        )
    return BFV(bdd, choice_vars, comps, validate=False)


def to_characteristic(vector: BFV) -> int:
    """Characteristic function of the set over the choice variables.

    ``chi = AND_i (v_i <-> f_i)``: exactly the fixed points of the
    canonical selection map (Sec 2.7's conjunctive decomposition, with
    the conjunction carried out).  Returns FALSE for the empty set.
    """
    bdd = vector.bdd
    if vector.is_empty:
        return bdd.false
    chi = bdd.true
    # Conjoin lightest bits first: partial products then stay small for
    # typical orders (the constraint on v_i only mentions v_1 .. v_i).
    for v, f in zip(reversed(vector.choice_vars), reversed(vector.components)):
        chi = bdd.and_(chi, bdd.equiv(bdd.var(v), f))
        if chi == bdd.false:
            raise BFVError("canonical vector has an empty fixed-point set")
    return chi


def constraints(vector: BFV) -> List[int]:
    """The per-bit constraint view ``[v_i <-> f_i]`` of the vector.

    This is McMillan's conjunctive decomposition of the characteristic
    function (paper Sec 2.7): ``chi = AND_i constraints[i]`` and each
    constraint only mentions ``v_1 .. v_i``.
    """
    bdd = vector.bdd
    comps = vector._require_nonempty()
    return [
        bdd.equiv(bdd.var(v), f) for v, f in zip(vector.choice_vars, comps)
    ]

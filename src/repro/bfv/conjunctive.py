"""McMillan's canonical conjunctive decomposition (paper Sec 2.7).

McMillan (CAV'96) represents a set by a *conjunctively decomposed*
characteristic function ``chi = AND_i c_i`` where constraint ``c_i``
depends only on ``v_1 .. v_i``.  The paper's Section 2.7 observation is
that this is the constraint-view image of the canonical Boolean
functional vector: with ``f_i = f_i^1 OR (f_i^c AND v_i)``,

    ``c_i  =  (v_i <-> f_i)  =  f_i^1 v_i  OR  f_i^0 !v_i  OR  f_i^c``

so the two representations are in exact bijection and their set
algorithms "are in essence performing the same operations".

This module provides:

* :class:`ConjunctiveDecomposition` — the constraint-list representation
  with union / intersection / containment, in bijection with
  :class:`repro.bfv.vector.BFV`;
* :func:`mcmillan_from_characteristic` — McMillan's original
  construction ``c_i = constrain(EXISTS v_{i+1..n} chi, chi_{i-1})``,
  which coincides with the bijection image of the canonical BFV when the
  component order equals the BDD variable order (asserted in the tests).

The set operations here run on the constraint components directly
(extracting the forced-one / forced-zero conditions by two cofactors per
component, exactly as the BFV algorithms do) — no characteristic function
is ever conjoined.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..errors import BFVError, EmptySetError
from .vector import BFV

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bdd.manager import BDD


class ConjunctiveDecomposition:
    """A set represented as a canonical conjunction of per-bit constraints.

    ``parts[i]`` constrains bit ``i`` given the earlier bits; the set's
    characteristic function is the conjunction of all parts.  The empty
    set is flagged (``parts is None``), mirroring :class:`BFV`.
    """

    __slots__ = ("bdd", "choice_vars", "parts")

    def __init__(
        self,
        bdd: "BDD",
        choice_vars: Sequence[int],
        parts: Optional[Sequence[int]],
        validate: bool = True,
    ) -> None:
        self.bdd = bdd
        self.choice_vars: Tuple[int, ...] = tuple(choice_vars)
        if parts is None:
            self.parts: Optional[Tuple[int, ...]] = None
        else:
            if len(parts) != len(self.choice_vars):
                raise BFVError("part/choice-variable count mismatch")
            self.parts = tuple(parts)
            for node in self.parts:
                bdd.incref(node)
        if validate and self.parts is not None:
            self.check_structure()

    def __del__(self) -> None:
        if getattr(self, "parts", None) is None:
            return
        try:
            for node in self.parts:
                self.bdd.decref(node)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff this is the flagged empty set."""
        return self.parts is None

    @property
    def width(self) -> int:
        """Number of bits of the represented vectors."""
        return len(self.choice_vars)

    def check_structure(self) -> None:
        """Check triangular support and per-prefix satisfiability."""
        bdd = self.bdd
        allowed: set = set()
        for i, (v, c) in enumerate(zip(self.choice_vars, self.parts)):
            allowed.add(v)
            extra = set(bdd.support(c)) - allowed
            if extra:
                raise BFVError(
                    "constraint %d depends on non-prefix variables %s"
                    % (i, sorted(bdd.var_name(x) for x in extra))
                )
            # Canonicity requires each constraint to be satisfiable for
            # every prefix: EXISTS v_i . c_i == TRUE.
            if bdd.exists([v], c) != bdd.true:
                raise BFVError("constraint %d rules out some prefix" % i)

    # ------------------------------------------------------------------
    # Bijection with the Boolean functional vector (Sec 2.7)
    # ------------------------------------------------------------------

    @classmethod
    def from_bfv(cls, vector: BFV) -> "ConjunctiveDecomposition":
        """Constraint view of a canonical BFV: ``c_i = (v_i <-> f_i)``."""
        if vector.is_empty:
            return cls(vector.bdd, vector.choice_vars, None)
        bdd = vector.bdd
        parts = [
            bdd.equiv(bdd.var(v), f)
            for v, f in zip(vector.choice_vars, vector.components)
        ]
        return cls(bdd, vector.choice_vars, parts, validate=False)

    def to_bfv(self) -> BFV:
        """Evaluation view: ``f_i = NOT c_i|v=0  OR  (c_i|v=1 AND v_i)``."""
        if self.parts is None:
            return BFV.empty(self.bdd, self.choice_vars)
        bdd = self.bdd
        comps = []
        for v, c in zip(self.choice_vars, self.parts):
            c0, c1 = bdd.cofactors(c, v)
            comps.append(bdd.or_(bdd.not_(c0), bdd.and_(c1, bdd.var(v))))
        return BFV(bdd, self.choice_vars, comps, validate=False)

    # ------------------------------------------------------------------
    # Conversions with characteristic functions
    # ------------------------------------------------------------------

    @classmethod
    def from_characteristic(
        cls, bdd: "BDD", choice_vars: Sequence[int], chi: int
    ) -> "ConjunctiveDecomposition":
        """Canonical decomposition of ``{X : chi(X)}`` (via parameterization)."""
        from . import build as _build

        return cls.from_bfv(
            _build.from_characteristic(bdd, choice_vars, chi)
        )

    def to_characteristic(self) -> int:
        """Conjoin the parts back into one characteristic function."""
        if self.parts is None:
            return self.bdd.false
        return self.bdd.conjoin(reversed(self.parts))

    # ------------------------------------------------------------------
    # Set operations on the constraint components
    # ------------------------------------------------------------------

    def _conditions(self, index: int) -> Tuple[int, int]:
        """Forced-one / forced-zero conditions from constraint ``index``.

        ``c_i|v=0 = NOT f_i^1`` and ``c_i|v=1 = NOT f_i^0``.
        """
        if self.parts is None:
            raise EmptySetError("operation undefined on the empty set")
        bdd = self.bdd
        v = self.choice_vars[index]
        c = self.parts[index]
        c0, c1 = bdd.cofactors(c, v)
        forced_one = bdd.not_(c0)
        forced_zero = bdd.not_(c1)
        return forced_one, forced_zero

    def union(self, other: "ConjunctiveDecomposition") -> "ConjunctiveDecomposition":
        """Set union, by the exclusion-condition recurrence of Sec 2.3.

        Identical control structure to the BFV union — the paper's point
        — but produces constraint parts ``h^1 v OR h^0 !v OR h^c``
        directly from the forced conditions, without materializing the
        evaluation-view components.
        """
        self._check_space(other)
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        bdd = self.bdd
        and_, or_, not_ = bdd.and_, bdd.or_, bdd.not_
        fx = gx = bdd.false
        parts: List[int] = []
        for i, v in enumerate(self.choice_vars):
            f1, f0 = self._conditions(i)
            g1, g0 = other._conditions(i)
            h1 = or_(and_(f1, g1), or_(and_(f1, gx), and_(fx, g1)))
            h0 = or_(and_(f0, g0), or_(and_(f0, gx), and_(fx, g0)))
            v_node = bdd.var(v)
            not_v = not_(v_node)
            # c_i = h1 v OR h0 !v OR hc  ==  NOT (h1 !v OR h0 v)
            parts.append(not_(or_(and_(h1, not_v), and_(h0, v_node))))
            selected = or_(h1, and_(not_(or_(h1, h0)), v_node))
            not_sel = not_(selected)
            fx = or_(fx, or_(and_(f0, selected), and_(f1, not_sel)))
            gx = or_(gx, or_(and_(g0, selected), and_(g1, not_sel)))
        return ConjunctiveDecomposition(
            bdd, self.choice_vars, parts, validate=False
        )

    def intersect(
        self, other: "ConjunctiveDecomposition"
    ) -> "ConjunctiveDecomposition":
        """Set intersection via constraint conjunction + normalization.

        This is where the conjunctive view shines (and why McMillan's
        algorithms need fewer BDD operations when the component order
        matches the BDD order): the raw intersection is just the pairwise
        conjunction of the constraints; a backward ``forall`` sweep then
        restores canonicity by ruling out prefixes with no suffix, using
        the ``constrain`` operator to normalize each part.
        """
        self._check_space(other)
        bdd = self.bdd
        if self.is_empty or other.is_empty:
            return ConjunctiveDecomposition(bdd, self.choice_vars, None)
        raw = [
            bdd.and_(a, b) for a, b in zip(self.parts, other.parts)
        ]
        parts = _normalize_parts(bdd, self.choice_vars, raw)
        return ConjunctiveDecomposition(
            bdd, self.choice_vars, parts, validate=False
        )

    def is_subset(self, other: "ConjunctiveDecomposition") -> bool:
        """Containment via canonicity of the union."""
        if self.is_empty:
            return True
        if other.is_empty:
            return False
        return self.union(other) == other

    def contains(self, point: Sequence[bool]) -> bool:
        """Membership: does ``point`` satisfy every constraint?"""
        if self.parts is None:
            return False
        bdd = self.bdd
        assignment = {
            v: bool(b) for v, b in zip(self.choice_vars, point)
        }
        return all(bdd.evaluate(c, assignment) for c in self.parts)

    def count(self) -> int:
        """Number of members (exact)."""
        if self.parts is None:
            return 0
        return self.bdd.sat_count(self.to_characteristic(), self.choice_vars)

    def shared_size(self) -> int:
        """Shared BDD node count of all constraint parts."""
        if self.parts is None:
            return 0
        return self.bdd.shared_size(self.parts)

    # ------------------------------------------------------------------

    def _check_space(self, other: "ConjunctiveDecomposition") -> None:
        if (
            not isinstance(other, ConjunctiveDecomposition)
            or other.bdd is not self.bdd
            or other.choice_vars != self.choice_vars
        ):
            raise BFVError("operands live on different choice variables")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveDecomposition):
            return NotImplemented
        return (
            self.bdd is other.bdd
            and self.choice_vars == other.choice_vars
            and self.parts == other.parts
        )

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.choice_vars, self.parts))

    def __repr__(self) -> str:
        if self.parts is None:
            return "ConjunctiveDecomposition(empty, width=%d)" % self.width
        return "ConjunctiveDecomposition(width=%d, shared_size=%d)" % (
            self.width,
            self.shared_size(),
        )


def mcmillan_from_characteristic(
    bdd: "BDD", choice_vars: Sequence[int], chi: int
) -> ConjunctiveDecomposition:
    """McMillan's original construction of the canonical decomposition.

    ``c_i = constrain(EXISTS v_{i+1..n} chi, EXISTS v_{i..n} chi)``: the
    projection of the set onto the first ``i`` bits, normalized to the
    nearest satisfiable prefix by the generalized cofactor.  When the
    component order equals the BDD variable order this coincides with the
    constraint view of the canonical BFV (tested), illustrating the
    Sec 2.7 correspondence.
    """
    choice_vars = tuple(choice_vars)
    if chi == bdd.false:
        return ConjunctiveDecomposition(bdd, choice_vars, None)
    n = len(choice_vars)
    parts: List[int] = []
    previous = bdd.true
    for i in range(n):
        projection = bdd.exists(choice_vars[i + 1:], chi)
        part = projection if i == 0 else bdd.constrain(projection, previous)
        parts.append(part)
        previous = projection
    return ConjunctiveDecomposition(bdd, choice_vars, parts, validate=False)


def _normalize_parts(
    bdd: "BDD", choice_vars: Sequence[int], raw: Sequence[int]
) -> Optional[List[int]]:
    """Canonicalize triangular constraint parts.

    Backward sweep: ``feasible_i`` = prefixes (over ``v_1..v_i``) from
    which some suffix satisfies all later constraints.  Each part is
    strengthened by the feasibility of its own choice and then
    ``constrain``-ed to the feasible prefix region, which (with component
    order == BDD order) maps infeasible prefixes to their nearest
    feasible neighbour — recovering exactly the canonical constraints.
    Returns ``None`` when the whole set is empty.
    """
    n = len(choice_vars)
    # Backward sweep — feasible[i] (over v_1..v_{i-1}): some suffix
    # satisfies all constraints from bit i on.
    feasible = [bdd.true] * (n + 1)
    strengthened = list(raw)
    for i in range(n - 1, -1, -1):
        strengthened[i] = bdd.and_(raw[i], feasible[i + 1])
        feasible[i] = bdd.exists([choice_vars[i]], strengthened[i])
    if feasible[0] == bdd.false:
        return None
    # Forward sweep — valid prefixes must satisfy the *earlier*
    # strengthened constraints too (raw conjunctions can be spuriously
    # satisfiable on prefixes that an earlier part already rules out).
    parts: List[int] = []
    valid = bdd.true
    for i in range(n):
        part = strengthened[i]
        if valid != bdd.true:
            part = bdd.constrain(part, valid)
        parts.append(part)
        valid = bdd.and_(valid, strengthened[i])
    return parts

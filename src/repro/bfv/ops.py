"""Set operations on Boolean functional vectors (paper Sections 2.3-2.5).

The three algorithms of the paper work *directly* on the canonical vector —
no characteristic function is built, explicitly or implicitly:

* **union** (Sec 2.3) — tracks per-operand *exclusion conditions*
  ``f^x / g^x``: once a selected bit contradicts what one operand forces,
  that operand is excluded and the remaining components follow the other.
* **intersection** (Sec 2.4) — computes *elimination conditions* ``e_i``
  backwards (choices that lead to an unavoidable forced-one/forced-zero
  conflict downstream), forms an approximate vector ``K``, then performs a
  forward normalization pass substituting each choice variable by the
  actual selected bit ``h_j``.
* **cofactor / quantification** (Sec 2.5) — component-wise Shannon
  cofactors; existential quantification of a *parameter* variable is the
  union of the two cofactors.

A central design point, used heavily by re-parameterization (Sec 2.6): the
raw routines accept components that depend on arbitrary *parameter*
variables in addition to the choice variables.  All equations treat
parameters as inert — for every fixed parameter assignment the computation
is exactly the scalar algorithm — so one union call combines a whole
parameterized family of vectors point-wise.

The raw routines (``raw_*``) take explicit component lists; the public
functions wrap :class:`repro.bfv.vector.BFV` objects and handle the empty
set special cases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import BFVError
from .vector import BFV


def _conditions(bdd, f: int, v: int) -> Tuple[int, int]:
    """Forced-to-one and forced-to-zero conditions of component ``f``.

    ``f = f1 OR (fc AND v)`` implies ``f1 = f|v=0`` and
    ``f0 = NOT f|v=1``; both are free of ``v``.
    """
    r0, r1 = bdd.cofactors(f, v)
    return r0, bdd.not_(r1)


def raw_union(
    bdd,
    choice_vars: Sequence[int],
    f_comps: Sequence[int],
    g_comps: Sequence[int],
    start: int = 0,
) -> List[int]:
    """Union of two structurally valid vectors (exclusion conditions).

    ``start`` skips a common prefix: components ``< start`` must be
    identical in both operands (then their exclusion conditions provably
    stay FALSE) and are copied through — the support-based optimization
    the paper mentions for quantification scheduling.
    """
    h: List[int] = list(f_comps[:start])
    fx = bdd.false
    gx = bdd.false
    and_, or_, not_ = bdd.and_, bdd.or_, bdd.not_
    for i in range(start, len(choice_vars)):
        v = choice_vars[i]
        f1, f0 = _conditions(bdd, f_comps[i], v)
        g1, g0 = _conditions(bdd, g_comps[i], v)
        # Forced in the union iff forced in both operands, or forced in
        # the only operand still included.
        h1 = or_(and_(f1, g1), or_(and_(f1, gx), and_(fx, g1)))
        h0 = or_(and_(f0, g0), or_(and_(f0, gx), and_(fx, g0)))
        free = not_(or_(h1, h0))
        h_i = or_(h1, and_(free, bdd.var(v)))
        h.append(h_i)
        # An operand becomes excluded when the selected bit contradicts
        # the value it forces.
        not_h = not_(h_i)
        fx = or_(fx, or_(and_(f0, h_i), and_(f1, not_h)))
        gx = or_(gx, or_(and_(g0, h_i), and_(g1, not_h)))
    return h


def raw_intersect(
    bdd,
    choice_vars: Sequence[int],
    f_comps: Sequence[int],
    g_comps: Sequence[int],
) -> Optional[List[int]]:
    """Intersection of two canonical vectors (elimination conditions).

    Returns the component list, or ``None`` when the intersection is
    empty.  Operands must be parameter-free (canonical): with parameters,
    emptiness would vary per parameter point, which the BFV form cannot
    express.
    """
    n = len(choice_vars)
    and_, or_, not_ = bdd.and_, bdd.or_, bdd.not_
    f_conds = [
        _conditions(bdd, f_comps[i], choice_vars[i]) for i in range(n)
    ]
    g_conds = [
        _conditions(bdd, g_comps[i], choice_vars[i]) for i in range(n)
    ]
    # Backward pass: elim[i] = selections whose consequences conflict
    # downstream of component i, no matter how later choices are made.
    # Note one refinement over the paper's abbreviated recurrence
    # ``e_{i-1} = conflict_i OR forall v_i . e_i``: when bit ``i`` is
    # *forced* by an operand, the choice variable does not control the
    # bit, so the downstream condition must be taken at the forced value
    # instead of universally quantified (the free-choice case reduces to
    # the paper's ``forall``).
    elim = [bdd.false] * n
    carry = bdd.false
    for i in range(n - 1, -1, -1):
        elim[i] = carry
        v = choice_vars[i]
        f1, f0 = f_conds[i]
        g1, g0 = g_conds[i]
        conflict = or_(and_(f0, g1), and_(f1, g0))
        forced_one = or_(f1, g1)
        forced_zero = or_(f0, g0)
        free = not_(or_(forced_one, forced_zero))
        e_lo, e_hi = bdd.cofactors(carry, v)
        carry = or_(
            or_(conflict, and_(forced_one, e_hi)),
            or_(
                and_(forced_zero, e_lo),
                and_(free, and_(e_hi, e_lo)),
            ),
        )
    if carry == bdd.true:
        return None
    if carry != bdd.false:
        raise BFVError(
            "intersection of parameterized vectors is not supported"
        )
    # Approximation K: forced if forced in either operand, or if the
    # opposite choice leads to an unavoidable downstream conflict.
    k1 = [bdd.false] * n
    k0 = [bdd.false] * n
    for i in range(n):
        v = choice_vars[i]
        f1, f0 = f_conds[i]
        g1, g0 = g_conds[i]
        e0, e1 = bdd.cofactors(elim[i], v)
        k1[i] = or_(or_(f1, g1), e0)
        k0[i] = or_(or_(f0, g0), e1)
    # Forward pass: substitute the restricted choices for the choice
    # variables so downstream conditions see the *selected* bits.
    h: List[int] = []
    subst = {}
    for i in range(n):
        h1 = bdd.vector_compose(k1[i], subst)
        h0 = bdd.vector_compose(k0[i], subst)
        if and_(h1, h0) != bdd.false:
            raise BFVError(
                "intersection reached an inconsistent selection; "
                "operands were not canonical"
            )
        free = not_(or_(h1, h0))
        h_i = or_(h1, and_(free, bdd.var(choice_vars[i])))
        h.append(h_i)
        subst[choice_vars[i]] = h_i
    return h


def union(left: BFV, right: BFV) -> BFV:
    """Set union of two BFVs on the same choice variables (Sec 2.3)."""
    if not left.same_space(right):
        raise BFVError("union requires matching choice variables")
    if left.is_empty:
        return right
    if right.is_empty:
        return left
    comps = raw_union(
        left.bdd, left.choice_vars, left.components, right.components
    )
    return BFV(left.bdd, left.choice_vars, comps, validate=False)


def intersect(left: BFV, right: BFV) -> BFV:
    """Set intersection of two BFVs (Sec 2.4)."""
    if not left.same_space(right):
        raise BFVError("intersection requires matching choice variables")
    if left.is_empty or right.is_empty:
        return BFV.empty(left.bdd, left.choice_vars)
    comps = raw_intersect(
        left.bdd, left.choice_vars, left.components, right.components
    )
    if comps is None:
        return BFV.empty(left.bdd, left.choice_vars)
    return BFV(left.bdd, left.choice_vars, comps, validate=False)


def is_subset(left: BFV, right: BFV) -> bool:
    """Containment test via canonicity: ``L ⊆ R iff L ∪ R == R``."""
    if left.is_empty:
        return True
    if right.is_empty:
        return False
    return union(left, right) == right


def vector_cofactor(vector: BFV, index: int, value: bool) -> BFV:
    """Shannon cofactor of the vector w.r.t. choice ``index`` (Sec 2.5).

    Fixes choice variable ``v_index`` to ``value`` in every component.
    The result is a structurally valid vector whose range is the set of
    members selected when that choice is fixed; it is the expansion step
    used by quantification.
    """
    bdd = vector.bdd
    comps = vector._require_nonempty()
    v = vector.choice_vars[index]
    new = [bdd.cofactor(f, v, value) for f in comps]
    return BFV(bdd, vector.choice_vars, new, validate=False)


def _aux_param(bdd) -> int:
    """A reserved parameter variable for bit-level quantification."""
    name = "__bfv_aux__"
    try:
        return bdd.var_index(name)
    except Exception:
        return bdd.add_var(name)


def _rebound(vector: BFV, index: int, aux: int) -> List[int]:
    """Components with choice ``index`` rebound to the parameter ``aux``.

    Downstream components keep following the *original* selection of bit
    ``index`` (now driven by the parameter), while the component itself
    is freed for a new role.
    """
    bdd = vector.bdd
    v = vector.choice_vars[index]
    return [bdd.rename(f, {v: aux}) for f in vector.components]


def smooth(vector: BFV, index: int) -> BFV:
    """Set-level existential quantification of bit ``index``.

    ``smooth(S, i) = { X : X[i<-0] in S  or  X[i<-1] in S }`` — the
    analogue of smoothing a characteristic function.  Implemented by
    rebinding the original choice of bit ``i`` to a parameter, freeing
    component ``i`` (it becomes an unconstrained choice), and eliminating
    the parameter by the union-of-cofactors rule.
    """
    from . import reparam as _reparam

    if vector.is_empty:
        return vector
    bdd = vector.bdd
    aux = _aux_param(bdd)
    comps = _rebound(vector, index, aux)
    comps[index] = bdd.var(vector.choice_vars[index])
    comps = _reparam.eliminate_params(bdd, vector.choice_vars, comps, [aux])
    return BFV(bdd, vector.choice_vars, comps, validate=False)


def project(vector: BFV, keep_indices) -> BFV:
    """Smooth away every bit *not* in ``keep_indices``.

    The result is the cylinder over the projection of the set onto the
    kept bits (still a set of full-width vectors; the dropped bits are
    free).  Useful for abstraction queries — "which values can the
    counter bits take, regardless of the datapath?".
    """
    keep = set(keep_indices)
    unknown = keep - set(range(vector.width))
    if unknown:
        raise BFVError("project indices out of range: %s" % sorted(unknown))
    result = vector
    for index in range(vector.width):
        if index not in keep:
            result = smooth(result, index)
            if result.is_empty:
                break
    return result


def consensus(vector: BFV, index: int) -> BFV:
    """Set-level universal quantification of bit ``index``.

    ``consensus(S, i) = { X : X[i<-0] in S  and  X[i<-1] in S }``.
    For each constant ``b``, the members with bit ``i`` equal to ``b``
    are selected by intersecting with the half-space ``x_i = b``; in the
    resulting canonical vector the bit is forced, so every later
    component is independent of its choice variable and the bit can be
    freed in place, yielding the canonical cylinder
    ``U_b = { X : X[i<-b] in S }``.  The consensus is ``U_0 ∩ U_1``.
    """
    if vector.is_empty:
        return vector
    bdd = vector.bdd
    cylinders = []
    for value in (False, True):
        half_comps = [bdd.var(v) for v in vector.choice_vars]
        half_comps[index] = bdd.true if value else bdd.false
        half = intersect(
            vector,
            BFV(bdd, vector.choice_vars, half_comps, validate=False),
        )
        if half.is_empty:
            return half
        comps = list(half.components)
        comps[index] = bdd.var(vector.choice_vars[index])
        cylinders.append(BFV(bdd, vector.choice_vars, comps, validate=False))
    return intersect(cylinders[0], cylinders[1])

"""Component reordering for Boolean functional vectors.

The paper's conclusion: "In future work, we would like to develop a
component reordering technique for components of the functional
vector."  The component order is the distance-metric weight order; a
different order yields a different (still canonical) vector for the
same set, and component sizes can differ drastically — a bit that is
functionally determined by bits *after* it in the order costs real BDD
nodes, while placing it after its supports makes its component trivial.

This module provides the baseline machinery that future work would
optimize:

* :func:`reorder_components` — re-canonicalize a vector under a new
  component order (exact; via a characteristic-function round trip,
  which is the straightforward-but-costly route the paper implies a
  direct technique should beat);
* :func:`functional_dependencies` — the components with no free choice
  anywhere, i.e. bits fully determined by earlier bits (the Hu-Dill
  [9] dependencies the representation factors out);
* :func:`greedy_component_order` — a first-fit ordering heuristic that
  repeatedly picks the component whose function is cheapest given the
  bits already placed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import BFVError
from .vector import BFV


def reorder_components(vector: BFV, new_positions: Sequence[int]) -> BFV:
    """Canonical vector of the same set under a permuted component order.

    ``new_positions`` lists current component indices in their new
    order (``new_positions[0]`` becomes the heaviest bit).  Each bit
    keeps its choice variable; only the selection priority changes.
    """
    from . import build as _build

    order = list(new_positions)
    if sorted(order) != list(range(vector.width)):
        raise BFVError("new_positions must permute the component indices")
    new_choice_vars = [vector.choice_vars[i] for i in order]
    if vector.is_empty:
        return BFV.empty(vector.bdd, new_choice_vars)
    chi = _build.to_characteristic(vector)
    return _build.from_characteristic(vector.bdd, new_choice_vars, chi)


def functional_dependencies(vector: BFV) -> List[int]:
    """Indices of components with no free choice anywhere.

    These bits are functions of the earlier bits in every member of the
    set — the functional dependencies [9] that make the BFV compact on
    datapath circuits (paper Sec 3).
    """
    if vector.is_empty:
        return []
    bdd = vector.bdd
    dependent = []
    for index in range(vector.width):
        _one, _zero, free = vector.component_conditions(index)
        if free == bdd.false:
            dependent.append(index)
    return dependent


def greedy_component_order(
    vector: BFV, candidates_per_step: Optional[int] = None
) -> List[int]:
    """A greedy component order minimizing incremental component size.

    Builds the order position by position: at each step, re-derive the
    candidate components for every unplaced bit (given the prefix
    chosen so far) and place the one with the smallest BDD.  This is
    quadratic in the width with a characteristic-function conversion
    per candidate — a baseline for the "component reordering technique"
    the paper leaves as future work, not a production algorithm.

    Returns the order as current component indices (see
    :func:`reorder_components`).
    """
    from . import build as _build

    if vector.is_empty:
        return list(range(vector.width))
    bdd = vector.bdd
    chi = _build.to_characteristic(vector)
    remaining = list(range(vector.width))
    order: List[int] = []
    # ``remaining_chi`` is chi with already-placed bits substituted by
    # their canonical component functions, mirroring from_characteristic.
    remaining_chi = chi
    placed_vars: List[int] = []
    while remaining:
        if candidates_per_step is not None:
            candidates = remaining[:candidates_per_step]
        else:
            candidates = list(remaining)
        best = None
        best_size = None
        best_component = None
        for index in candidates:
            v = vector.choice_vars[index]
            zero, one = bdd.cofactors(remaining_chi, v)
            rest = [
                vector.choice_vars[i] for i in remaining if i != index
            ]
            can_zero = bdd.exists(rest, zero)
            can_one = bdd.exists(rest, one)
            forced_one = bdd.diff(can_one, can_zero)
            free = bdd.and_(can_one, can_zero)
            component = bdd.or_(forced_one, bdd.and_(free, bdd.var(v)))
            size = bdd.dag_size(component)
            if best_size is None or size < best_size:
                best, best_size, best_component = index, size, component
        order.append(best)
        remaining.remove(best)
        v = vector.choice_vars[best]
        zero, one = bdd.cofactors(remaining_chi, v)
        remaining_chi = bdd.ite(best_component, one, zero)
        placed_vars.append(v)
    return order

"""Re-parameterization: canonicalizing raw vectors (paper Sec 2.6).

Symbolic simulation of a circuit produces next-state functions
``N_i(params)`` over the *current-state choice variables and primary
inputs* — an arbitrary vector, not in canonical form.  Canonicalization
quantifies the parameters out existentially:

* a vector with **no** dependence on its own choice variables is, for
  each fixed parameter point, the (trivially canonical) singleton of the
  point it computes;
* eliminating one parameter ``w`` replaces the family ``F(w, .)`` by the
  point-wise union ``F|w=0 ∪ F|w=1`` — computed by the exclusion-condition
  union, which keeps every intermediate canonical per remaining parameter
  point;
* when no parameter is left, the result is the canonical vector of the
  range — the image set.

The paper notes (Sec 3) that a *dynamic quantification schedule* with a
"simple support based cost heuristic" is used, computing supports "to
avoid BDD operations on vector components that do not depend on the
variable being quantified".  :func:`eliminate_params` implements exactly
that: parameters are eliminated cheapest-first, components above the
first affected one are copied through unchanged, and supports are
refreshed after every elimination.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..errors import BFVError
from . import ops as _ops
from .vector import BFV

#: Available quantification-scheduling strategies.
SCHEDULES = ("support", "size", "fixed")


def _supports(bdd, comps: Sequence[int]) -> List[Set[int]]:
    return [set(bdd.support(f)) for f in comps]


def _cost(
    bdd,
    param: int,
    supports: Sequence[Set[int]],
    comps: Sequence[int],
    schedule: str,
) -> tuple:
    """Cost of eliminating ``param`` next, lower is better.

    ``support`` counts affected components (cheap, the paper's "simple
    support based cost heuristic"); ``size`` weighs them by BDD size;
    ``fixed`` is handled by the caller (no dynamic cost).
    """
    affected = [i for i, s in enumerate(supports) if param in s]
    if schedule == "support":
        primary = len(affected)
    else:  # "size"
        primary = sum(bdd.dag_size(comps[i]) for i in affected)
    first = affected[0] if affected else len(supports)
    # Prefer later first-affected components: shorter union suffix.
    return (primary, -first)


def eliminate_params(
    bdd,
    choice_vars: Sequence[int],
    comps: Sequence[int],
    params: Sequence[int],
    schedule: str = "support",
) -> List[int]:
    """Existentially quantify every parameter out of a raw vector.

    ``comps`` must be *canonical for every fixed parameter assignment*
    — trivially true for simulation outputs, which do not mention the
    choice variables at all (each parameter point is a singleton), and
    preserved by every elimination step (the union of two per-point
    canonical vectors is per-point canonical).  Structurally valid but
    per-point non-canonical inputs are outside the contract.  Returns
    the canonical component list of the range.
    """
    if schedule not in SCHEDULES:
        raise BFVError("unknown quantification schedule %r" % schedule)
    comps = list(comps)
    pending = list(dict.fromkeys(params))
    supports = _supports(bdd, comps)
    while pending:
        if schedule == "fixed":
            param = pending.pop(0)
        else:
            param = min(
                pending,
                key=lambda w: _cost(bdd, w, supports, comps, schedule),
            )
            pending.remove(param)
        affected = [i for i, s in enumerate(supports) if param in s]
        if not affected:
            continue
        start = affected[0]
        pairs = [bdd.cofactors(f, param) for f in comps]
        lo = [p[0] for p in pairs]
        hi = [p[1] for p in pairs]
        comps = _ops.raw_union(bdd, choice_vars, lo, hi, start=start)
        for i in range(start, len(comps)):
            supports[i] = set(bdd.support(comps[i]))
    return comps


def reparameterize(
    bdd,
    choice_vars: Sequence[int],
    raw_components: Sequence[int],
    params: Sequence[int],
    schedule: str = "support",
) -> BFV:
    """Canonical BFV of the range of ``raw_components`` over ``params``.

    The main entry point for image computation: feed it the symbolic
    simulation outputs and the variables they were computed over.
    """
    leftovers = [
        v
        for i, f in enumerate(raw_components)
        for v in bdd.support(f)
        if v not in set(params) and v not in set(choice_vars[: i + 1])
    ]
    if leftovers:
        raise BFVError(
            "raw components depend on unexpected variables: %s"
            % sorted({bdd.var_name(v) for v in leftovers})
        )
    comps = eliminate_params(bdd, choice_vars, raw_components, params, schedule)
    return BFV(bdd, choice_vars, comps, validate=False)

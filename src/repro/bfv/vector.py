"""The canonical Boolean functional vector (BFV) set representation.

A :class:`BFV` represents a non-empty set ``S`` of ``n``-bit vectors as a
vector of BDDs ``F = (f_1, ..., f_n)`` over *choice variables*
``v_1, ..., v_n`` (one per component, in *component order* — bit 1 carries
the highest weight).  The represented set is the **range** of ``F``.  The
canonical form (paper Sec 2.1) additionally satisfies:

1. *triangular support*: ``f_i`` depends only on ``v_1 .. v_i``;
2. *structure*: ``f_i = f_i^1 OR (f_i^c AND v_i)`` with the forced-to-one
   condition ``f_i^1`` and free-choice condition ``f_i^c`` over
   ``v_1 .. v_{i-1}`` (hence ``f_i`` is monotone in ``v_i``);
3. *selection semantics*: members map to themselves, non-members map to
   the member nearest under ``d(X, Y) = sum_i 2^(n-i) |x_i - y_i|``.

The empty set has no such vector; it is represented by an explicit flag
(``BFV.empty(...)``), and the set algorithms special-case it.

This module holds the vector type, its invariants and point-level queries.
The set algorithms live in :mod:`repro.bfv.ops` (union, intersection,
quantification), :mod:`repro.bfv.build` (constructors and conversions) and
:mod:`repro.bfv.reparam` (canonicalization of raw simulation outputs); they
are exposed here as methods.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..errors import BFVError, EmptySetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bdd.manager import BDD


class BFV:
    """A non-empty set of bit-vectors in canonical BFV form (or the
    explicitly flagged empty set).

    Instances are immutable and pin their component nodes with external
    references for their lifetime.

    Parameters
    ----------
    bdd:
        The owning BDD manager.
    choice_vars:
        Variable indices ``(v_1, .., v_n)`` in component order (heaviest
        bit first).
    components:
        Component nodes ``(f_1, .., f_n)``, or ``None`` for the empty set.
    validate:
        When true (default), check the structural canonicity invariants.
    """

    __slots__ = ("bdd", "choice_vars", "components", "_hash")

    def __init__(
        self,
        bdd: "BDD",
        choice_vars: Sequence[int],
        components: Optional[Sequence[int]],
        validate: bool = True,
    ) -> None:
        self.bdd = bdd
        self.choice_vars: Tuple[int, ...] = tuple(choice_vars)
        if components is None:
            self.components: Optional[Tuple[int, ...]] = None
        else:
            if len(components) != len(self.choice_vars):
                raise BFVError(
                    "component/choice-variable count mismatch: %d vs %d"
                    % (len(components), len(self.choice_vars))
                )
            self.components = tuple(components)
            for node in self.components:
                bdd.incref(node)
        self._hash: Optional[int] = None
        if validate and self.components is not None:
            self.check_structure()

    def __del__(self) -> None:
        if getattr(self, "components", None) is None:
            return
        try:
            for node in self.components:
                self.bdd.decref(node)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff this is the (flagged) empty set."""
        return self.components is None

    @property
    def width(self) -> int:
        """Number of bits in the represented vectors."""
        return len(self.choice_vars)

    def _require_nonempty(self) -> Tuple[int, ...]:
        if self.components is None:
            raise EmptySetError("operation undefined on the empty set")
        return self.components

    def check_structure(self) -> None:
        """Check the canonical-form structural invariants (1) and (2).

        Raises :class:`BFVError` on violation.  The semantic nearest-map
        property (3) is established by construction and re-checked in the
        test suite via characteristic-function round-trips.
        """
        bdd = self.bdd
        comps = self._require_nonempty()
        allowed: set = set()
        for i, (v, f) in enumerate(zip(self.choice_vars, comps)):
            allowed.add(v)
            extra = set(bdd.support(f)) - allowed
            if extra:
                raise BFVError(
                    "component %d depends on non-prefix variables %s"
                    % (i, sorted(bdd.var_name(x) for x in extra))
                )
            f0, f1 = bdd.cofactors(f, v)
            if bdd.implies(f0, f1) != bdd.true:
                raise BFVError("component %d is not monotone in v_%d" % (i, i))

    # ------------------------------------------------------------------
    # Selection semantics
    # ------------------------------------------------------------------

    def select(self, choices: Sequence[bool]) -> Tuple[bool, ...]:
        """Apply the selection process to a concrete choice vector.

        Returns ``F(choices)`` — the member of the set that the choice
        vector selects.  For canonical vectors this is the ``d``-nearest
        member of the set (paper Sec 2.1).
        """
        comps = self._require_nonempty()
        if len(choices) != self.width:
            raise BFVError("expected %d choice bits" % self.width)
        bdd = self.bdd
        assignment = {v: bool(c) for v, c in zip(self.choice_vars, choices)}
        return tuple(bdd.evaluate(f, assignment) for f in comps)

    def contains(self, point: Sequence[bool]) -> bool:
        """Membership test: is ``point`` in the represented set?

        Uses the canonical fixed-point property ``X in S iff F(X) == X``.
        """
        if self.components is None:
            return False
        return self.select(point) == tuple(bool(b) for b in point)

    def enumerate(self) -> Iterator[Tuple[bool, ...]]:
        """Iterate the members of the set (ascending by weighted value).

        Walks the selection tree: at each component, branch on the
        feasible values of the bit given the prefix chosen so far.
        Enumeration cost is proportional to the number of members times
        the width — no exponential blowup over the choice space.
        """
        if self.components is None:
            return
        bdd = self.bdd
        comps = self.components
        choice_vars = self.choice_vars
        n = self.width
        if n == 0:
            yield ()
            return

        # Possible bit values given the prefix: forced-one iff f0 is
        # TRUE, forced-zero iff f1 is FALSE, free otherwise.  Appended
        # True-first so pop() explores False before True (ascending
        # weighted order).  Explicit DFS stack rather than an inner
        # recursive generator: a self-referential closure is a reference
        # cycle that keeps the vector — and its component increfs —
        # alive until the cyclic collector happens to run.
        def branch_values(index: int, assignment: Dict[int, bool]) -> List[bool]:
            f_here = bdd.cofactor_cube(comps[index], assignment)
            f0, f1 = bdd.cofactors(f_here, choice_vars[index])
            values: List[bool] = []
            if f1 != bdd.false:
                values.append(True)
            if f0 != bdd.true or f1 == bdd.false:
                values.append(False)
            return values

        assignment: Dict[int, bool] = {}
        pending: List[List[bool]] = [branch_values(0, assignment)]
        while pending:
            index = len(pending) - 1
            values = pending[-1]
            if not values:
                pending.pop()
                assignment.pop(choice_vars[index], None)
                continue
            assignment[choice_vars[index]] = values.pop()
            if index + 1 == n:
                yield tuple(assignment[v] for v in choice_vars)
            else:
                pending.append(branch_values(index + 1, assignment))

    def count(self) -> int:
        """Number of members of the set (exact)."""
        if self.components is None:
            return 0
        from . import build as _build

        chi = _build.to_characteristic(self)
        return self.bdd.sat_count(chi, self.choice_vars)

    # ------------------------------------------------------------------
    # Forced / free decomposition (paper Sec 2.2)
    # ------------------------------------------------------------------

    def component_conditions(self, index: int) -> Tuple[int, int, int]:
        """``(forced_one, forced_zero, free_choice)`` for component ``index``.

        These are the ``f_i^1`` / ``f_i^0`` / ``f_i^c`` conditions of the
        paper's ordered-selection interpretation: mutually exclusive and
        complete functions of ``v_1 .. v_{i-1}``.
        """
        comps = self._require_nonempty()
        bdd = self.bdd
        v = self.choice_vars[index]
        f = comps[index]
        f1, high = bdd.cofactors(f, v)
        f0 = bdd.not_(high)
        fc = bdd.diff(high, f1)
        return f1, f0, fc

    # ------------------------------------------------------------------
    # Equality / hashing (canonical form => structural equality)
    # ------------------------------------------------------------------

    def same_space(self, other: "BFV") -> bool:
        """True iff ``other`` lives on the same manager and choice vars."""
        return (
            isinstance(other, BFV)
            and self.bdd is other.bdd
            and self.choice_vars == other.choice_vars
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BFV):
            return NotImplemented
        if not self.same_space(other):
            return False
        return self.components == other.components

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (id(self.bdd), self.choice_vars, self.components)
            )
        return self._hash

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    def shared_size(self) -> int:
        """Shared BDD node count of all components (paper Table 3 metric)."""
        if self.components is None:
            return 0
        return self.bdd.shared_size(self.components)

    def component_sizes(self) -> List[int]:
        """Individual DAG size of each component."""
        if self.components is None:
            return []
        return [self.bdd.dag_size(f) for f in self.components]

    # ------------------------------------------------------------------
    # Set operations (implemented in sibling modules)
    # ------------------------------------------------------------------

    def union(self, other: "BFV") -> "BFV":
        """Set union via the exclusion-condition algorithm (Sec 2.3)."""
        from . import ops as _ops

        return _ops.union(self, other)

    def intersect(self, other: "BFV") -> "BFV":
        """Set intersection via elimination conditions (Sec 2.4)."""
        from . import ops as _ops

        return _ops.intersect(self, other)

    def cofactor(self, index: int, value: bool) -> "BFV":
        """Shannon cofactor of the vector w.r.t. choice ``index`` (Sec 2.5)."""
        from . import ops as _ops

        return _ops.vector_cofactor(self, index, value)

    def smooth(self, index: int) -> "BFV":
        """Set-level existential quantification of bit ``index``."""
        from . import ops as _ops

        return _ops.smooth(self, index)

    def consensus(self, index: int) -> "BFV":
        """Set-level universal quantification of bit ``index``."""
        from . import ops as _ops

        return _ops.consensus(self, index)

    def project(self, keep_indices: Iterable[int]) -> "BFV":
        """Smooth away every bit not in ``keep_indices``."""
        from . import ops as _ops

        return _ops.project(self, keep_indices)

    def is_subset(self, other: "BFV") -> bool:
        """True iff this set is contained in ``other``."""
        from . import ops as _ops

        return _ops.is_subset(self, other)

    def to_characteristic(self) -> int:
        """Characteristic function over the choice variables (Sec 2.7)."""
        from . import build as _build

        return _build.to_characteristic(self)

    # ------------------------------------------------------------------
    # Convenience constructors (delegate to build module)
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, bdd: "BDD", choice_vars: Sequence[int]) -> "BFV":
        """The empty set (special-cased; no vector exists for it)."""
        return cls(bdd, choice_vars, None)

    @classmethod
    def universe(cls, bdd: "BDD", choice_vars: Sequence[int]) -> "BFV":
        """The full space: every component is a free choice."""
        comps = [bdd.var(v) for v in choice_vars]
        return cls(bdd, choice_vars, comps, validate=False)

    @classmethod
    def point(
        cls, bdd: "BDD", choice_vars: Sequence[int], point: Sequence[bool]
    ) -> "BFV":
        """The singleton set ``{point}`` (every component forced)."""
        if len(point) != len(choice_vars):
            raise BFVError("point width mismatch")
        comps = [bdd.true if bool(b) else bdd.false for b in point]
        return cls(bdd, choice_vars, comps, validate=False)

    @classmethod
    def from_points(
        cls,
        bdd: "BDD",
        choice_vars: Sequence[int],
        points: Iterable[Sequence[bool]],
    ) -> "BFV":
        """The set of all given points (canonical union of singletons)."""
        from . import ops as _ops

        result = cls.empty(bdd, choice_vars)
        for p in points:
            result = _ops.union(result, cls.point(bdd, choice_vars, p))
        return result

    @classmethod
    def from_characteristic(
        cls, bdd: "BDD", choice_vars: Sequence[int], chi: int
    ) -> "BFV":
        """Canonical vector of the set ``{X : chi(X)}`` (Sec 2.1)."""
        from . import build as _build

        return _build.from_characteristic(bdd, choice_vars, chi)

    def __repr__(self) -> str:
        if self.components is None:
            return "BFV(empty, width=%d)" % self.width
        return "BFV(width=%d, shared_size=%d)" % (
            self.width,
            self.shared_size(),
        )

"""Sequential circuit substrate: netlists, ``.bench`` I/O, generators.

The paper evaluates on ISCAS'89 benchmarks; this package provides the
netlist model, the ``.bench`` format, parameterized circuit families
spanning the same structural regimes, and the scaled benchmark
surrogates used by the reproduction (see DESIGN.md for the substitution
rationale).
"""

from . import bench, blif, catalog, compose, generators, iscas, protocols, surrogates
from .netlist import Circuit, Gate, Latch

__all__ = [
    "Circuit",
    "Gate",
    "Latch",
    "bench",
    "blif",
    "catalog",
    "compose",
    "generators",
    "iscas",
    "protocols",
    "surrogates",
]

"""ISCAS'89 ``.bench`` netlist reader and writer.

The format used by the paper's benchmark suite::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NOT(G10)
    G14 = NAND(G11, G0)

Gate operators are case-insensitive; ``BUFF``/``BUF`` are synonyms.
Flip-flops initialize to 0, the convention of the ISCAS'89 distribution
(and of VIS when reading these files).
"""

from __future__ import annotations

import re
from typing import List

from ..errors import BenchFormatError
from .netlist import Circuit

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*)\s*\)$"
)

_OP_ALIASES = {
    "BUFF": "BUF",
    "BUF": "BUF",
    "NOT": "NOT",
    "AND": "AND",
    "OR": "OR",
    "NAND": "NAND",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
}


def loads(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a validated :class:`Circuit`."""
    circuit = Circuit(name)
    outputs: List[str] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                circuit.add_input(net)
            else:
                outputs.append(net)
            continue
        gate = _GATE_RE.match(line)
        if gate is None:
            raise BenchFormatError(
                "line %d: cannot parse %r" % (lineno, raw_line)
            )
        output, op, operand_text = gate.groups()
        operands = [
            item.strip() for item in operand_text.split(",") if item.strip()
        ]
        op = op.upper()
        if op == "DFF":
            if len(operands) != 1:
                raise BenchFormatError(
                    "line %d: DFF must have one input" % lineno
                )
            circuit.add_latch(output, operands[0], init=False)
            continue
        resolved = _OP_ALIASES.get(op)
        if resolved is None:
            raise BenchFormatError(
                "line %d: unknown operator %r" % (lineno, op)
            )
        circuit.add_gate(output, resolved, operands)
    for net in outputs:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def load(path: str, name: str = None) -> Circuit:
    """Read a ``.bench`` file from disk."""
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return loads(text, name)


def dumps(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text (round-trips with loads)."""
    lines: List[str] = ["# %s" % circuit.name]
    for net in circuit.inputs:
        lines.append("INPUT(%s)" % net)
    for net in circuit.outputs:
        lines.append("OUTPUT(%s)" % net)
    for latch in circuit.latches.values():
        lines.append("%s = DFF(%s)" % (latch.output, latch.data))
    for gate in circuit.gates.values():
        op = "BUFF" if gate.op == "BUF" else gate.op
        lines.append("%s = %s(%s)" % (gate.output, op, ", ".join(gate.inputs)))
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w") as handle:
        handle.write(dumps(circuit))

"""Berkeley Logic Interchange Format (BLIF) reader and writer.

BLIF is VIS/SIS's native netlist format and, unlike ``.bench``, can
express latch initial values — which our generator families use (LFSRs
and token rings reset to non-zero states).  The supported subset covers
what sequential benchmarks need:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end``
* ``.names`` logic nodes with single-output PLA covers (``-01`` rows)
* ``.latch <input> <output> [<type> <control>] [<init>]``

PLA covers are converted to gate trees on read (one AND per row, an OR
across rows; ``0``/``-`` literals become inverters/don't-cares) and
written back as covers computed from the gate structure, so
``loads(dumps(c))`` preserves semantics exactly (validated in tests via
explicit-state reachability).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import BenchFormatError
from .netlist import Circuit, Gate


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Strip comments, join continuation lines, keep line numbers."""
    lines: List[Tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if pending:
            line = pending + " " + line.strip()
            pending = ""
        if line.endswith("\\"):
            pending = line[:-1].strip()
            if not pending_line:
                pending_line = number
            continue
        lines.append((pending_line or number, line.strip()))
        pending_line = 0
    if pending:
        lines.append((pending_line, pending))
    return lines


def loads(text: str, name: Optional[str] = None) -> Circuit:
    """Parse BLIF text into a validated :class:`Circuit`."""
    model_name = name or "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str, bool]] = []
    covers: List[Tuple[int, List[str], str, List[str]]] = []

    lines = _logical_lines(text)
    index = 0
    while index < len(lines):
        number, line = lines[index]
        index += 1
        if not line.startswith("."):
            raise BenchFormatError(
                "line %d: expected a BLIF directive, got %r" % (number, line)
            )
        parts = line.split()
        directive = parts[0]
        if directive == ".model":
            if len(parts) > 1 and name is None:
                model_name = parts[1]
        elif directive == ".inputs":
            inputs.extend(parts[1:])
        elif directive == ".outputs":
            outputs.extend(parts[1:])
        elif directive == ".latch":
            operands = parts[1:]
            if len(operands) < 2:
                raise BenchFormatError(
                    "line %d: .latch needs input and output" % number
                )
            data, out = operands[0], operands[1]
            init = False
            if operands[-1] in ("0", "1", "2", "3"):
                # 2 = don't care, 3 = unknown: treat both as 0 like VIS
                init = operands[-1] == "1"
            latches.append((out, data, init))
        elif directive == ".names":
            operands = parts[1:]
            if not operands:
                raise BenchFormatError("line %d: .names needs a net" % number)
            *fanins, output = operands
            rows: List[str] = []
            while index < len(lines) and not lines[index][1].startswith("."):
                rows.append(lines[index][1])
                index += 1
            covers.append((number, fanins, output, rows))
        elif directive == ".end":
            break
        elif directive in (".exdc", ".subckt", ".gate", ".mlatch"):
            raise BenchFormatError(
                "line %d: unsupported BLIF construct %s" % (number, directive)
            )
        else:
            # Benign directives (.clock, .default_input_arrival, ...)
            continue

    circuit = Circuit(model_name)
    for net in inputs:
        circuit.add_input(net)
    for out, data, init in latches:
        circuit.add_latch(out, data, init)
    for number, fanins, output, rows in covers:
        _build_cover(circuit, number, fanins, output, rows)
    for net in outputs:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def _build_cover(
    circuit: Circuit,
    line: int,
    fanins: List[str],
    output: str,
    rows: List[str],
) -> None:
    """Translate a single-output PLA cover into gates."""
    if not fanins:
        # Constant node: a '1' row means constant one.
        value = any(row.strip() == "1" for row in rows)
        _emit_constant(circuit, output, value)
        return
    terms: List[str] = []
    for row_index, row in enumerate(rows):
        parts = row.split()
        if len(parts) != 2:
            raise BenchFormatError(
                "line %d: malformed cover row %r" % (line, row)
            )
        pattern, value = parts
        if value != "1":
            raise BenchFormatError(
                "line %d: only on-set (output 1) covers are supported"
                % line
            )
        if len(pattern) != len(fanins):
            raise BenchFormatError(
                "line %d: cover row %r arity mismatch" % (line, row)
            )
        literals: List[str] = []
        for net, bit in zip(fanins, pattern):
            if bit == "1":
                literals.append(net)
            elif bit == "0":
                inverted = "%s_row_inv_%s" % (output, net)
                if inverted not in circuit.gates:
                    circuit.not_(inverted, net)
                literals.append(inverted)
            elif bit != "-":
                raise BenchFormatError(
                    "line %d: bad cover literal %r" % (line, bit)
                )
        if not literals:
            # A row of all don't-cares: constant one.
            _emit_constant(circuit, output, True)
            return
        if len(literals) == 1:
            terms.append(literals[0])
        else:
            term = "%s_t%d" % (output, row_index)
            circuit.add_gate(term, "AND", literals)
            terms.append(term)
    if not terms:
        _emit_constant(circuit, output, False)
    elif len(terms) == 1:
        circuit.add_gate(output, "BUF", (terms[0],))
    else:
        circuit.add_gate(output, "OR", terms)


def _emit_constant(circuit: Circuit, output: str, value: bool) -> None:
    """Drive ``output`` with a constant built from any available net.

    BLIF has constant nodes but our gate set does not; synthesize
    ``x AND NOT x`` (or its negation) from an arbitrary existing net.
    """
    source = None
    if circuit.inputs:
        source = circuit.inputs[0]
    elif circuit.latches:
        source = next(iter(circuit.latches))
    if source is None:
        raise BenchFormatError(
            "constant node %r in a circuit with no nets" % output
        )
    inverted = output + "_const_inv"
    circuit.not_(inverted, source)
    if value:
        circuit.add_gate(output, "OR", (source, inverted))
    else:
        circuit.add_gate(output, "AND", (source, inverted))


def load(path: str, name: Optional[str] = None) -> Circuit:
    """Read a BLIF file from disk."""
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return loads(text, name)


def dumps(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF (gates become small PLA covers)."""
    lines = [".model %s" % circuit.name]
    if circuit.inputs:
        lines.append(".inputs %s" % " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append(".outputs %s" % " ".join(circuit.outputs))
    for latch in circuit.latches.values():
        lines.append(
            ".latch %s %s re clk %d"
            % (latch.data, latch.output, int(latch.init))
        )
    for gate in circuit.gates.values():
        lines.extend(_gate_cover(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _gate_cover(gate: Gate) -> List[str]:
    """PLA cover lines for one gate."""
    n = len(gate.inputs)
    header = ".names %s %s" % (" ".join(gate.inputs), gate.output)
    if gate.op == "BUF":
        return [header, "1 1"]
    if gate.op == "NOT":
        return [header, "0 1"]
    if gate.op == "AND":
        return [header, "1" * n + " 1"]
    if gate.op == "OR":
        rows = []
        for i in range(n):
            rows.append("-" * i + "1" + "-" * (n - i - 1) + " 1")
        return [header] + rows
    if gate.op == "NAND":
        rows = []
        for i in range(n):
            rows.append("-" * i + "0" + "-" * (n - i - 1) + " 1")
        return [header] + rows
    if gate.op == "NOR":
        return [header, "0" * n + " 1"]
    # XOR / XNOR: explicit minterm expansion (gates are narrow).
    rows = []
    want_odd = gate.op == "XOR"
    for mask in range(1 << n):
        ones = bin(mask).count("1")
        if (ones % 2 == 1) == want_odd:
            pattern = "".join(
                "1" if mask >> i & 1 else "0" for i in range(n)
            )
            rows.append(pattern + " 1")
    return [header] + rows


def dump(circuit: Circuit, path: str) -> None:
    """Write a circuit to a BLIF file."""
    with open(path, "w") as handle:
        handle.write(dumps(circuit))

"""Named circuit catalog: one place to resolve circuits by name.

Both the CLI and the fault-tolerant run harness (whose worker processes
re-resolve circuits on their side of the process boundary, so only a
*name* needs to cross it) share this registry.  A circuit reference is
either a built-in name from :func:`builtin_circuits` or a path to an
ISCAS'89 ``.bench`` file.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

from ..errors import CircuitError
from . import bench, generators, protocols, surrogates
from .iscas import s27
from .netlist import Circuit


def builtin_circuits() -> Dict[str, Callable[[], Circuit]]:
    """Name -> factory map of all circuits available by name."""
    catalog: Dict[str, Callable[[], Circuit]] = dict(surrogates.SUITE)
    catalog["s27"] = s27
    catalog.update(
        {
            "counter8": lambda: generators.counter(8),
            "lfsr8": lambda: generators.lfsr(8),
            "johnson8": lambda: generators.johnson(8),
            "ring8": lambda: generators.token_ring(8),
            "fifo3": lambda: generators.fifo_controller(3),
            "coupled8": lambda: generators.coupled_pairs(8),
            "arbiter5": lambda: generators.round_robin_arbiter(5),
            "traffic": generators.traffic_light,
            "msi3": lambda: protocols.msi_coherence(3),
            "handshake3": lambda: protocols.handshake(3),
        }
    )
    return catalog


def resolve(name: str) -> Circuit:
    """Find a circuit by built-in name or ``.bench`` file path.

    Raises :class:`repro.errors.CircuitError` for unknown references
    (the CLI wraps this into a friendly ``SystemExit``).
    """
    catalog = builtin_circuits()
    if name in catalog:
        return catalog[name]()
    if os.path.exists(name):
        return bench.load(name)
    raise CircuitError(
        "unknown circuit %r (not a built-in name or .bench path)" % name
    )

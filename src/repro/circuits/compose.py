"""Circuit composition: product machines and miters.

Sequential equivalence checking — a flagship application of symbolic
reachability (the paper's [6] originated there: "Verification of
Synchronous Sequential Machines Based on Symbolic Execution") — reduces
to an invariant: build the *miter* of two circuits (shared inputs,
disjoint state, XOR-compared outputs) and check that no reachable state
can raise a mismatch output.

:func:`product` builds the general shared-input product machine;
:func:`miter` adds the output comparators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CircuitError
from .netlist import Circuit


def product(
    left: Circuit,
    right: Circuit,
    name: Optional[str] = None,
) -> Tuple[Circuit, Dict[str, str], Dict[str, str]]:
    """Shared-input product machine of two circuits.

    Primary inputs are matched *by name* and shared; gate and latch
    names are prefixed (``l_`` / ``r_``) to keep the state spaces
    disjoint.  Returns the product circuit and the two net-renaming maps
    (original name -> product name).
    """
    shared = set(left.inputs) & set(right.inputs)
    if set(left.inputs) != set(right.inputs):
        raise CircuitError(
            "product requires identical input sets; differ on %s"
            % sorted(set(left.inputs) ^ set(right.inputs))
        )
    result = Circuit(name or ("%s_x_%s" % (left.name, right.name)))
    for net in left.inputs:
        result.add_input(net)

    def copy_side(circuit: Circuit, prefix: str) -> Dict[str, str]:
        mapping = {net: net for net in shared}
        for latch in circuit.latches.values():
            mapping[latch.output] = prefix + latch.output
        for gate in circuit.gates.values():
            mapping[gate.output] = prefix + gate.output
        for latch in circuit.latches.values():
            result.add_latch(
                mapping[latch.output], mapping[latch.data], latch.init
            )
        for gate in circuit.gates.values():
            result.add_gate(
                mapping[gate.output],
                gate.op,
                [mapping[i] for i in gate.inputs],
            )
        return mapping

    left_map = copy_side(left, "l_")
    right_map = copy_side(right, "r_")
    return result, left_map, right_map


def miter(
    left: Circuit, right: Circuit, name: Optional[str] = None
) -> Circuit:
    """Equivalence miter: product machine + XOR output comparators.

    The circuits must have identical input *and* output name sets.  The
    miter exposes one output per compared pair (``miter_<net>``) plus
    the aggregate ``mismatch``; the machines are sequentially equivalent
    from their reset states iff ``mismatch`` can never be raised — an
    :func:`repro.mc.check_invariant` query with
    :func:`repro.mc.output_never_high`.
    """
    if set(left.outputs) != set(right.outputs):
        raise CircuitError(
            "miter requires identical output sets; differ on %s"
            % sorted(set(left.outputs) ^ set(right.outputs))
        )
    if not left.outputs:
        raise CircuitError("miter needs at least one output to compare")
    result, left_map, right_map = product(
        left, right, name or ("miter_%s_%s" % (left.name, right.name))
    )
    comparators: List[str] = []
    for net in left.outputs:
        comparator = "miter_" + net
        result.xor(comparator, left_map[net], right_map[net])
        result.add_output(comparator)
        comparators.append(comparator)
    if len(comparators) == 1:
        result.add_gate("mismatch", "BUF", (comparators[0],))
    else:
        result.add_gate("mismatch", "OR", comparators)
    result.add_output("mismatch")
    result.validate()
    return result

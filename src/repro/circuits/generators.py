"""Parameterized sequential circuit families.

The original ISCAS'89 netlists the paper benchmarks (s1269, s1512, s3271,
s3330, s4863) are not redistributable and, at 100+ flip-flops, beyond
pure-Python BDD throughput; the reproduction instead generates circuits
spanning the same *structural regimes* that drive the paper's results:

* **datapath with functional dependencies** — shadow registers, coupled
  pairs, FIFO occupancy counters: the reachable set relates state bits
  functionally, which the BFV representation factors out (paper Sec 3)
  while the characteristic function's size depends critically on the
  variable order;
* **control-dominated logic** — irregular random-logic FSMs,
  combination locks, arbiters: compact characteristic functions but no
  exploitable bit-level decomposition;
* **closed-form families** — counters, LFSRs, Johnson/token rings —
  whose reachable-state counts are known exactly and anchor the test
  suite's ground truth.

All generators return validated :class:`repro.circuits.netlist.Circuit`
objects with deterministic structure (a seed controls the random-logic
families).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..errors import CircuitError
from .netlist import Circuit

#: Maximal-length Fibonacci LFSR tap positions (1-based, tap includes n).
MAXIMAL_TAPS: Dict[int, Sequence[int]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


def _mux(circuit: Circuit, out: str, sel: str, if1: str, if0: str) -> str:
    """2:1 multiplexer: ``out = sel ? if1 : if0``."""
    circuit.not_(out + "_ns", sel)
    circuit.and_(out + "_a", sel, if1)
    circuit.and_(out + "_b", out + "_ns", if0)
    return circuit.or_(out, out + "_a", out + "_b")


def counter(n: int, with_enable: bool = True) -> Circuit:
    """``n``-bit binary up-counter; all ``2^n`` states reachable.

    With ``with_enable`` the counter increments only when the ``en``
    input is high (otherwise it free-runs every cycle).
    """
    circuit = Circuit("counter%d" % n)
    carry = circuit.add_input("en") if with_enable else None
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    for i in range(n):
        bit = "s%d" % i
        if carry is None:  # free-running LSB: toggles every cycle
            circuit.not_("ns%d" % i, bit)
            carry = bit
        else:
            circuit.xor("ns%d" % i, bit, carry)
            if i < n - 1:
                circuit.and_("cy%d" % i, carry, bit)
                carry = "cy%d" % i
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def mod_counter(n: int, modulus: int) -> Circuit:
    """``n``-bit counter counting ``0 .. modulus-1``; ``modulus`` states."""
    if not 1 < modulus <= (1 << n):
        raise CircuitError("modulus %d does not fit %d bits" % (modulus, n))
    circuit = Circuit("mod%d_counter%d" % (modulus, n))
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    top = modulus - 1
    # wrap = (state == modulus - 1)
    literals = []
    for i in range(n):
        if top >> i & 1:
            literals.append("s%d" % i)
        else:
            circuit.not_("w%d" % i, "s%d" % i)
            literals.append("w%d" % i)
    circuit.add_gate("wrap", "AND", literals)
    circuit.not_("nwrap", "wrap")
    carry = None
    for i in range(n):
        bit = "s%d" % i
        if i == 0:
            circuit.not_("inc0", bit)
            carry = bit
        else:
            circuit.xor("inc%d" % i, bit, carry)
            if i < n - 1:
                circuit.and_("cy%d" % i, carry, bit)
                carry = "cy%d" % i
        circuit.and_("ns%d" % i, "inc%d" % i, "nwrap")
    circuit.add_output("wrap")
    circuit.validate()
    return circuit


def lfsr(n: int, taps: Optional[Sequence[int]] = None) -> Circuit:
    """Fibonacci LFSR seeded with ``100..0``; autonomous.

    With maximal taps (the default for supported widths) the reachable
    set is the full nonzero cycle: exactly ``2^n - 1`` states.
    """
    if taps is None:
        taps = MAXIMAL_TAPS.get(n)
        if taps is None:
            raise CircuitError("no default maximal taps for width %d" % n)
    circuit = Circuit("lfsr%d" % n)
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=(i == 0))
    tap_nets = ["s%d" % (t - 1) for t in taps]
    if len(tap_nets) == 1:
        circuit.add_gate("fb", "BUF", (tap_nets[0],))
    else:
        circuit.add_gate("fb", "XOR", tap_nets)
    circuit.add_gate("ns0", "BUF", ("fb",))
    for i in range(1, n):
        circuit.add_gate("ns%d" % i, "BUF", ("s%d" % (i - 1),))
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def johnson(n: int) -> Circuit:
    """Johnson (twisted-ring) counter; ``2n`` reachable states."""
    circuit = Circuit("johnson%d" % n)
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    circuit.not_("ns0", "s%d" % (n - 1))
    for i in range(1, n):
        circuit.add_gate("ns%d" % i, "BUF", ("s%d" % (i - 1),))
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def token_ring(n: int) -> Circuit:
    """One-hot token ring with a rotate enable; ``n`` reachable states.

    The classic mutual-exclusion substrate: exactly one station holds
    the token in every reachable state (the invariant-checking example).
    """
    circuit = Circuit("ring%d" % n)
    circuit.add_input("en")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=(i == 0))
    for i in range(n):
        prev = "s%d" % ((i - 1) % n)
        _mux(circuit, "ns%d" % i, "en", prev, "s%d" % i)
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def shift_register(n: int) -> Circuit:
    """Serial-in shift register; all ``2^n`` states reachable."""
    circuit = Circuit("shift%d" % n)
    circuit.add_input("d")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    circuit.add_gate("ns0", "BUF", ("d",))
    for i in range(1, n):
        circuit.add_gate("ns%d" % i, "BUF", ("s%d" % (i - 1),))
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def coupled_pairs(pairs: int) -> Circuit:
    """Register pairs that always load the same data bit.

    Both flip-flops of pair ``j`` capture input ``d<j>`` when ``en`` is
    high, so the reachable set (from the all-zero state) is exactly
    ``AND_j (a_j == b_j)`` — the paper's Section 3 example
    ``chi = (v1<->v2)(v3<->v4)(v5<->v6)``: a characteristic function that
    needs the pairs adjacent in the variable order, while the BFV
    representation is small under *any* order.
    """
    circuit = Circuit("coupled%d" % pairs)
    circuit.add_input("en")
    for j in range(pairs):
        circuit.add_input("d%d" % j)
    for j in range(pairs):
        circuit.add_latch("a%d" % j, "na%d" % j, init=False)
        circuit.add_latch("b%d" % j, "nb%d" % j, init=False)
    for j in range(pairs):
        _mux(circuit, "na%d" % j, "en", "d%d" % j, "a%d" % j)
        _mux(circuit, "nb%d" % j, "en", "d%d" % j, "b%d" % j)
    circuit.add_output("a0")
    circuit.validate()
    return circuit


def shadow_datapath(n: int, shadows: int = 2) -> Circuit:
    """Shift-register datapath with derived shadow register banks.

    Bank 0 is a serial shift register; shadow bank ``k`` registers load
    a combinational mix (XOR of adjacent bits) of bank ``k-1``'s *next*
    state, so every reachable state satisfies ``shadow = f(main)`` — the
    functional dependencies [9] that the BFV representation factors out
    automatically (paper Sec 3, the s4863 regime of Table 3).
    """
    circuit = Circuit("shadow%dx%d" % (n, shadows))
    circuit.add_input("d")
    for k in range(shadows + 1):
        for i in range(n):
            circuit.add_latch("r%d_%d" % (k, i), "nr%d_%d" % (k, i), init=False)
    # Bank 0: shift register.
    circuit.add_gate("nr0_0", "BUF", ("d",))
    for i in range(1, n):
        circuit.add_gate("nr0_%d" % i, "BUF", ("r0_%d" % (i - 1),))
    # Shadow banks: load a mix of the previous bank's next state.
    for k in range(1, shadows + 1):
        for i in range(n):
            a = "nr%d_%d" % (k - 1, i)
            b = "nr%d_%d" % (k - 1, (i + 1) % n)
            circuit.xor("nr%d_%d" % (k, i), a, b)
    circuit.add_output("r%d_%d" % (shadows, n - 1))
    circuit.validate()
    return circuit


def fifo_controller(ptr_bits: int) -> Circuit:
    """FIFO head/tail pointer + occupancy counter controller.

    ``push``/``pop`` inputs advance the tail/head pointers (mod
    ``2^ptr_bits``) and the occupancy count, guarded against overflow
    and underflow.  Reachable states satisfy
    ``tail - head == count (mod 2^ptr_bits)`` with
    ``0 <= count <= 2^ptr_bits`` — another functional-dependency regime,
    with ``2^ptr_bits * (2^ptr_bits + 1)`` reachable states.
    """
    depth = 1 << ptr_bits
    cnt_bits = ptr_bits + 1
    circuit = Circuit("fifo%d" % ptr_bits)
    push = circuit.add_input("push")
    pop = circuit.add_input("pop")
    for name, bits in (("h", ptr_bits), ("t", ptr_bits), ("c", cnt_bits)):
        for i in range(bits):
            circuit.add_latch("%s%d" % (name, i), "n%s%d" % (name, i), init=False)
    # full = (count == depth); empty = (count == 0)
    full_terms = []
    for i in range(cnt_bits):
        if depth >> i & 1:
            full_terms.append("c%d" % i)
        else:
            circuit.not_("fT%d" % i, "c%d" % i)
            full_terms.append("fT%d" % i)
    circuit.add_gate("full", "AND", full_terms)
    empty_terms = []
    for i in range(cnt_bits):
        circuit.not_("eT%d" % i, "c%d" % i)
        empty_terms.append("eT%d" % i)
    circuit.add_gate("empty", "AND", empty_terms)
    circuit.not_("nfull", "full")
    circuit.not_("nempty", "empty")
    do_push = circuit.and_("do_push", push, "nfull")
    do_pop = circuit.and_("do_pop", pop, "nempty")

    def increment(prefix: str, bits: int, enable: str) -> None:
        carry = enable
        for i in range(bits):
            bit = "%s%d" % (prefix, i)
            circuit.xor("n%s%d" % (prefix, i), bit, carry)
            if i < bits - 1:
                circuit.and_("%scy%d" % (prefix, i), carry, bit)
                carry = "%scy%d" % (prefix, i)

    increment("t", ptr_bits, do_push)
    increment("h", ptr_bits, do_pop)
    # count' = count + do_push - do_pop; when both or neither, unchanged.
    circuit.xor("delta", do_push, do_pop)
    carry = "delta"
    for i in range(cnt_bits):
        bit = "c%d" % i
        # Adding +1 (push) or -1 (pop == adding all-ones) share the same
        # sum bits; the carry chain differs: for -1, carry propagates on
        # bit == 0.
        circuit.xor("nc%d" % i, bit, carry)
        if i < cnt_bits - 1:
            circuit.not_("cnb%d" % i, bit)
            _mux(circuit, "ccy%d" % i, do_pop, "cnb%d" % i, bit)
            circuit.and_("ccy_g%d" % i, "ccy%d" % i, carry)
            carry = "ccy_g%d" % i
    circuit.add_output("full")
    circuit.add_output("empty")
    circuit.validate()
    return circuit


def round_robin_arbiter(n: int) -> Circuit:
    """Round-robin arbiter pointer; one-hot, rotates past the grantee.

    Requests ``r0..r{n-1}`` are inputs; the one-hot priority pointer
    advances to just past the granted station.  ``n`` reachable states,
    control-dominated logic (priority chains), the s1512/s3330 regime.
    """
    circuit = Circuit("arbiter%d" % n)
    for i in range(n):
        circuit.add_input("r%d" % i)
    for i in range(n):
        circuit.add_latch("p%d" % i, "np%d" % i, init=(i == 0))
    # grant_i = exists j: pointer at j and i is the first requester in
    # the cyclic order j, j+1, ..., i.
    for j in range(n):
        for k in range(n):
            i = (j + k) % n
            terms = ["p%d" % j, "r%d" % i]
            for m in range(k):
                circuit_net = "nr%d" % ((j + m) % n)
                if circuit_net not in circuit.gates:
                    circuit.not_(circuit_net, "r%d" % ((j + m) % n))
                terms.append(circuit_net)
            circuit.add_gate("g_%d_%d" % (j, i), "AND", terms)
    for i in range(n):
        circuit.add_gate(
            "grant%d" % i, "OR", ["g_%d_%d" % (j, i) for j in range(n)]
        )
    circuit.add_gate("any_grant", "OR", ["grant%d" % i for i in range(n)])
    circuit.not_("no_grant", "any_grant")
    for i in range(n):
        prev_grant = "grant%d" % ((i - 1) % n)
        circuit.and_("hold%d" % i, "no_grant", "p%d" % i)
        circuit.or_("np%d" % i, "hold%d" % i, prev_grant)
    circuit.add_output("grant0")
    circuit.validate()
    return circuit


def combination_lock(sequence: Sequence[bool]) -> Circuit:
    """FSM that advances through ``sequence`` on matching input bits.

    Binary-encoded step counter; a wrong bit resets to the start.
    Sparse, control-style transition structure; ``len(sequence) + 1``
    reachable states.
    """
    steps = len(sequence)
    bits = max(1, (steps + 1 - 1).bit_length())
    circuit = Circuit("lock%d" % steps)
    circuit.add_input("key")
    for i in range(bits):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    circuit.not_("nkey", "key")
    # match = key equals the expected bit at the current step.
    match_terms = []
    for step, expected in enumerate(sequence):
        eq_terms = []
        for i in range(bits):
            if step >> i & 1:
                eq_terms.append("s%d" % i)
            else:
                net = "sn%d" % i
                if net not in circuit.gates:
                    circuit.not_(net, "s%d" % i)
                eq_terms.append(net)
        at = circuit.add_gate("at%d" % step, "AND", eq_terms)
        want = "key" if expected else "nkey"
        match_terms.append(circuit.and_("m%d" % step, at, want))
    circuit.add_gate("advance", "OR", match_terms)
    # next = advance ? step + 1 : (at_end ? hold : 0)
    eq_terms = []
    for i in range(bits):
        if steps >> i & 1:
            eq_terms.append("s%d" % i)
        else:
            net = "sn%d" % i
            if net not in circuit.gates:
                circuit.not_(net, "s%d" % i)
            eq_terms.append(net)
    at_end = circuit.add_gate("at_end", "AND", eq_terms)
    carry = "advance"
    for i in range(bits):
        bit = "s%d" % i
        circuit.xor("inc%d" % i, bit, carry)
        if i < bits - 1:
            circuit.and_("icy%d" % i, carry, bit)
            carry = "icy%d" % i
    circuit.or_("keep", "advance", "at_end")
    for i in range(bits):
        circuit.and_("ns%d" % i, "inc%d" % i, "keep")
    circuit.add_output("at_end")
    circuit.validate()
    return circuit


def random_control(
    n: int, n_inputs: int = 2, seed: int = 0, avg_fanin: int = 3
) -> Circuit:
    """Deterministic pseudo-random control FSM.

    Each next-state function is a two-level network over a random subset
    of state bits and inputs — irregular logic with no exploitable
    bit-level structure.  The regime where the monolithic characteristic
    function is compact and the BFV decomposition has nothing to factor
    (the paper's s1512 / s3330 rows, where VIS wins).
    """
    rng = random.Random(seed)
    circuit = Circuit("rctl%d_%d" % (n, seed))
    for i in range(n_inputs):
        circuit.add_input("x%d" % i)
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    nets = ["s%d" % i for i in range(n)] + ["x%d" % i for i in range(n_inputs)]
    inverted: Dict[str, str] = {}

    def literal(net: str) -> str:
        if rng.random() < 0.5:
            return net
        if net not in inverted:
            inv = "inv_%s" % net
            circuit.not_(inv, net)
            inverted[net] = inv
        return inverted[net]

    for i in range(n):
        terms: List[str] = []
        for t in range(rng.randint(2, 3)):
            fanin = rng.randint(2, avg_fanin + 1)
            chosen = rng.sample(nets, min(fanin, len(nets)))
            term = circuit.add_gate(
                "t%d_%d" % (i, t), "AND", [literal(c) for c in chosen]
            )
            terms.append(term)
        circuit.add_gate("ns%d" % i, "XOR" if rng.random() < 0.4 else "OR", terms)
    circuit.add_output("s0")
    circuit.validate()
    return circuit


def traffic_light() -> Circuit:
    """A small traffic-light controller FSM (documentation example).

    Two one-hot-ish phase bits plus a 2-bit timer; the ``car`` sensor
    input requests the side road.
    """
    circuit = Circuit("traffic")
    circuit.add_input("car")
    # phase: 0 = main green, 1 = main yellow, 2 = side green, 3 = side yellow
    circuit.add_latch("p0", "np0", init=False)
    circuit.add_latch("p1", "np1", init=False)
    circuit.add_latch("t0", "nt0", init=False)
    circuit.add_latch("t1", "nt1", init=False)
    # timer saturating increment, reset on phase change
    circuit.and_("t_max", "t0", "t1")
    circuit.not_("nt_max", "t_max")
    circuit.not_("np0_b", "p0")
    circuit.not_("np1_b", "p1")
    # advance conditions per phase
    circuit.and_("main_green", "np0_b", "np1_b")
    circuit.and_("main_yellow", "p0", "np1_b")
    circuit.and_("side_green", "np0_b", "p1")
    circuit.and_("side_yellow", "p0", "p1")
    circuit.and_("adv_mg", "main_green", "t_maxcar")
    circuit.and_("t_maxcar", "t_max", "car")
    circuit.and_("adv_my", "main_yellow", "t_max")
    circuit.and_("adv_sg", "side_green", "t_max")
    circuit.and_("adv_sy", "side_yellow", "t_max")
    circuit.or_("advance", "adv_mg", "adv_my")
    circuit.or_("advance2", "adv_sg", "adv_sy")
    circuit.or_("adv", "advance", "advance2")
    # phase encoding increments mod 4 on advance
    circuit.xor("np0", "p0", "adv")
    circuit.and_("p_carry", "adv", "p0")
    circuit.xor("np1", "p1", "p_carry")
    # timer: reset on advance else saturating increment
    circuit.not_("nadv", "adv")
    circuit.xor("t_inc0", "t0", "nt_max")
    circuit.and_("t_cy", "nt_max", "t0")
    circuit.xor("t_inc1", "t1", "t_cy")
    circuit.and_("nt0", "t_inc0", "nadv")
    circuit.and_("nt1", "t_inc1", "nadv")
    circuit.add_output("main_green")
    circuit.add_output("side_green")
    circuit.validate()
    return circuit

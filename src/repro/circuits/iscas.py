"""Embedded ISCAS'89 netlists.

Only the tiny, universally reproduced s27 benchmark is embedded (its
netlist appears in countless papers and course notes); the larger
ISCAS'89 circuits the paper benchmarks are not redistributable and are
replaced by the surrogates in :mod:`repro.circuits.surrogates`.

The embedded netlist is validated in the test suite against the
well-known ground truth: 6 reachable states from the all-zero start.
"""

from __future__ import annotations

from . import bench
from .netlist import Circuit

S27_BENCH = """\
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G13 = NAND(G2, G12)
G9 = NOR(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = OR(G1, G7)
"""


def s27() -> Circuit:
    """The s27 benchmark circuit (3 flip-flops, 4 inputs, 10 gates)."""
    return bench.loads(S27_BENCH, "s27")

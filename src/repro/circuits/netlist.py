"""Gate-level sequential netlist model.

A :class:`Circuit` is a synchronous sequential network in the ISCAS'89
style: primary inputs, primary outputs, multi-input logic gates and
D flip-flops (latches) with an initial value.  Nets are referred to by
name; each net has exactly one driver (a primary input, a gate, or a
latch output).

The model is deliberately simple — it is the substrate the paper's
reachability experiments run on — but fully validated: structural checks
catch undriven nets, multiple drivers, and combinational cycles, and a
topological order over the combinational core is computed once and
cached for the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CircuitError

#: Supported gate operators (arbitrary fan-in except NOT/BUF).
GATE_OPS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF")

_UNARY = ("NOT", "BUF")


@dataclass(frozen=True)
class Gate:
    """A combinational gate driving net ``output``."""

    output: str
    op: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in GATE_OPS:
            raise CircuitError("unknown gate op %r" % self.op)
        if self.op in _UNARY and len(self.inputs) != 1:
            raise CircuitError("%s gate must have one input" % self.op)
        if not self.inputs:
            raise CircuitError("gate %r has no inputs" % self.output)

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Evaluate the gate on concrete input values."""
        if self.op == "AND":
            return all(values)
        if self.op == "OR":
            return any(values)
        if self.op == "NAND":
            return not all(values)
        if self.op == "NOR":
            return not any(values)
        if self.op == "XOR":
            return sum(values) % 2 == 1
        if self.op == "XNOR":
            return sum(values) % 2 == 0
        if self.op == "NOT":
            return not values[0]
        return bool(values[0])  # BUF


@dataclass(frozen=True)
class Latch:
    """A D flip-flop: ``output`` holds the state, ``data`` is next-state."""

    output: str
    data: str
    init: bool = False


class Circuit:
    """A synchronous sequential circuit.

    Build incrementally with :meth:`add_input`, :meth:`add_gate`,
    :meth:`add_latch` and :meth:`add_output`, then :meth:`validate`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.latches: Dict[str, Latch] = {}
        self._topo: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _check_new_driver(self, net: str) -> None:
        if net in self.gates or net in self.latches or net in self.inputs:
            raise CircuitError("net %r already driven" % net)

    def add_input(self, net: str) -> str:
        """Declare a primary input."""
        self._check_new_driver(net)
        self.inputs.append(net)
        self._topo = None
        return net

    def add_gate(self, output: str, op: str, inputs: Iterable[str]) -> str:
        """Add a gate driving ``output``."""
        self._check_new_driver(output)
        self.gates[output] = Gate(output, op, tuple(inputs))
        self._topo = None
        return output

    def add_latch(self, output: str, data: str, init: bool = False) -> str:
        """Add a D flip-flop whose state appears on ``output``."""
        self._check_new_driver(output)
        self.latches[output] = Latch(output, data, bool(init))
        self._topo = None
        return output

    def add_output(self, net: str) -> str:
        """Declare a primary output."""
        self.outputs.append(net)
        return net

    # Convenience single-use gate builders ------------------------------

    def and_(self, output: str, *inputs: str) -> str:
        """Add an AND gate."""
        return self.add_gate(output, "AND", inputs)

    def or_(self, output: str, *inputs: str) -> str:
        """Add an OR gate."""
        return self.add_gate(output, "OR", inputs)

    def xor(self, output: str, *inputs: str) -> str:
        """Add an XOR gate."""
        return self.add_gate(output, "XOR", inputs)

    def not_(self, output: str, input_: str) -> str:
        """Add a NOT gate."""
        return self.add_gate(output, "NOT", (input_,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def state_nets(self) -> List[str]:
        """Latch output nets, in declaration order."""
        return list(self.latches)

    @property
    def num_latches(self) -> int:
        """Number of flip-flops."""
        return len(self.latches)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self.gates)

    @property
    def initial_state(self) -> Tuple[bool, ...]:
        """Initial latch values, in declaration order."""
        return tuple(latch.init for latch in self.latches.values())

    def nets(self) -> Set[str]:
        """All driven nets."""
        driven = set(self.inputs)
        driven.update(self.gates)
        driven.update(self.latches)
        return driven

    def driver_of(self, net: str) -> str:
        """Classify the driver of ``net``: 'input', 'gate' or 'latch'."""
        if net in self.inputs:
            return "input"
        if net in self.gates:
            return "gate"
        if net in self.latches:
            return "latch"
        raise CircuitError("net %r is not driven" % net)

    # ------------------------------------------------------------------
    # Validation and topological order
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises :class:`CircuitError`.

        Verifies that every referenced net is driven and that the
        combinational core is acyclic (latch boundaries break cycles).
        """
        driven = self.nets()
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise CircuitError(
                        "gate %r reads undriven net %r" % (gate.output, net)
                    )
        for latch in self.latches.values():
            if latch.data not in driven:
                raise CircuitError(
                    "latch %r reads undriven net %r"
                    % (latch.output, latch.data)
                )
        for net in self.outputs:
            if net not in driven:
                raise CircuitError("output net %r is not driven" % net)
        self.topological_gates()  # raises on combinational cycles

    def topological_gates(self) -> List[Gate]:
        """Gates in evaluation order (inputs/latch outputs are sources)."""
        if self._topo is not None:
            return self._topo
        order: List[Gate] = []
        VISITING, DONE = 0, 1
        state: Dict[str, int] = {}
        sources = set(self.inputs) | set(self.latches)

        roots = [latch.data for latch in self.latches.values()]
        roots.extend(self.outputs)
        roots.extend(self.gates)  # include dead logic for completeness
        for root in roots:
            if root in sources or state.get(root) == DONE:
                continue
            if root not in self.gates:
                raise CircuitError("net %r is not driven" % root)
            # Iterative DFS to avoid recursion limits on deep circuits:
            # (net, next-input-index) frames.
            stack: List[Tuple[str, int]] = [(root, 0)]
            state[root] = VISITING
            while stack:
                current, index = stack.pop()
                gate = self.gates[current]
                advanced = False
                for i in range(index, len(gate.inputs)):
                    child = gate.inputs[i]
                    if child in sources or state.get(child) == DONE:
                        continue
                    if state.get(child) == VISITING:
                        raise CircuitError(
                            "combinational cycle through %r" % child
                        )
                    if child not in self.gates:
                        raise CircuitError("net %r is not driven" % child)
                    stack.append((current, i + 1))
                    stack.append((child, 0))
                    state[child] = VISITING
                    advanced = True
                    break
                if not advanced:
                    state[current] = DONE
                    order.append(gate)
        self._topo = order
        return order

    def stats(self) -> Dict[str, int]:
        """Summary statistics (inputs, outputs, latches, gates)."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "latches": self.num_latches,
            "gates": self.num_gates,
        }

    def __repr__(self) -> str:
        return "Circuit(%r, in=%d, out=%d, ff=%d, gates=%d)" % (
            self.name,
            len(self.inputs),
            len(self.outputs),
            self.num_latches,
            self.num_gates,
        )

"""Protocol-style circuit models: cache coherence and handshakes.

Classic model-checking workloads built as synchronous netlists, giving
the reachability engines (and the invariant checker) realistic
control-dominated state spaces with meaningful safety properties:

* :func:`msi_coherence` — an MSI cache-coherence protocol over a shared
  bus: per-cache 2-bit state (Invalid/Shared/Modified), requests as
  primary inputs, a fixed-priority bus grant, invalidation on bus
  writes.  Safety: at most one cache Modified, and never Modified
  alongside Shared.
* :func:`handshake` — a two-phase request/acknowledge handshake pair
  with a data-valid flag.  Safety: ack implies outstanding request.

Both models' reachable sets and invariants are validated against
explicit-state search in the tests.
"""

from __future__ import annotations

from .netlist import Circuit

#: MSI state encoding: (bit1, bit0) — I=00, S=01, M=10.
MSI_INVALID = (False, False)
MSI_SHARED = (False, True)
MSI_MODIFIED = (True, False)


def msi_coherence(caches: int) -> Circuit:
    """MSI protocol with ``caches`` agents on a fixed-priority bus.

    Inputs per cache ``i``: ``rd<i>`` (wants to read), ``wr<i>`` (wants
    to write).  One bus transaction per cycle: the lowest-indexed
    requester wins (writes beat reads at the same agent).  A granted
    write moves the winner to Modified and every other cache to
    Invalid; a granted read moves the winner to Shared and demotes a
    Modified third party to Shared (write-back).  Non-winners keep
    their state.

    State per cache: ``m<i>`` (modified bit) and ``s<i>`` (shared bit);
    ``m`` and ``s`` are never both set in reachable states.
    """
    circuit = Circuit("msi%d" % caches)
    for i in range(caches):
        circuit.add_input("rd%d" % i)
        circuit.add_input("wr%d" % i)
    for i in range(caches):
        circuit.add_latch("m%d" % i, "nm%d" % i, init=False)
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    # Request arbitration: fixed priority by index, writes > reads.
    # some_req_above_<i> = OR of requests from agents < i.
    prev_any = None
    for i in range(caches):
        req = circuit.or_("req%d" % i, "rd%d" % i, "wr%d" % i)
        if prev_any is None:
            circuit.add_gate("win%d" % i, "BUF", (req,))
            prev_any = req
        else:
            circuit.not_("nabove%d" % i, prev_any)
            circuit.and_("win%d" % i, req, "nabove%d" % i)
            prev_any = circuit.or_("any%d" % i, prev_any, req)
    # Winner action: write wins over read at the winning agent.
    for i in range(caches):
        circuit.and_("gwr%d" % i, "win%d" % i, "wr%d" % i)
        circuit.not_("nwr%d" % i, "wr%d" % i)
        circuit.and_("grd_t%d" % i, "win%d" % i, "rd%d" % i)
        circuit.and_("grd%d" % i, "grd_t%d" % i, "nwr%d" % i)
    bus_write = circuit.add_gate(
        "bus_write", "OR", ["gwr%d" % i for i in range(caches)]
    )
    bus_read = circuit.add_gate(
        "bus_read", "OR", ["grd%d" % i for i in range(caches)]
    )
    circuit.not_("nbus_write", "bus_write")
    circuit.not_("nbus_read", "bus_read")
    for i in range(caches):
        # next modified: granted write, or stay modified while no other
        # transaction disturbs us (a foreign write invalidates, a
        # foreign read demotes to shared).
        circuit.not_("nwin%d" % i, "win%d" % i)
        circuit.and_("foreign_wr%d" % i, "bus_write", "nwin%d" % i)
        circuit.and_("foreign_rd%d" % i, "bus_read", "nwin%d" % i)
        circuit.not_("nforeign_wr%d" % i, "foreign_wr%d" % i)
        circuit.not_("nforeign_rd%d" % i, "foreign_rd%d" % i)
        circuit.and_(
            "keep_m%d" % i,
            "m%d" % i,
            "nforeign_wr%d" % i,
            "nforeign_rd%d" % i,
        )
        # a granted read keeps/holds shared only while nobody writes
        circuit.and_("hold_keep%d" % i, "s%d" % i, "nforeign_wr%d" % i)
        circuit.and_("demoted%d" % i, "m%d" % i, "foreign_rd%d" % i)
        # the winner of a read that was modified stays... winner keeps
        # line: granted read -> shared.
        circuit.and_("nwin_keep%d" % i, "hold_keep%d" % i, "nwin%d" % i)
        circuit.or_(
            "nm%d" % i,
            "gwr%d" % i,
            "keep_m%d" % i,
        )
        # A granted read by a cache already in Modified is a read hit:
        # it keeps M and must not also gain S.
        circuit.not_("nm_cur%d" % i, "m%d" % i)
        circuit.and_("grd_miss%d" % i, "grd%d" % i, "nm_cur%d" % i)
        circuit.or_(
            "ns%d" % i,
            "grd_miss%d" % i,
            "nwin_keep%d" % i,
            "demoted%d" % i,
        )
    circuit.add_output("bus_write")
    circuit.add_output("bus_read")
    circuit.validate()
    return circuit


def handshake(stages: int = 1) -> Circuit:
    """Chained request/acknowledge handshakes with data-valid flags.

    Stage ``k`` raises ``ack`` one cycle after seeing ``req`` and holds
    it while the request persists; a ``valid`` bit tracks an accepted
    transfer.  Input: ``req0`` (and a ``drop`` that clears everything).
    Safety: ``ack<k>`` implies ``req<k>`` was high the cycle before —
    checked in tests via the reachable state space.
    """
    circuit = Circuit("handshake%d" % stages)
    circuit.add_input("req0")
    circuit.add_input("drop")
    circuit.not_("ndrop", "drop")
    previous_req = "req0"
    for k in range(stages):
        ack = "ack%d" % k
        valid = "valid%d" % k
        circuit.add_latch(ack, "n%s" % ack, init=False)
        circuit.add_latch(valid, "n%s" % valid, init=False)
        # ack tracks the request, one cycle delayed, unless dropped.
        circuit.and_("n%s" % ack, previous_req, "ndrop")
        # valid set when req & ack meet; cleared on drop.
        circuit.and_("meet%d" % k, previous_req, ack)
        circuit.or_("vset%d" % k, "meet%d" % k, valid)
        circuit.and_("n%s" % valid, "vset%d" % k, "ndrop")
        # next stage's request is this stage's valid flag
        previous_req = valid
    circuit.add_output("ack%d" % (stages - 1))
    circuit.add_output("valid%d" % (stages - 1))
    circuit.validate()
    return circuit

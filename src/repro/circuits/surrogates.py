"""Scaled surrogates for the paper's ISCAS'89 benchmark circuits.

The paper's Table 2 runs reachability on s1269, s1512, s3271, s3330 and
s4863 (37-132 flip-flops).  Those netlists are not redistributable and
are beyond pure-Python BDD throughput at full size, so each gets a
generated surrogate at 14-32 flip-flops engineered to the structural
regime that drives the paper's result on it:

========  ======================================  ===========================
surrogate  construction                            regime / expected behaviour
========  ======================================  ===========================
s1269s     shift register feeding a counter        mixed datapath/control;
           through an XOR mix                      both engines complete
s1512s     combination lock + random control FSM   control-dominated; compact
                                                   chi, BFV slower (paper: VIS
                                                   wins s1512)
s3271s     coupled register pairs + free counter   correlated datapath bits;
                                                   BFV factors the coupling
                                                   (paper: BFV wins s3271)
s3330s     irregular random-logic FSM              control-dominated, larger;
                                                   (paper: VIS wins s3330)
s4863s     shift datapath with two derived shadow  functional dependencies;
           register banks                          BFV much smaller than chi
                                                   (paper: BFV wins s4863,
                                                   Table 3 measures the sizes)
========  ======================================  ===========================

Every surrogate is validated against explicit-state search in the test
suite, so the symbolic results on them are ground-truth-checked.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .netlist import Circuit
from . import generators as _gen


def _merge(name: str, *parts: Circuit) -> Circuit:
    """Combine disjoint circuits into one (nets prefixed per part)."""
    merged = Circuit(name)
    for index, part in enumerate(parts):
        prefix = "u%d_" % index

        def rename(net: str) -> str:
            return prefix + net

        for net in part.inputs:
            merged.add_input(rename(net))
        for latch in part.latches.values():
            merged.add_latch(
                rename(latch.output), rename(latch.data), latch.init
            )
        for gate in part.gates.values():
            merged.add_gate(
                rename(gate.output),
                gate.op,
                [rename(i) for i in gate.inputs],
            )
        for net in part.outputs:
            merged.add_output(rename(net))
    merged.validate()
    return merged


def s1269s() -> Circuit:
    """Mixed datapath/control surrogate for s1269 (16 flip-flops).

    An 8-bit shift register whose bit-parity enables an 8-bit counter:
    the counter's reachable values depend on the shift history, giving a
    full but non-trivially-ordered reachable space.
    """
    circuit = Circuit("s1269s")
    circuit.add_input("d")
    n = 8
    for i in range(n):
        circuit.add_latch("sh%d" % i, "nsh%d" % i, init=False)
    for i in range(n):
        circuit.add_latch("ct%d" % i, "nct%d" % i, init=False)
    circuit.add_gate("nsh0", "BUF", ("d",))
    for i in range(1, n):
        circuit.add_gate("nsh%d" % i, "BUF", ("sh%d" % (i - 1),))
    circuit.add_gate("mix", "XOR", ("sh0", "sh3", "sh7"))
    carry = "mix"
    for i in range(n):
        bit = "ct%d" % i
        circuit.xor("nct%d" % i, bit, carry)
        if i < n - 1:
            circuit.and_("ccy%d" % i, carry, bit)
            carry = "ccy%d" % i
    circuit.add_output("ct%d" % (n - 1))
    circuit.validate()
    return circuit


def s1512s() -> Circuit:
    """Control-dominated surrogate for s1512 (14 flip-flops).

    A 12-bit irregular random-logic FSM (seed chosen for a non-trivial
    reachable set) plus a 4-step combination lock: sparse, unstructured
    transitions where the monolithic characteristic function stays
    compact (the regime where the paper's VIS baseline beats BFV on
    s1512).
    """
    return _merge(
        "s1512s",
        _gen.random_control(12, n_inputs=2, seed=32),
        _gen.combination_lock([True, False, True]),
    )


def s3271s() -> Circuit:
    """Correlated-datapath surrogate for s3271 (32 flip-flops).

    Fourteen coupled register pairs (reachable set
    ``AND_j (a_j == b_j)``) plus a free 4-bit counter.  The coupling is a
    functional dependency that the BFV representation factors out under
    *any* variable order, while the characteristic function needs the
    pairs adjacent — the regime where the paper's BFV flow completes
    s3271 and VIS times out (and measurably does here: under orders that
    separate the pairs, the chi-based engine exhausts its node budget
    while the BFV engine's representation stays a few dozen nodes).
    """
    return _merge(
        "s3271s",
        _gen.coupled_pairs(14),
        _gen.counter(4, with_enable=True),
    )


def s3330s() -> Circuit:
    """Control-dominated surrogate for s3330 (18 flip-flops).

    A larger irregular random-logic FSM (three primary inputs): dense
    unstructured reachable sets with no bit-level functional structure,
    the regime where the characteristic-function engine wins (paper:
    BFV times out on s3330).
    """
    circuit = _gen.random_control(18, n_inputs=3, seed=3330, avg_fanin=4)
    circuit.name = "s3330s"
    return circuit


def s4863s() -> Circuit:
    """Functional-dependency surrogate for s4863 (30 flip-flops).

    A 10-bit shift datapath with two derived shadow banks
    (``shadow_k = mix(shadow_{k-1})``): every reachable state determines
    20 of its 30 bits functionally from the first 10.  The BFV
    reached-set representation stays near-linear under every order while
    the characteristic function runs to thousands of nodes — the
    Table 3 measurement.
    """
    circuit = _gen.shadow_datapath(10, shadows=2)
    circuit.name = "s4863s"
    return circuit


#: The Table 2 benchmark suite, in the paper's row order.
SUITE: Dict[str, Callable[[], Circuit]] = {
    "s1269s": s1269s,
    "s1512s": s1512s,
    "s3271s": s3271s,
    "s3330s": s3330s,
    "s4863s": s4863s,
}


def build_suite() -> List[Circuit]:
    """Instantiate all Table 2 surrogate circuits."""
    return [factory() for factory in SUITE.values()]

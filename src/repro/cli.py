"""Command-line interface: reachability analysis from the shell.

``python -m repro reach <circuit> [options]`` runs one of the six
engines on a built-in circuit (surrogate suite, generator families,
s27) or on an ISCAS'89 ``.bench`` file, and prints the Table-2-style
statistics.  Long runs can be made fault-tolerant with
``--checkpoint-dir`` / ``--resume`` / ``--isolate`` / ``--fallback``
(see :mod:`repro.harness`); ``python -m repro batch`` runs a whole
circuit suite resiliently, and ``--jobs N`` spreads its cells over a
parallel worker pool (see :mod:`repro.harness.scheduler`).  ``--trace-dir`` records per-iteration
telemetry (see :mod:`repro.obs`) and ``python -m repro trace`` renders
it as size-trajectory and phase-time tables (``--follow`` tails it
live; ``python -m repro top`` shows a live per-run table from a trace
directory or a server subscription).  ``python -m repro serve``
exposes the whole stack as a fault-tolerant TCP service with a
checkpoint-resuming result cache (see :mod:`repro.serve`).
``python -m repro list`` shows the built-in circuits.
"""

from __future__ import annotations

import argparse
import os
import sys

from .circuits.catalog import builtin_circuits
from .circuits.catalog import resolve as _resolve
from .circuits.netlist import Circuit
from .order import FAMILIES, order_for
from .reach import ENGINES, ReachLimits, ReachResult, format_table2


def resolve_circuit(name: str) -> Circuit:
    """Find a circuit by built-in name or ``.bench`` file path."""
    if name in builtin_circuits() or os.path.exists(name):
        return _resolve(name)
    raise SystemExit(
        "unknown circuit %r (not a built-in name or .bench path); "
        "try `python -m repro list`" % name
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Boolean-functional-vector symbolic reachability "
            "(Goel & Bryant, DATE 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reach = sub.add_parser("reach", help="run reachability analysis")
    reach.add_argument("circuit", help="built-in name or .bench file")
    reach.add_argument(
        "--engine",
        choices=list(ENGINES) + ["all"],
        default="bfv",
        help="reachability engine (default: bfv, the paper's Figure 2)",
    )
    reach.add_argument(
        "--order",
        choices=list(FAMILIES),
        default="S1",
        help="variable-order family (default: S1)",
    )
    reach.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    reach.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )
    reach.add_argument(
        "--max-iterations", type=int, default=None, help="iteration budget"
    )
    reach.add_argument(
        "--no-count",
        action="store_true",
        help="skip the exact state count (avoids building chi)",
    )
    _add_harness_arguments(reach)

    batch = sub.add_parser(
        "batch",
        help="run a circuit suite resiliently (checkpoints + fallback)",
    )
    batch.add_argument(
        "circuits",
        nargs="*",
        default=["traffic", "s27"],
        help="built-in names or .bench files (default: traffic s27)",
    )
    batch.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="bfv",
        help="first-choice engine (default: bfv)",
    )
    batch.add_argument(
        "--order",
        choices=list(FAMILIES),
        default="S1",
        help="first-choice variable-order family (default: S1)",
    )
    batch.add_argument(
        "--max-seconds",
        type=float,
        default=300.0,
        help="per-circuit time budget, split across fallback attempts",
    )
    batch.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )
    batch.add_argument(
        "--no-count",
        action="store_true",
        help="skip the exact state count (avoids building chi)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker pool size: run up to N cells (circuit x engine x "
            "order rungs) concurrently in supervised child processes "
            "(default: 1; implies --isolate when > 1)"
        ),
    )
    batch.add_argument(
        "--total-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "global wall budget for the whole batch on top of the "
            "per-circuit --max-seconds; on expiry, running cells are "
            "cancelled and unstarted ones skipped"
        ),
    )
    batch.add_argument(
        "--total-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help=(
            "global RSS budget summed over all worker children; the "
            "largest child is cancelled until the pool fits"
        ),
    )
    batch.add_argument(
        "--report",
        metavar="FILE",
        help=(
            "write the merged deterministic batch report (JSON, input-"
            "ordered; byte-identical across --jobs levels) to FILE"
        ),
    )
    batch.add_argument(
        "--bench-baseline",
        metavar="FILE",
        default=None,
        help=(
            "BENCH_reach.json timings used to schedule longest-expected "
            "cells first (default: BENCH_reach.json at the repo root if "
            "present)"
        ),
    )
    _add_harness_arguments(batch, batch_defaults=True)

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("circuit", help="built-in name or .bench file")

    check = sub.add_parser(
        "check", help="check that an output can never be raised (AG !out)"
    )
    check.add_argument("circuit", help="built-in name or .bench file")
    check.add_argument("output", help="primary output net to check")
    check.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    check.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )
    check.add_argument(
        "--vcd", metavar="FILE", help="write the counterexample as a VCD waveform"
    )

    equiv = sub.add_parser(
        "equiv", help="check sequential equivalence of two circuits"
    )
    equiv.add_argument("left", help="built-in name or .bench file")
    equiv.add_argument("right", help="built-in name or .bench file")
    equiv.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    equiv.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )

    serve = sub.add_parser(
        "serve",
        help="run the reachability service (NDJSON over TCP)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=9559,
        help="TCP port; 0 picks an ephemeral port (default: 9559)",
    )
    serve.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help=(
            "content-addressed result + checkpoint cache; identical "
            "requests are answered from here, and timed-out requests "
            "resume from their checkpoints"
        ),
    )
    serve.add_argument(
        "--pool",
        type=int,
        default=2,
        metavar="N",
        help="supervised attempts run concurrently (default: 2)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help=(
            "requests allowed to wait beyond the pool; excess load is "
            "shed with a retry_after hint (default: 16)"
        ),
    )
    serve.add_argument(
        "--default-budget-seconds",
        type=float,
        default=60.0,
        metavar="S",
        help="engine time budget when the request names none (default: 60)",
    )
    serve.add_argument(
        "--max-budget-seconds",
        type=float,
        default=600.0,
        metavar="S",
        help="ceiling on any request's time budget (default: 600)",
    )
    serve.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-attempt RSS watchdog ceiling (default: off)",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        metavar="N",
        help="iterations between cache checkpoints (default: 1)",
    )
    serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        help=(
            "write serve telemetry + per-attempt traces here; inspect "
            "with `python -m repro trace DIR`"
        ),
    )
    serve.add_argument(
        "--journal",
        metavar="FILE",
        help="append retry/backoff records to this JSONL journal",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "also serve a Prometheus text exposition endpoint "
            "(GET /metrics) on this port; 0 picks an ephemeral port "
            "(default: off)"
        ),
    )

    trace = sub.add_parser(
        "trace",
        help="render a run's trace JSONL as iteration/phase tables",
    )
    trace.add_argument(
        "path",
        help=(
            "trace file, or a --trace-dir directory of trace-*.jsonl files"
        ),
    )
    trace.add_argument(
        "--follow",
        action="store_true",
        help=(
            "tail the trace live, printing one line per arriving "
            "record (like tail -f)"
        ),
    )
    trace.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="--follow poll interval in seconds (default: 0.5)",
    )
    trace.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="stop --follow after this long (default: until ^C)",
    )

    top = sub.add_parser(
        "top",
        help="live per-run status table (tail a trace dir, or subscribe)",
    )
    top.add_argument(
        "target",
        help=(
            "a --trace-dir directory to tail, or HOST:PORT of a running "
            "`repro serve` instance to subscribe to"
        ),
    )
    top.add_argument(
        "--key",
        default=None,
        metavar="FINGERPRINT",
        help="server mode: fingerprint to subscribe to",
    )
    top.add_argument(
        "--circuit",
        default=None,
        help="server mode: subscribe by circuit name instead of --key",
    )
    top.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="bfv",
        help="server mode: engine of the subscribed request",
    )
    top.add_argument(
        "--order",
        choices=list(FAMILIES),
        default="S1",
        help="server mode: order family of the subscribed request",
    )
    top.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="trace-dir mode poll interval in seconds (default: 0.5)",
    )
    top.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="trace-dir mode: stop after this long (default: until ^C)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append snapshots instead of repainting the screen",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific static checks (rules R001-R004; "
        "--deep adds the interprocedural R101-R204 families)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the flow-sensitive interprocedural analyzer "
        "(handle lifetimes R101-R104, concurrency/fork safety R201-R204)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings to subtract (deep mode); "
        "stale entries are reported so they can be deleted",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current deep findings to FILE as a baseline "
        "and exit 0",
    )

    sub.add_parser("list", help="list built-in circuits")
    return parser


def _add_harness_arguments(parser, batch_defaults: bool = False) -> None:
    """Fault-tolerance options shared by ``reach`` and ``batch``."""
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="snapshot engine state here every --checkpoint-interval iterations",
    )
    group.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        metavar="N",
        help="iterations between checkpoints (default: 1)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir",
    )
    group.add_argument(
        "--fallback",
        choices=["none", "auto"],
        default="auto" if batch_defaults else "none",
        help=(
            "on failure, retry with other order families, then other "
            "engines (default: %s)" % ("auto" if batch_defaults else "none")
        ),
    )
    if batch_defaults:
        group.add_argument(
            "--no-isolate",
            dest="isolate",
            action="store_false",
            help="run engines in-process instead of supervised children",
        )
        parser.set_defaults(isolate=True)
    else:
        group.add_argument(
            "--isolate",
            action="store_true",
            help=(
                "run each attempt in a supervised child process "
                "(crashes/hangs become tagged failures)"
            ),
        )
    group.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="kill an attempt whose RSS exceeds this (implies --isolate)",
    )
    group.add_argument(
        "--journal",
        metavar="FILE",
        help="append one JSONL record per attempt to FILE",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-dir",
        metavar="DIR",
        help=(
            "write per-iteration trace JSONL here (one file per "
            "engine/order/circuit); inspect with `python -m repro trace DIR`"
        ),
    )
    obs.add_argument(
        "--sanitize",
        nargs="?",
        const=1.0,
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "audit BDD/BFV invariants on a sampled fraction of "
            "iterations (bare flag: every iteration); violations abort "
            "with the failing invariant's name; the REPRO_SANITIZE env "
            "var supplies a default rate (see docs/analysis.md)"
        ),
    )


def _sanitize_rate(args: argparse.Namespace):
    """The run's sanitizer rate: ``--sanitize`` or ``REPRO_SANITIZE``."""
    if args.sanitize is not None:
        return args.sanitize
    raw = os.environ.get("REPRO_SANITIZE")
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise SystemExit(
            "unparsable REPRO_SANITIZE value %r (want a rate in (0, 1])"
            % raw
        )


def _result_line(result: ReachResult) -> str:
    """One human-readable status line for a finished attempt."""
    if result.completed:
        line = (
            "%-5s completed in %.2fs: %d iterations, "
            "peak %d live nodes"
            % (
                result.engine,
                result.seconds,
                result.iterations,
                result.peak_live_nodes,
            )
        )
        if result.reached_size is not None:
            line += ", representation %d nodes" % result.reached_size
        if result.num_states is not None:
            line += ", %d reachable states" % result.num_states
        if "resumed_from" in result.extra:
            line += " (resumed from iteration %d)" % result.extra["resumed_from"]
    else:
        line = "%-5s did not complete: %s after %.2fs" % (
            result.engine,
            result.status,
            result.seconds,
        )
        progress = result.extra.get("iteration")
        if progress:
            line += " (reached iteration %d)" % progress
    return line


def _wants_harness(args: argparse.Namespace) -> bool:
    return bool(
        args.checkpoint_dir
        or args.resume
        or args.fallback != "none"
        or args.isolate
        or args.journal
        or args.max_rss_mb is not None
    )


def cmd_reach(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    engines = list(ENGINES) if args.engine == "all" else [args.engine]
    results = []
    if _wants_harness(args):
        from .harness import RunJournal, resilient_reach

        journal = RunJournal(args.journal) if args.journal else None
        for engine_name in engines:
            outcome, attempts = resilient_reach(
                args.circuit,
                engine=engine_name,
                order=args.order,
                max_seconds=args.max_seconds,
                max_live_nodes=args.max_nodes,
                max_iterations=args.max_iterations,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_interval=args.checkpoint_interval,
                resume=args.resume,
                count_states=not args.no_count,
                fallback=args.fallback == "auto" and args.engine != "all",
                isolate=args.isolate or args.max_rss_mb is not None,
                max_rss_mb=args.max_rss_mb,
                journal=journal,
                total_seconds=(
                    args.max_seconds if args.fallback == "auto" else None
                ),
                trace_dir=args.trace_dir,
                sanitize=args.sanitize,
            )
            results.append(outcome)
            if len(attempts) > 1:
                for attempt in attempts[:-1]:
                    print(
                        "attempt %s/%s failed: %s; falling back"
                        % (attempt.engine, attempt.order, attempt.status)
                    )
            print(_result_line(outcome))
    else:
        slots = order_for(circuit, args.order)
        limits = ReachLimits(
            max_seconds=args.max_seconds,
            max_live_nodes=args.max_nodes,
            max_iterations=args.max_iterations,
        )
        for engine_name in engines:
            tracer = None
            if args.trace_dir:
                from .obs import file_tracer

                tracer = file_tracer(
                    args.trace_dir, engine_name, args.order, circuit.name
                )
            try:
                result = ENGINES[engine_name](
                    circuit,
                    slots=slots,
                    limits=limits,
                    order_name=args.order,
                    count_states=not args.no_count,
                    tracer=tracer,
                    sanitize=_sanitize_rate(args),
                )
            finally:
                if tracer is not None:
                    tracer.close()
            results.append(result)
            print(_result_line(result))
    print()
    shown = tuple(dict.fromkeys(result.engine for result in results))
    print(format_table2(results, engines=shown))
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from .harness import FallbackPolicy, run_scheduled_batch

    for name in args.circuits:
        resolve_circuit(name)  # fail fast on typos, before any long run
    policy = None if args.fallback == "auto" else FallbackPolicy(max_attempts=1)
    bench_path = args.bench_baseline
    if bench_path is None and os.path.exists("BENCH_reach.json"):
        bench_path = "BENCH_reach.json"
    report = run_scheduled_batch(
        args.circuits,
        engine=args.engine,
        order=args.order,
        jobs=args.jobs,
        max_seconds=args.max_seconds,
        max_live_nodes=args.max_nodes,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        fallback=args.fallback == "auto",
        policy=policy,
        isolate=args.isolate,
        max_rss_mb=args.max_rss_mb,
        journal=args.journal,
        count_states=not args.no_count,
        trace_dir=args.trace_dir,
        sanitize=args.sanitize,
        total_seconds=args.total_seconds,
        total_rss_mb=args.total_rss_mb,
        bench_path=bench_path,
    )
    results = []
    for job in report.jobs:
        label = "%-12s" % job.circuit
        if job.outcome is None:
            print(label, "no attempt ran (budget exhausted)")
            continue
        results.append(job.outcome)
        print(
            "%s %s (%d attempt%s)"
            % (label, _result_line(job.outcome), len(job.attempts),
               "s" if len(job.attempts) != 1 else "")
        )
    if results:
        print()
        shown = tuple(dict.fromkeys(result.engine for result in results))
        print(format_table2(results, engines=shown))
    if args.report:
        directory = os.path.dirname(os.path.abspath(args.report))
        os.makedirs(directory, exist_ok=True)
        with open(args.report, "w") as handle:
            handle.write(report.to_json())
        print("merged report written to", args.report)
    return 0 if report.failures == 0 else 1


def cmd_info(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    stats = circuit.stats()
    print("circuit:", circuit.name)
    for key in ("inputs", "outputs", "latches", "gates"):
        print("  %-8s %d" % (key, stats[key]))
    print("  state nets:", ", ".join(circuit.state_nets[:12]) + (
        " ..." if circuit.num_latches > 12 else ""))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .mc import check_invariant, output_never_high

    circuit = resolve_circuit(args.circuit)
    limits = ReachLimits(
        max_seconds=args.max_seconds, max_live_nodes=args.max_nodes
    )
    result = check_invariant(
        circuit, output_never_high(args.output), limits=limits
    )
    if not result.completed:
        print("inconclusive: budget exhausted (%s)" % result.failure)
        return 2
    if result.holds:
        print(
            "HOLDS: output %r can never be raised (proved over %d images)"
            % (args.output, result.iterations)
        )
        return 0
    trace = result.counterexample
    print(
        "VIOLATED: output %r is reachable after %d cycles"
        % (args.output, len(trace))
    )
    for cycle, step in enumerate(trace.inputs):
        values = ", ".join(
            "%s=%d" % (net, int(value)) for net, value in sorted(step.items())
        )
        print("  cycle %d: %s" % (cycle, values))
    if args.vcd:
        from .vcd import save_trace

        save_trace(circuit, trace, args.vcd)
        print("waveform written to", args.vcd)
    return 1


def cmd_equiv(args: argparse.Namespace) -> int:
    from .mc import check_equivalence

    left = resolve_circuit(args.left)
    right = resolve_circuit(args.right)
    limits = ReachLimits(
        max_seconds=args.max_seconds, max_live_nodes=args.max_nodes
    )
    result = check_equivalence(left, right, limits=limits)
    if not result.completed:
        print("inconclusive: budget exhausted (%s)" % result.failure)
        return 2
    if result.holds:
        print(
            "EQUIVALENT: %s and %s agree on every input sequence"
            % (left.name, right.name)
        )
        return 0
    print("NOT EQUIVALENT; distinguishing input sequence:")
    trace = result.counterexample
    for cycle, step in enumerate(trace.inputs):
        values = ", ".join(
            "%s=%d" % (net, int(value)) for net, value in sorted(step.items())
        )
        print("  cycle %d: %s" % (cycle, values))
    print(
        "  (after %d cycles, some output differs for a suitable input)"
        % len(trace)
    )
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .serve import AdmissionPolicy, ReachServer

    policy = AdmissionPolicy(
        max_queue=args.max_queue,
        default_budget_seconds=args.default_budget_seconds,
        max_budget_seconds=args.max_budget_seconds,
        max_rss_mb=args.max_rss_mb,
    )
    server = ReachServer(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        pool_size=args.pool,
        policy=policy,
        trace_dir=args.trace_dir,
        journal_path=args.journal,
        checkpoint_interval=args.checkpoint_interval,
        metrics_port=args.metrics_port,
    )

    async def _main() -> None:
        await server.start()
        # The resolved port matters with --port 0; tests parse this line.
        print(
            "serving on %s:%d (pid %d)"
            % (server.host, server.port, os.getpid()),
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                "metrics on http://%s:%d/metrics"
                % (server.host, server.metrics_port),
                flush=True,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs.report import render_trace_path

    if not os.path.exists(args.path):
        raise SystemExit("no such trace file or directory: %r" % args.path)
    if args.follow:
        from .obs.top import follow_trace

        try:
            follow_trace(
                args.path, poll=args.poll, max_seconds=args.max_seconds
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        return 0
    text = render_trace_path(args.path)
    if not text.strip():
        print("no trace records found in %s" % args.path)
        return 1
    print(text)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .obs import top as _top

    if os.path.exists(args.target):
        try:
            _top.run_tail_top(
                args.target,
                poll=args.poll,
                max_seconds=args.max_seconds,
                plain=args.plain,
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        return 0
    host, sep, port = args.target.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            "top target %r is neither an existing trace directory nor "
            "HOST:PORT" % args.target
        )
    request: dict = {}
    if args.key is not None:
        request["key"] = args.key
    elif args.circuit is not None:
        request.update(
            circuit=args.circuit, engine=args.engine, order=args.order
        )
    else:
        raise SystemExit("server mode needs --key or --circuit")
    try:
        _top.run_serve_top(
            host or "127.0.0.1", int(port), request, plain=args.plain
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint as _lint

    deep = bool(args.deep or args.baseline or args.write_baseline)
    if args.list_rules:
        catalog = dict(_lint.RULES)
        if deep:
            from .analysis import dataflow as _dataflow

            catalog.update(_dataflow.DEEP_RULES)
        for rule, summary in sorted(catalog.items()):
            print("%s  %s" % (rule, summary))
        return 0
    if not deep:
        findings = _lint.run_lint(tuple(args.paths))
    else:
        from .analysis import dataflow as _dataflow

        findings = _dataflow.run_deep_lint(tuple(args.paths))
        if args.write_baseline:
            _dataflow.write_baseline(
                findings, args.write_baseline, root=os.getcwd()
            )
            print(
                "wrote %d suppression%s to %s"
                % (
                    len(findings),
                    "s" if len(findings) != 1 else "",
                    args.write_baseline,
                )
            )
            return 0
        if args.baseline:
            entries = _dataflow.load_baseline(args.baseline)
            findings, stale = _dataflow.apply_baseline(findings, entries)
            for entry in stale:
                print(
                    "stale baseline entry (fixed? delete it): "
                    "%s:%s %s" % (entry.get("path"), entry.get("line"),
                                  entry.get("rule"))
                )
            if stale and not findings:
                return 1
    for finding in findings:
        print(finding.render())
    if findings:
        print("%d finding%s" % (len(findings), "s" if len(findings) != 1 else ""))
        return 1
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("built-in circuits:")
    for name, factory in sorted(builtin_circuits().items()):
        circuit = factory()
        stats = circuit.stats()
        print(
            "  %-10s %3d FFs, %3d inputs, %4d gates"
            % (name, stats["latches"], stats["inputs"], stats["gates"])
        )
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "reach": cmd_reach,
        "batch": cmd_batch,
        "info": cmd_info,
        "check": cmd_check,
        "equiv": cmd_equiv,
        "serve": cmd_serve,
        "trace": cmd_trace,
        "top": cmd_top,
        "lint": cmd_lint,
        "list": cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

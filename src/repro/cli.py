"""Command-line interface: reachability analysis from the shell.

``python -m repro reach <circuit> [options]`` runs one of the four
engines on a built-in circuit (surrogate suite, generator families,
s27) or on an ISCAS'89 ``.bench`` file, and prints the Table-2-style
statistics.  ``python -m repro list`` shows the built-in circuits.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from .circuits import bench, generators, protocols, surrogates
from .circuits.iscas import s27
from .circuits.netlist import Circuit
from .order import FAMILIES, order_for
from .reach import ENGINES, ReachLimits, format_table2


def builtin_circuits() -> Dict[str, Callable[[], Circuit]]:
    """Name -> factory map of all circuits available by name."""
    catalog: Dict[str, Callable[[], Circuit]] = dict(surrogates.SUITE)
    catalog["s27"] = s27
    catalog.update(
        {
            "counter8": lambda: generators.counter(8),
            "lfsr8": lambda: generators.lfsr(8),
            "johnson8": lambda: generators.johnson(8),
            "ring8": lambda: generators.token_ring(8),
            "fifo3": lambda: generators.fifo_controller(3),
            "coupled8": lambda: generators.coupled_pairs(8),
            "arbiter5": lambda: generators.round_robin_arbiter(5),
            "traffic": generators.traffic_light,
            "msi3": lambda: protocols.msi_coherence(3),
            "handshake3": lambda: protocols.handshake(3),
        }
    )
    return catalog


def resolve_circuit(name: str) -> Circuit:
    """Find a circuit by built-in name or ``.bench`` file path."""
    catalog = builtin_circuits()
    if name in catalog:
        return catalog[name]()
    if os.path.exists(name):
        return bench.load(name)
    raise SystemExit(
        "unknown circuit %r (not a built-in name or .bench path); "
        "try `python -m repro list`" % name
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Boolean-functional-vector symbolic reachability "
            "(Goel & Bryant, DATE 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reach = sub.add_parser("reach", help="run reachability analysis")
    reach.add_argument("circuit", help="built-in name or .bench file")
    reach.add_argument(
        "--engine",
        choices=list(ENGINES) + ["all"],
        default="bfv",
        help="reachability engine (default: bfv, the paper's Figure 2)",
    )
    reach.add_argument(
        "--order",
        choices=list(FAMILIES),
        default="S1",
        help="variable-order family (default: S1)",
    )
    reach.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    reach.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )
    reach.add_argument(
        "--no-count",
        action="store_true",
        help="skip the exact state count (avoids building chi)",
    )

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("circuit", help="built-in name or .bench file")

    check = sub.add_parser(
        "check", help="check that an output can never be raised (AG !out)"
    )
    check.add_argument("circuit", help="built-in name or .bench file")
    check.add_argument("output", help="primary output net to check")
    check.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    check.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )
    check.add_argument(
        "--vcd", metavar="FILE", help="write the counterexample as a VCD waveform"
    )

    equiv = sub.add_parser(
        "equiv", help="check sequential equivalence of two circuits"
    )
    equiv.add_argument("left", help="built-in name or .bench file")
    equiv.add_argument("right", help="built-in name or .bench file")
    equiv.add_argument(
        "--max-seconds", type=float, default=300.0, help="time budget"
    )
    equiv.add_argument(
        "--max-nodes", type=int, default=1_000_000, help="live-node budget"
    )

    sub.add_parser("list", help="list built-in circuits")
    return parser


def cmd_reach(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    slots = order_for(circuit, args.order)
    limits = ReachLimits(
        max_seconds=args.max_seconds, max_live_nodes=args.max_nodes
    )
    engines = list(ENGINES) if args.engine == "all" else [args.engine]
    results = []
    for engine_name in engines:
        result = ENGINES[engine_name](
            circuit,
            slots=slots,
            limits=limits,
            order_name=args.order,
            count_states=not args.no_count,
        )
        results.append(result)
        if result.completed:
            line = (
                "%-5s completed in %.2fs: %d iterations, "
                "peak %d live nodes, representation %d nodes"
                % (
                    engine_name,
                    result.seconds,
                    result.iterations,
                    result.peak_live_nodes,
                    result.reached_size,
                )
            )
            if result.num_states is not None:
                line += ", %d reachable states" % result.num_states
        else:
            line = "%-5s did not complete: %s after %.2fs" % (
                engine_name,
                result.status,
                result.seconds,
            )
        print(line)
    print()
    print(format_table2(results, engines=tuple(engines)))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    stats = circuit.stats()
    print("circuit:", circuit.name)
    for key in ("inputs", "outputs", "latches", "gates"):
        print("  %-8s %d" % (key, stats[key]))
    print("  state nets:", ", ".join(circuit.state_nets[:12]) + (
        " ..." if circuit.num_latches > 12 else ""))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .mc import check_invariant, output_never_high

    circuit = resolve_circuit(args.circuit)
    limits = ReachLimits(
        max_seconds=args.max_seconds, max_live_nodes=args.max_nodes
    )
    result = check_invariant(
        circuit, output_never_high(args.output), limits=limits
    )
    if not result.completed:
        print("inconclusive: budget exhausted (%s)" % result.failure)
        return 2
    if result.holds:
        print(
            "HOLDS: output %r can never be raised (proved over %d images)"
            % (args.output, result.iterations)
        )
        return 0
    trace = result.counterexample
    print(
        "VIOLATED: output %r is reachable after %d cycles"
        % (args.output, len(trace))
    )
    for cycle, step in enumerate(trace.inputs):
        values = ", ".join(
            "%s=%d" % (net, int(value)) for net, value in sorted(step.items())
        )
        print("  cycle %d: %s" % (cycle, values))
    if args.vcd:
        from .vcd import save_trace

        save_trace(circuit, trace, args.vcd)
        print("waveform written to", args.vcd)
    return 1


def cmd_equiv(args: argparse.Namespace) -> int:
    from .mc import check_equivalence

    left = resolve_circuit(args.left)
    right = resolve_circuit(args.right)
    limits = ReachLimits(
        max_seconds=args.max_seconds, max_live_nodes=args.max_nodes
    )
    result = check_equivalence(left, right, limits=limits)
    if not result.completed:
        print("inconclusive: budget exhausted (%s)" % result.failure)
        return 2
    if result.holds:
        print(
            "EQUIVALENT: %s and %s agree on every input sequence"
            % (left.name, right.name)
        )
        return 0
    print("NOT EQUIVALENT; distinguishing input sequence:")
    trace = result.counterexample
    for cycle, step in enumerate(trace.inputs):
        values = ", ".join(
            "%s=%d" % (net, int(value)) for net, value in sorted(step.items())
        )
        print("  cycle %d: %s" % (cycle, values))
    print(
        "  (after %d cycles, some output differs for a suitable input)"
        % len(trace)
    )
    return 1


def cmd_list(_args: argparse.Namespace) -> int:
    print("built-in circuits:")
    for name, factory in sorted(builtin_circuits().items()):
        circuit = factory()
        stats = circuit.stats()
        print(
            "  %-10s %3d FFs, %3d inputs, %4d gates"
            % (name, stats["latches"], stats["inputs"], stats["gates"])
        )
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "reach": cmd_reach,
        "info": cmd_info,
        "check": cmd_check,
        "equiv": cmd_equiv,
        "list": cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

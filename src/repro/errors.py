"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish resource exhaustion
(used to model the paper's T.O./M.O. table entries) from genuine misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class BDDError(ReproError):
    """Misuse of the BDD layer (foreign nodes, unknown variables, ...)."""


class VariableError(BDDError):
    """An operation referenced a variable the manager does not know."""


class BFVError(ReproError):
    """Misuse of the Boolean functional vector layer."""


class EmptySetError(BFVError):
    """An operation that requires a non-empty set was given the empty set.

    The canonical Boolean functional vector form does not exist for the
    empty set (paper Section 2.1); it is handled as an explicit special
    case, and operations that need an actual vector raise this error.
    """


class CircuitError(ReproError):
    """Structural problem in a netlist (undriven nets, cycles, ...)."""


class BenchFormatError(CircuitError):
    """Malformed ISCAS'89 ``.bench`` input."""


class PersistError(ReproError):
    """Malformed or truncated persisted data (checkpoints, caches).

    Carries the 1-based ``line`` number of the offending record when the
    problem can be localized, so torn checkpoint files produce actionable
    diagnostics instead of a bare parse crash.
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class HarnessError(ReproError):
    """Misuse or internal failure of the fault-tolerant run harness."""


class ServeError(ReproError):
    """Protocol or configuration error in the reachability service.

    Raised by :mod:`repro.serve` for malformed requests (bad JSON,
    unknown op, invalid options) and server misconfiguration.  Request
    errors are reported back to the client as ``status="error"``
    responses; they never take the server down.
    """


class CheckpointError(HarnessError):
    """A checkpoint file is unusable (corrupt, torn, or mismatched)."""


class SanitizerError(ReproError):
    """A runtime audit found a violated invariant.

    Raised by :mod:`repro.analysis.sanitizer` when a sampled audit pass
    detects a broken structural invariant — a non-canonical unique table,
    an unsound computed-table entry, a Boolean functional vector that
    fails the Section 2.2 canonical-form conditions, or a malformed
    checkpoint/journal record.

    ``invariant`` names the violated invariant with a stable dotted
    identifier (for example ``"bdd.unique_duplicate_triple"`` or
    ``"bfv.reparam_idempotent"``) so tests and triage tooling can match
    on it without parsing the human-readable message.  ``iteration``
    records the reachability iteration during which the audit ran, when
    known.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        iteration: "int | None" = None,
    ) -> None:
        super().__init__("%s: %s" % (invariant, message))
        self.invariant = invariant
        self.iteration = iteration


class ResourceLimitError(ReproError):
    """A configured resource budget was exhausted.

    Mirrors the paper's time-out / memory-out entries in Table 2: engines
    run under a step and live-node budget, and raise this error (carrying
    ``kind`` = ``"time"`` or ``"memory"``) when the budget is exceeded.

    The optional run statistics (``elapsed`` seconds, ``iteration``,
    ``live_nodes``) record how far the run got before exhausting its
    budget; :class:`repro.reach.common.RunMonitor` fills them in so
    T.O./M.O. rows can report partial progress.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        elapsed: "float | None" = None,
        iteration: "int | None" = None,
        live_nodes: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.elapsed = elapsed
        self.iteration = iteration
        self.live_nodes = live_nodes

"""Fault-tolerant run harness for long reachability jobs.

The paper's experiments are 10-hour / 1-GB jobs where T.O. and M.O. are
first-class outcomes; this package makes such runs survivable:

* :mod:`~repro.harness.checkpoint` — per-iteration engine snapshots with
  atomic writes and torn-file-safe resume;
* :mod:`~repro.harness.supervisor` — process isolation with wall-clock
  and RSS watchdogs, converting crashes/OOM-kills/hangs into tagged
  :class:`~repro.reach.ReachResult` failures;
* :mod:`~repro.harness.policy` — a fallback ladder (other order
  families, then other engines) with budget splitting and backoff;
* :mod:`~repro.harness.journal` — an append-only JSONL log of every
  attempt;
* :mod:`~repro.harness.faults` — deterministic fault injection used by
  the test suite to prove the above actually recovers;
* :mod:`~repro.harness.worker` / :mod:`~repro.harness.runner` — attempt
  execution and the high-level ``resilient_reach`` / ``run_batch``
  entry points behind ``python -m repro reach`` / ``batch``;
* :mod:`~repro.harness.scheduler` — the parallel batch scheduler: a
  bounded shared-nothing worker pool over supervised children, with
  speculated fallback rungs, longest-expected-first dispatch, global
  wall/RSS budgets, and deterministic merged reports (``--jobs N``);
* :mod:`~repro.harness.pool` — a long-lived bounded worker pool behind
  futures, with per-attempt retry/backoff and cooperative cancellation,
  feeding the ``python -m repro serve`` service (:mod:`repro.serve`).
"""

from .checkpoint import Checkpointer, Snapshot
from .journal import RunJournal, merge_journals
from .policy import DEFAULT_ENGINE_LADDER, FallbackPolicy, run_with_fallback
from .pool import WorkerPool
from .runner import resilient_reach, run_batch
from .scheduler import (
    BatchReport,
    BatchScheduler,
    CancelToken,
    WorkCell,
    expand_cells,
    job_key,
    run_scheduled_batch,
)
from .supervisor import RetryPolicy, Supervisor, rss_bytes
from .worker import AttemptSpec, install_orphan_guard, run_attempt

__all__ = [
    "AttemptSpec",
    "BatchReport",
    "BatchScheduler",
    "CancelToken",
    "Checkpointer",
    "DEFAULT_ENGINE_LADDER",
    "FallbackPolicy",
    "RetryPolicy",
    "RunJournal",
    "Snapshot",
    "Supervisor",
    "WorkCell",
    "WorkerPool",
    "expand_cells",
    "install_orphan_guard",
    "job_key",
    "merge_journals",
    "resilient_reach",
    "rss_bytes",
    "run_attempt",
    "run_batch",
    "run_scheduled_batch",
    "run_with_fallback",
]

"""Per-iteration engine checkpoints: atomic writes, torn-file-safe resume.

A checkpoint file is a small container around the :mod:`repro.persist`
format::

    repro-ckpt 1
    meta {"engine": ..., "circuit": ..., "order": ..., "iteration": N, ...}
    repro-bdd 1
    ... persist payload (vars / node / func / bfv lines) ...
    end <payload-line-count>

The trailer makes truncation detectable: a torn write (or a crash
mid-checkpoint, though :func:`repro.persist.atomic_write` already rules
that out for local filesystems) fails validation and the loader falls
back to the next-newest file.  Checkpoints are tagged with the engine,
order family, and circuit so a fallback ladder's attempts never resume
each other's state.
"""

from __future__ import annotations

import io
import json
import os
import re
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import CheckpointError, ReproError
from ..persist import atomic_write, dump_functions, fsync_dir, load_functions

_MAGIC = "repro-ckpt 1"
_FILE_RE = re.compile(r"^ckpt-(?P<tag>.+)-(?P<iteration>\d{8})\.rbdd$")

#: Process-global callbacks ``hook(checkpointer, iteration)`` invoked at
#: the start of every :meth:`Checkpointer.save`, after the payload is
#: built but before the atomic write.  :mod:`repro.harness.faults` uses
#: them to model crashes, hangs, and cancellations delivered
#: mid-checkpoint-write — the window where durability bugs hide.
save_hooks: List[Callable[["Checkpointer", int], None]] = []


def _sanitize(text: str) -> str:
    """Filename-safe form of a tag component."""
    return re.sub(r"[^A-Za-z0-9_.]+", "_", text)


@dataclass
class Snapshot:
    """One loaded checkpoint: engine state plus provenance."""

    iteration: int
    functions: Dict[str, int] = field(default_factory=dict)
    vectors: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    path: Optional[str] = None


class Checkpointer:
    """Writes and restores engine checkpoints in one directory.

    Engines talk to this object only through
    :class:`repro.reach.common.RunMonitor` (``want_checkpoint`` /
    ``save_state`` / ``restore``); the harness constructs it from an
    :class:`repro.harness.worker.AttemptSpec`.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first save).
    engine, circuit, order:
        Provenance tag; only matching checkpoints are resumed.
    interval:
        Snapshot every ``interval``-th iteration (default: every one).
    keep:
        Newest checkpoints retained per tag; older ones are pruned.
    resume:
        When false, :meth:`restore` returns None and the run starts
        fresh (existing checkpoints are still overwritten as the run
        progresses).
    """

    def __init__(
        self,
        directory: str,
        engine: str,
        circuit: str,
        order: str = "?",
        interval: int = 1,
        keep: int = 3,
        resume: bool = False,
    ) -> None:
        if interval < 1:
            raise CheckpointError("interval must be >= 1, got %d" % interval)
        if keep < 1:
            raise CheckpointError("keep must be >= 1, got %d" % keep)
        self.directory = directory
        self.engine = engine
        self.circuit = circuit
        self.order = order
        self.interval = interval
        self.keep = keep
        self.resume = resume
        #: Files skipped during the last :meth:`restore`: (path, reason).
        self.skipped: List[Tuple[str, str]] = []
        #: Corrupt files quarantined (renamed ``*.corrupt``) by
        #: :meth:`restore`, so a torn-but-parseable checkpoint cannot
        #: wedge every retry of its cell.
        self.quarantined: List[str] = []
        #: Number of snapshots written by this instance.
        self.saves = 0

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    @property
    def tag(self) -> str:
        """Filename tag binding checkpoints to one attempt flavor."""
        return "%s-%s-%s" % (
            _sanitize(self.engine),
            _sanitize(self.order),
            _sanitize(self.circuit),
        )

    def path_for(self, iteration: int) -> str:
        return os.path.join(
            self.directory, "ckpt-%s-%08d.rbdd" % (self.tag, iteration)
        )

    def files(self) -> List[Tuple[int, str]]:
        """``(iteration, path)`` of this tag's checkpoints, newest first."""
        found = []
        try:
            entries = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for entry in entries:
            match = _FILE_RE.match(entry)
            if match is None or match.group("tag") != self.tag:
                continue
            found.append(
                (int(match.group("iteration")),
                 os.path.join(self.directory, entry))
            )
        found.sort(reverse=True)
        return found

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def due(self, iteration: int) -> bool:
        """True iff a snapshot should be taken at ``iteration``."""
        return iteration % self.interval == 0

    def maybe_save(
        self, bdd, iteration, functions=None, vectors=None, extra=None
    ) -> bool:
        """Snapshot if ``iteration`` is due; returns whether it saved."""
        if not self.due(iteration):
            return False
        self.save(bdd, iteration, functions, vectors, extra)
        return True

    def save(
        self, bdd, iteration, functions=None, vectors=None, extra=None
    ) -> str:
        """Write one checkpoint atomically; returns its path.

        ``extra`` (a JSON-safe dict) is stored verbatim under the
        metadata's ``"extra"`` key and comes back on
        :class:`Snapshot.meta` — engine-specific resume state (e.g. the
        saturation engines' chaining position) rides there without the
        container format knowing about it.
        """
        os.makedirs(self.directory, exist_ok=True)
        payload = io.StringIO()
        dump_functions(bdd, functions or {}, payload, vectors)
        body = payload.getvalue()
        meta = {
            "engine": self.engine,
            "circuit": self.circuit,
            "order": self.order,
            "iteration": iteration,
            "functions": sorted(functions or {}),
            "vectors": sorted(vectors or {}),
        }
        if extra:
            meta["extra"] = extra
        # Manager counters ride along so a resumed run reports monotonic
        # op/cache statistics instead of restarting them from zero.
        if hasattr(bdd, "counters_snapshot"):
            meta["counters"] = bdd.counters_snapshot()
        path = self.path_for(iteration)
        for hook in list(save_hooks):
            hook(self, iteration)
        with atomic_write(path) as handle:
            handle.write(_MAGIC + "\n")
            handle.write("meta %s\n" % json.dumps(meta, sort_keys=True))
            handle.write(body)
            handle.write("end %d\n" % body.count("\n"))
        self.saves += 1
        self.prune()
        return path

    def prune(self) -> int:
        """Delete all but the newest ``keep`` checkpoints of this tag."""
        removed = 0
        for _, path in self.files()[self.keep:]:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def restore(self, bdd) -> Optional[Snapshot]:
        """Latest valid snapshot, or None (also when resume is off).

        Corrupt, torn, or mismatched files are skipped (recorded in
        :attr:`skipped`) and the next-newest candidate is tried.  A file
        that fails checksum/schema validation is additionally
        *quarantined* — renamed with a ``.corrupt`` suffix after a
        warning — so the same torn-but-parseable file cannot wedge every
        subsequent retry of this cell; the run falls back to the
        next-newest checkpoint or a fresh start.  Files that merely
        belong to a *different* attempt flavor (engine/order/circuit
        mismatch) are skipped but left in place: they are another
        attempt's valid state, not corruption.
        """
        if not self.resume:
            return None
        self.skipped = []
        self.quarantined = []
        for _, path in self.files():
            try:
                return self.load(path, bdd)
            except ReproError as error:
                self.skipped.append((path, str(error)))
                if not isinstance(error, CheckpointError) or not str(
                    error
                ).startswith("checkpoint %s is for " % path):
                    self._quarantine(path, str(error))
        return None

    def _quarantine(self, path: str, reason: str) -> None:
        """Rename a corrupt checkpoint out of the resume candidate set."""
        quarantined = path + ".corrupt"
        try:
            os.replace(path, quarantined)
            fsync_dir(path)
        except OSError:  # pragma: no cover - raced deletion
            return
        self.quarantined.append(quarantined)
        warnings.warn(
            "quarantined corrupt checkpoint %s (%s); resuming from an "
            "older snapshot or starting fresh" % (path, reason),
            RuntimeWarning,
            stacklevel=3,
        )

    def load(self, path: str, bdd) -> Snapshot:
        """Load and validate one checkpoint file into ``bdd``."""
        try:
            with open(path) as handle:
                lines = handle.read().splitlines(keepends=True)
        except OSError as error:
            raise CheckpointError("unreadable checkpoint: %s" % error)
        if not lines or lines[0].rstrip("\n") != _MAGIC:
            raise CheckpointError("bad checkpoint magic in %s" % path)
        if len(lines) < 3 or not lines[1].startswith("meta "):
            raise CheckpointError("missing checkpoint meta in %s" % path)
        try:
            meta = json.loads(lines[1][len("meta "):])
        except ValueError:
            raise CheckpointError("unparsable checkpoint meta in %s" % path)
        if not isinstance(meta, dict):
            raise CheckpointError(
                "checkpoint meta is not an object in %s" % path
            )
        if not isinstance(meta.get("iteration"), int):
            raise CheckpointError(
                "checkpoint %s meta lacks an integer iteration" % path
            )
        for key, expected in (
            ("engine", self.engine),
            ("circuit", self.circuit),
            ("order", self.order),
        ):
            if meta.get(key) != expected:
                raise CheckpointError(
                    "checkpoint %s is for %s=%r, not %r"
                    % (path, key, meta.get(key), expected)
                )
        trailer = lines[-1].split()
        body = lines[2:-1]
        if (
            len(trailer) != 2
            or trailer[0] != "end"
            or not lines[-1].endswith("\n")
            or trailer[1] != str(len(body))
        ):
            raise CheckpointError("truncated checkpoint %s" % path)
        _, functions, vectors = load_functions(io.StringIO("".join(body)), bdd)
        missing = (set(meta.get("functions", [])) - set(functions)) | (
            set(meta.get("vectors", [])) - set(vectors)
        )
        if missing:
            raise CheckpointError(
                "checkpoint %s lost entries: %s" % (path, sorted(missing))
            )
        return Snapshot(
            iteration=int(meta["iteration"]),
            functions=functions,
            vectors=vectors,
            meta=meta,
            path=path,
        )

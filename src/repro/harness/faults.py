"""Deterministic fault injection for the run harness test suite.

A :class:`FaultPlan` is a list of fault specs (plain dicts, so they can
cross a process boundary as JSON) that fire at reproducible points:

``{"kind": "timeout", "at_iteration": k}``
    Raise ``ResourceLimitError("time")`` at iteration ``k`` — an
    artificial time-out the engine reports as T.O.
``{"kind": "alloc", "after_nodes": n}``
    Fail BDD node allocation after ``n`` further ``_mk`` calls with
    ``ResourceLimitError("memory")``; with ``"hard": true`` raise a raw
    ``MemoryError`` instead (an *uncaught* allocation failure, which
    only process isolation can absorb).
``{"kind": "die", "at_iteration": k}``
    Kill the current process with ``SIGKILL`` (or ``"signal": "SIGABRT"``
    etc.) at iteration ``k`` — models crashes and the OOM killer.
``{"kind": "hang", "at_iteration": k, "seconds": s}``
    Sleep ``s`` seconds at iteration ``k`` — models a wedged engine, to
    be reaped by the supervisor's wall-clock watchdog.
``{"kind": "corrupt_checkpoint", "directory": d, "at_iteration": k}``
    Corrupt the newest checkpoint file under ``d`` (``"mode"``:
    ``"truncate"`` or ``"garbage"``).
``{"kind": "corrupt_unique", "at_iteration": k}``
    Append a duplicate ``(var, lo, hi)`` slot to the manager's node
    arrays — a canonicity violation the sanitizer must report as
    ``bdd.unique_duplicate_triple``.
``{"kind": "corrupt_cache", "at_iteration": k}``
    Plant a stale AND computed-table entry (the negation of the correct
    result) — an unsound memo the sanitizer's oracle replay must report
    as ``bdd.cache_replay``.
``{"kind": "corrupt_bfv", "at_iteration": k}``
    Replace the first component of the next audited Boolean functional
    vector with a function that is anti-monotone in its own choice
    variable — a Sec 2.2 canonical-form violation the sanitizer must
    report as ``bfv.structure``.
``{"kind": "server_crash", "at_iteration": k}``
    SIGKILL the *serving* process at iteration ``k``: the pid named by
    the ``REPRO_SERVE_PID`` env var (``python -m repro serve`` exports
    its own pid, so supervised children inherit it), falling back to
    the current process.  Models the reachability service dying mid-run
    — the checkpoint-resuming cache must answer the retried request
    from where the dead server left off.
``{"kind": "client_disconnect", "at_iteration": k}``
    Raise ``ResourceLimitError("cancelled")`` at iteration ``k`` — the
    engine-side face of a requester that vanished: the run stops with a
    journaled ``cancelled`` attempt, leaving its checkpoints behind as
    a resumable cache entry.

Every fault fires at most ``max_hits`` times (default: once).  Iteration
faults ride the :attr:`repro.reach.common.RunMonitor.iteration_hooks`
registry; allocation faults patch ``BDD._mk``.  An iteration-style
fault may also set ``"during": "checkpoint"`` to fire from
:data:`repro.harness.checkpoint.save_hooks` instead — i.e. *inside*
``Checkpointer.save``, after the payload is built but before the atomic
write — modelling crashes and cancellations delivered
mid-checkpoint-write.  Plans stack; use :func:`clear` (or
``plan.uninstall()``) to restore clean state.
"""

from __future__ import annotations

import json
import os
import re
import signal
import time
from typing import Dict, List, Optional

from ..bdd.cache import OP_AND
from ..bdd.manager import BDD, FREED_VAR
from ..errors import HarnessError, ResourceLimitError
from ..reach.common import RunMonitor
from . import checkpoint as _checkpoint

ENV_VAR = "REPRO_FAULTS"

#: Env var naming the serving process a ``server_crash`` fault kills
#: (``python -m repro serve`` exports its own pid under this name).
SERVE_PID_ENV_VAR = "REPRO_SERVE_PID"

KINDS = (
    "timeout",
    "alloc",
    "die",
    "hang",
    "corrupt_checkpoint",
    "corrupt_unique",
    "corrupt_cache",
    "corrupt_bfv",
    "server_crash",
    "client_disconnect",
)

#: Currently installed plans (stacked; all are consulted).
_active: List["FaultPlan"] = []
_original_mk = BDD._mk


def _patched_mk(self, var, lo, hi):
    for plan in list(_active):
        plan._on_alloc()
    return _original_mk(self, var, lo, hi)


class FaultPlan:
    """A deterministic schedule of injected faults."""

    def __init__(self, faults: List[Dict[str, object]]) -> None:
        self.faults = []
        for spec in faults:
            spec = dict(spec)
            kind = spec.get("kind")
            if kind not in KINDS:
                raise HarnessError("unknown fault kind %r" % kind)
            spec.setdefault("max_hits", 1)
            spec["hits"] = 0
            self.faults.append(spec)
        self.alloc_count = 0
        self._installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> "FaultPlan":
        """Arm the plan process-wide; returns self."""
        if self._installed:
            return self
        _active.append(self)
        RunMonitor.iteration_hooks.append(self._on_iteration)
        if any(f.get("during") == "checkpoint" for f in self.faults):
            _checkpoint.save_hooks.append(self._on_checkpoint_save)
        if any(f["kind"] == "alloc" for f in self.faults):
            BDD._mk = _patched_mk
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Disarm the plan and restore unpatched behavior."""
        if not self._installed:
            return
        self._installed = False
        if self in _active:
            _active.remove(self)
        if self._on_iteration in RunMonitor.iteration_hooks:
            RunMonitor.iteration_hooks.remove(self._on_iteration)
        if self._on_checkpoint_save in _checkpoint.save_hooks:
            _checkpoint.save_hooks.remove(self._on_checkpoint_save)
        if not any(
            any(f["kind"] == "alloc" for f in plan.faults) for plan in _active
        ):
            BDD._mk = _original_mk

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _take(self, fault: Dict[str, object]) -> bool:
        """Consume one hit; False when the fault is exhausted."""
        if fault["hits"] >= fault["max_hits"]:
            return False
        fault["hits"] += 1
        return True

    def _on_alloc(self) -> None:
        self.alloc_count += 1
        for fault in self.faults:
            if fault["kind"] != "alloc":
                continue
            if self.alloc_count <= int(fault.get("after_nodes", 0)):
                continue
            if not self._take(fault):
                continue
            if fault.get("hard"):
                raise MemoryError(
                    "injected hard allocation failure after %d allocations"
                    % self.alloc_count
                )
            raise ResourceLimitError(
                "memory",
                "injected allocation failure after %d allocations"
                % self.alloc_count,
            )

    def _on_iteration(self, monitor: RunMonitor, iteration: int) -> None:
        self._fire("iteration", iteration, monitor=monitor)

    def _on_checkpoint_save(self, checkpointer, iteration: int) -> None:
        self._fire("checkpoint", iteration)

    def _fire(
        self,
        during: str,
        iteration: int,
        monitor: Optional[RunMonitor] = None,
    ) -> None:
        for fault in self.faults:
            kind = fault["kind"]
            if kind == "alloc":
                continue
            if str(fault.get("during", "iteration")) != during:
                continue
            at = fault.get("at_iteration")
            if at is not None and iteration < int(at):
                continue
            if not self._take(fault):
                continue
            if kind == "timeout":
                raise ResourceLimitError(
                    "time",
                    "injected time-out at iteration %d" % iteration,
                    elapsed=monitor.elapsed if monitor is not None else None,
                    iteration=iteration,
                )
            if kind == "client_disconnect":
                raise ResourceLimitError(
                    "cancelled",
                    "injected client disconnect at iteration %d" % iteration,
                    elapsed=monitor.elapsed if monitor is not None else None,
                    iteration=iteration,
                )
            if kind == "die":
                signame = str(fault.get("signal", "SIGKILL"))
                os.kill(os.getpid(), getattr(signal, signame))
                # SIGKILL never returns; other signals may.
                continue
            if kind == "server_crash":
                target = os.environ.get(SERVE_PID_ENV_VAR)
                pid = int(target) if target else os.getpid()
                os.kill(pid, signal.SIGKILL)
                continue
            if kind == "hang":
                time.sleep(float(fault.get("seconds", 3600.0)))
                continue
            if kind == "corrupt_checkpoint":
                corrupt_newest_checkpoint(
                    str(fault["directory"]),
                    mode=str(fault.get("mode", "truncate")),
                )
                continue
            if monitor is None:
                continue  # manager-level corruptions need the monitor
            if kind == "corrupt_unique":
                corrupt_unique_table(monitor.bdd)
                continue
            if kind == "corrupt_cache":
                corrupt_computed_table(monitor.bdd)
                continue
            if kind == "corrupt_bfv":
                _arm_bfv_corruption(monitor)


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------


def install(faults: List[Dict[str, object]]) -> FaultPlan:
    """Build and arm a plan in one call."""
    return FaultPlan(faults).install()


def clear() -> None:
    """Disarm every installed plan (test teardown hook)."""
    for plan in list(_active):
        plan.uninstall()
    BDD._mk = _original_mk

    def _foreign(hook) -> bool:
        return getattr(hook, "__self__", None) is None or not isinstance(
            hook.__self__, FaultPlan
        )

    RunMonitor.iteration_hooks[:] = [
        hook for hook in RunMonitor.iteration_hooks if _foreign(hook)
    ]
    _checkpoint.save_hooks[:] = [
        hook for hook in _checkpoint.save_hooks if _foreign(hook)
    ]


def install_from_env(environ=None) -> Optional[FaultPlan]:
    """Arm a plan from the ``REPRO_FAULTS`` JSON env var, if set."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        faults = json.loads(raw)
    except ValueError as error:
        raise HarnessError("unparsable %s: %s" % (ENV_VAR, error))
    return install(faults)


def corrupt_file(path: str, mode: str = "truncate") -> None:
    """Deterministically corrupt a file on disk (test helper).

    ``truncate`` keeps roughly the first half of the file (dropping the
    validation trailer); ``garbage`` rewrites a middle line with noise.
    """
    with open(path) as handle:
        lines = handle.readlines()
    if mode == "truncate":
        keep = max(1, len(lines) // 2)
        data = "".join(lines[:keep])
        # Tear the last kept line mid-way to model a torn write.
        data = data[: max(1, len(data) - 3)]
    elif mode == "garbage":
        middle = len(lines) // 2
        lines[middle] = "node !!corrupted!! record\n"
        data = "".join(lines)
    else:
        raise HarnessError("unknown corruption mode %r" % mode)
    with open(path, "w") as handle:
        handle.write(data)


#: Trailing iteration number in a checkpoint filename
#: (``ckpt-<tag>-<%08d>.rbdd``; see repro.harness.checkpoint).
_CKPT_ITER_RE = re.compile(r"-(\d{8})\.rbdd$")


def corrupt_newest_checkpoint(directory: str, mode: str = "truncate") -> Optional[str]:
    """Corrupt the newest ``.rbdd`` checkpoint in ``directory``.

    "Newest" is decided by the iteration number encoded in the filename
    (ties broken by name), *not* by mtime: fault schedules must fire on
    the same file on every run, and coarse filesystem timestamps make
    mtime ties platform-dependent.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return None
    best: Optional[str] = None
    best_key = (-1, "")
    for name in names:
        if not name.endswith(".rbdd"):
            continue
        match = _CKPT_ITER_RE.search(name)
        key = (int(match.group(1)) if match else -1, name)
        if best is None or key > best_key:
            best, best_key = name, key
    if best is None:
        return None
    newest = os.path.join(directory, best)
    corrupt_file(newest, mode=mode)
    return newest


# ----------------------------------------------------------------------
# Sanitizer-domain corruptions (used by the sanitizer test suite)
# ----------------------------------------------------------------------


def corrupt_unique_table(bdd: BDD) -> Optional[int]:
    """Append a duplicate ``(var, lo, hi)`` slot to the node arrays.

    The clone shares its triple with an existing live node but is not
    indexed by the unique table — exactly the canonicity breakage a
    buggy ``_mk`` or table rebuild would cause.  Returns the new slot
    (None when no internal node exists yet).
    """
    for node in range(2, len(bdd._var)):
        var = bdd._var[node]
        if var == FREED_VAR:
            continue
        clone = len(bdd._var)
        bdd._var.append(var)
        bdd._lo.append(bdd._lo[node])
        bdd._hi.append(bdd._hi[node])
        bdd._node_count += 1
        return clone
    return None


def corrupt_computed_table(bdd: BDD) -> Optional[int]:
    """Plant a stale AND entry: cache NOT(f AND g) under the key of
    ``f AND g``.

    The entry is popped and re-inserted so it is the *newest* AND entry
    — the sanitizer's replay samples newest-first, so a rate-1.0 audit
    is guaranteed to see it.  Returns the poisoned packed key (None when
    fewer than two variables exist).
    """
    if len(bdd._names) < 2:
        return None
    f, g = bdd.var(0), bdd.var(1)
    if f > g:
        f, g = g, f
    correct = bdd.and_(f, g)
    wrong = bdd.not_(correct)
    key = (g << 32) | f
    table = bdd._ctables[OP_AND]
    table.pop(key, None)
    table[key] = wrong
    return key


def _arm_bfv_corruption(monitor: RunMonitor) -> None:
    """Wrap ``monitor.audit`` to de-canonicalize the next audited vector.

    The first non-empty vector handed to the next audit gets its first
    component replaced by ``NOT v_1`` — anti-monotone in its own choice
    variable, violating the Sec 2.2 structure condition.
    """
    original = monitor.audit

    def corrupted_audit(iteration, roots=(), vectors=(), decompositions=()):
        for vector in vectors:
            components = getattr(vector, "components", None)
            if components:
                bdd = vector.bdd
                bad = bdd.not_(bdd.var(vector.choice_vars[0]))
                bdd.incref(bad)
                vector.components = (bad,) + tuple(components[1:])
                break
        return original(
            iteration,
            roots=roots,
            vectors=vectors,
            decompositions=decompositions,
        )

    monitor.audit = corrupted_audit  # type: ignore[method-assign]

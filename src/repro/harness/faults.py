"""Deterministic fault injection for the run harness test suite.

A :class:`FaultPlan` is a list of fault specs (plain dicts, so they can
cross a process boundary as JSON) that fire at reproducible points:

``{"kind": "timeout", "at_iteration": k}``
    Raise ``ResourceLimitError("time")`` at iteration ``k`` — an
    artificial time-out the engine reports as T.O.
``{"kind": "alloc", "after_nodes": n}``
    Fail BDD node allocation after ``n`` further ``_mk`` calls with
    ``ResourceLimitError("memory")``; with ``"hard": true`` raise a raw
    ``MemoryError`` instead (an *uncaught* allocation failure, which
    only process isolation can absorb).
``{"kind": "die", "at_iteration": k}``
    Kill the current process with ``SIGKILL`` (or ``"signal": "SIGABRT"``
    etc.) at iteration ``k`` — models crashes and the OOM killer.
``{"kind": "hang", "at_iteration": k, "seconds": s}``
    Sleep ``s`` seconds at iteration ``k`` — models a wedged engine, to
    be reaped by the supervisor's wall-clock watchdog.
``{"kind": "corrupt_checkpoint", "directory": d, "at_iteration": k}``
    Corrupt the newest checkpoint file under ``d`` (``"mode"``:
    ``"truncate"`` or ``"garbage"``).

Every fault fires at most ``max_hits`` times (default: once).  Iteration
faults ride the :attr:`repro.reach.common.RunMonitor.iteration_hooks`
registry; allocation faults patch ``BDD._mk``.  Plans stack; use
:func:`clear` (or ``plan.uninstall()``) to restore clean state.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Dict, List, Optional

from ..bdd.manager import BDD
from ..errors import HarnessError, ResourceLimitError
from ..reach.common import RunMonitor

ENV_VAR = "REPRO_FAULTS"

KINDS = ("timeout", "alloc", "die", "hang", "corrupt_checkpoint")

#: Currently installed plans (stacked; all are consulted).
_active: List["FaultPlan"] = []
_original_mk = BDD._mk


def _patched_mk(self, var, lo, hi):
    for plan in list(_active):
        plan._on_alloc()
    return _original_mk(self, var, lo, hi)


class FaultPlan:
    """A deterministic schedule of injected faults."""

    def __init__(self, faults: List[Dict[str, object]]) -> None:
        self.faults = []
        for spec in faults:
            spec = dict(spec)
            kind = spec.get("kind")
            if kind not in KINDS:
                raise HarnessError("unknown fault kind %r" % kind)
            spec.setdefault("max_hits", 1)
            spec["hits"] = 0
            self.faults.append(spec)
        self.alloc_count = 0
        self._installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> "FaultPlan":
        """Arm the plan process-wide; returns self."""
        if self._installed:
            return self
        _active.append(self)
        RunMonitor.iteration_hooks.append(self._on_iteration)
        if any(f["kind"] == "alloc" for f in self.faults):
            BDD._mk = _patched_mk
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Disarm the plan and restore unpatched behavior."""
        if not self._installed:
            return
        self._installed = False
        if self in _active:
            _active.remove(self)
        if self._on_iteration in RunMonitor.iteration_hooks:
            RunMonitor.iteration_hooks.remove(self._on_iteration)
        if not any(
            any(f["kind"] == "alloc" for f in plan.faults) for plan in _active
        ):
            BDD._mk = _original_mk

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _take(self, fault: Dict[str, object]) -> bool:
        """Consume one hit; False when the fault is exhausted."""
        if fault["hits"] >= fault["max_hits"]:
            return False
        fault["hits"] += 1
        return True

    def _on_alloc(self) -> None:
        self.alloc_count += 1
        for fault in self.faults:
            if fault["kind"] != "alloc":
                continue
            if self.alloc_count <= int(fault.get("after_nodes", 0)):
                continue
            if not self._take(fault):
                continue
            if fault.get("hard"):
                raise MemoryError(
                    "injected hard allocation failure after %d allocations"
                    % self.alloc_count
                )
            raise ResourceLimitError(
                "memory",
                "injected allocation failure after %d allocations"
                % self.alloc_count,
            )

    def _on_iteration(self, monitor: RunMonitor, iteration: int) -> None:
        for fault in self.faults:
            kind = fault["kind"]
            if kind == "alloc":
                continue
            at = fault.get("at_iteration")
            if at is not None and iteration < int(at):
                continue
            if not self._take(fault):
                continue
            if kind == "timeout":
                raise ResourceLimitError(
                    "time",
                    "injected time-out at iteration %d" % iteration,
                    elapsed=monitor.elapsed,
                    iteration=iteration,
                )
            if kind == "die":
                signame = str(fault.get("signal", "SIGKILL"))
                os.kill(os.getpid(), getattr(signal, signame))
                # SIGKILL never returns; other signals may.
                continue
            if kind == "hang":
                time.sleep(float(fault.get("seconds", 3600.0)))
                continue
            if kind == "corrupt_checkpoint":
                corrupt_newest_checkpoint(
                    str(fault["directory"]),
                    mode=str(fault.get("mode", "truncate")),
                )


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------


def install(faults: List[Dict[str, object]]) -> FaultPlan:
    """Build and arm a plan in one call."""
    return FaultPlan(faults).install()


def clear() -> None:
    """Disarm every installed plan (test teardown hook)."""
    for plan in list(_active):
        plan.uninstall()
    BDD._mk = _original_mk
    RunMonitor.iteration_hooks[:] = [
        hook
        for hook in RunMonitor.iteration_hooks
        if getattr(hook, "__self__", None) is None
        or not isinstance(hook.__self__, FaultPlan)
    ]


def install_from_env(environ=None) -> Optional[FaultPlan]:
    """Arm a plan from the ``REPRO_FAULTS`` JSON env var, if set."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        faults = json.loads(raw)
    except ValueError as error:
        raise HarnessError("unparsable %s: %s" % (ENV_VAR, error))
    return install(faults)


def corrupt_file(path: str, mode: str = "truncate") -> None:
    """Deterministically corrupt a file on disk (test helper).

    ``truncate`` keeps roughly the first half of the file (dropping the
    validation trailer); ``garbage`` rewrites a middle line with noise.
    """
    with open(path) as handle:
        lines = handle.readlines()
    if mode == "truncate":
        keep = max(1, len(lines) // 2)
        data = "".join(lines[:keep])
        # Tear the last kept line mid-way to model a torn write.
        data = data[: max(1, len(data) - 3)]
    elif mode == "garbage":
        middle = len(lines) // 2
        lines[middle] = "node !!corrupted!! record\n"
        data = "".join(lines)
    else:
        raise HarnessError("unknown corruption mode %r" % mode)
    with open(path, "w") as handle:
        handle.write(data)


def corrupt_newest_checkpoint(directory: str, mode: str = "truncate") -> Optional[str]:
    """Corrupt the newest ``.rbdd`` checkpoint in ``directory``."""
    try:
        entries = [
            os.path.join(directory, entry)
            for entry in os.listdir(directory)
            if entry.endswith(".rbdd")
        ]
    except OSError:
        return None
    if not entries:
        return None
    newest = max(entries, key=os.path.getmtime)
    corrupt_file(newest, mode=mode)
    return newest

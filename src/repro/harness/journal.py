"""Append-only JSONL run journal for harness attempts.

Every supervised attempt appends one JSON object per line; a reader
tolerates torn trailing lines (a crash mid-append) by skipping them, so
the journal is safe to read while a run is in flight.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Dict, Iterator, List, Optional


class RunJournal:
    """A JSONL file of run/attempt records."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one record (a ``wall`` timestamp is added); fsynced."""
        record = dict(record)
        record.setdefault("wall", time.time())
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def __iter__(self) -> Iterator[Dict[str, object]]:
        try:
            handle = open(self.path)
        except OSError:
            return
        with handle:
            for lineno, raw in enumerate(handle, 1):
                try:
                    record = json.loads(raw)
                except ValueError:
                    # Torn trailing line from a crashed writer (or torn
                    # mid-file from a concurrent one): skip, but say so.
                    warnings.warn(
                        "skipping corrupt journal line %d in %s"
                        % (lineno, self.path),
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if isinstance(record, dict):
                    yield record

    def read(self) -> List[Dict[str, object]]:
        """All intact records, in append order."""
        return list(self)

    def attempts(self, circuit: Optional[str] = None) -> List[Dict[str, object]]:
        """Attempt records, optionally filtered by circuit."""
        return [
            record
            for record in self
            if record.get("event") == "attempt"
            and (circuit is None or record.get("circuit") == circuit)
        ]

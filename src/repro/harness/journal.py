"""Append-only JSONL run journal for harness attempts.

Every supervised attempt appends one JSON object per line; a reader
tolerates torn trailing lines (a crash mid-append) by skipping them, so
the journal is safe to read while a run is in flight.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..persist import fsync_dir


class RunJournal:
    """A JSONL file of run/attempt records.

    ``validator`` (optional) is called on every record the reader
    yields — e.g.
    :func:`repro.analysis.sanitizer.validate_journal_record`, which
    raises a :class:`repro.errors.SanitizerError` naming the violated
    schema invariant.  Torn (unparsable) lines are still skipped with a
    warning; the validator only sees intact JSON objects.
    """

    def __init__(self, path: str, validator=None) -> None:
        self.path = path
        self.validator = validator

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one record (a ``wall`` timestamp is added); fsynced."""
        record = dict(record)
        # Wall stamps are provenance, not payload: merge ordering and the
        # byte-identical report comparison both ignore them (merge_journals
        # keys on job/rung, BatchReport keeps schedule-independent fields).
        record.setdefault("wall", time.time())  # noqa: R002
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def __iter__(self) -> Iterator[Dict[str, object]]:
        try:
            handle = open(self.path)
        except OSError:
            return
        with handle:
            for lineno, raw in enumerate(handle, 1):
                try:
                    record = json.loads(raw)
                except ValueError:
                    # Torn trailing line from a crashed writer (or torn
                    # mid-file from a concurrent one): skip, but say so.
                    warnings.warn(
                        "skipping corrupt journal line %d in %s"
                        % (lineno, self.path),
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if isinstance(record, dict):
                    if self.validator is not None:
                        self.validator(record, line=lineno)
                    yield record

    def read(self) -> List[Dict[str, object]]:
        """All intact records, in append order."""
        return list(self)

    def attempts(self, circuit: Optional[str] = None) -> List[Dict[str, object]]:
        """Attempt records, optionally filtered by circuit."""
        return [
            record
            for record in self
            if record.get("event") == "attempt"
            and (circuit is None or record.get("circuit") == circuit)
        ]


def _merge_key(item: Tuple[int, int, Dict[str, object]]) -> Tuple:
    """Default merge order: input order (job, rung), then source order.

    Records from the parallel scheduler carry integer ``job`` / ``rung``
    fields; those sort by batch-input position regardless of which
    worker executed them or when.  Records without them (one-off events,
    foreign journals) keep their source order, after the cell records.
    """
    source, line, record = item
    job = record.get("job")
    rung = record.get("rung")
    if isinstance(job, int):
        return (0, job, rung if isinstance(rung, int) else 0, source, line)
    return (1, 0, 0, source, line)


def merge_journals(
    sources: Sequence[Union[str, RunJournal]],
    dest_path: str,
    key=None,
    validator=None,
) -> int:
    """Merge journal files into one deterministically ordered journal.

    Reads every intact record from ``sources`` (paths or
    :class:`RunJournal` instances; torn lines are skipped by the
    reader), sorts them with ``key`` (default: :func:`_merge_key`,
    batch-input order), and writes ``dest_path`` atomically.  Returns
    the number of records written.  The output is a valid journal: the
    same reader APIs work on it.
    """
    items: List[Tuple[int, int, Dict[str, object]]] = []
    for source_index, source in enumerate(sources):
        journal = source if isinstance(source, RunJournal) else RunJournal(source)
        if validator is not None and journal.validator is None:
            journal = RunJournal(journal.path, validator=validator)
        for line_index, record in enumerate(journal):
            items.append((source_index, line_index, record))
    items.sort(key=key or _merge_key)
    directory = os.path.dirname(os.path.abspath(dest_path))
    os.makedirs(directory, exist_ok=True)
    tmp = dest_path + ".tmp"
    with open(tmp, "w") as handle:
        for _, _, record in items:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, dest_path)
    fsync_dir(dest_path)
    return len(items)

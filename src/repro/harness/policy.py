"""Fallback ladder: retry a failing run with different orders/engines.

The paper's central observation is that the representations fail in
*different* places — the characteristic-function flow blows up where the
BFV flow finishes, and vice versa, and both are sensitive to the
variable-order family.  The :class:`FallbackPolicy` encodes that as a
recovery strategy: on failure, first retry the same engine under the
remaining order families, then walk the remaining engines
(bfv → conj → cbm → tr by default), splitting the remaining time budget
evenly across the attempts still planned and backing off between them.
Every attempt is journaled.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..reach import ReachResult
from .journal import RunJournal
from .supervisor import Supervisor
from .worker import AttemptSpec, run_attempt

#: Engine order of the default ladder: the paper's Figure 2 flow first,
#: then the saturation engine (chained chi images — the fast path on
#: control-style circuits where BFV struggles; see
#: :mod:`repro.reach.sat_engine`), the Sec 2.7 conjunctive variant, and
#: the chi-based baselines.  The ``bfv-sat`` hybrid is deliberately not
#: a default rung: its failure modes track ``bfv``'s (same simulation +
#: reparameterization core), so it adds little recovery diversity —
#: request it explicitly where it wins (input-heavy datapath cells).
DEFAULT_ENGINE_LADDER = ("bfv", "sat", "conj", "cbm", "tr")


def _cache_hit_rate(result: ReachResult) -> Optional[float]:
    """Aggregate computed-table hit rate of an attempt, if reported."""
    cache = result.extra.get("cache")
    if not isinstance(cache, dict):
        return None
    total = cache.get("total")
    if not isinstance(total, dict):
        return None
    rate = total.get("hit_rate")
    return float(rate) if isinstance(rate, (int, float)) else None


@dataclass
class FallbackPolicy:
    """Retry/fallback strategy for one reachability job."""

    engines: Sequence[str] = DEFAULT_ENGINE_LADDER
    orders: Sequence[str] = ("S1", "S2")
    max_attempts: int = 6
    #: Floor on an attempt's time slice, so a nearly exhausted budget
    #: still gives the last rungs a token chance.
    min_attempt_seconds: float = 1.0
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0

    def ladder(self, engine: str, order: str) -> List[Tuple[str, str]]:
        """Attempt sequence starting from the requested configuration.

        The requested (engine, order) runs first; then the same engine
        under the other order families; then each fallback engine under
        every family — capped at :attr:`max_attempts`.
        """
        engines = [engine] + [e for e in self.engines if e != engine]
        orders = [order] + [o for o in self.orders if o != order]
        rungs = [(e, o) for e in engines for o in orders]
        return rungs[: self.max_attempts]


def run_with_fallback(
    spec: AttemptSpec,
    policy: Optional[FallbackPolicy] = None,
    supervisor: Optional[Supervisor] = None,
    journal: Optional[RunJournal] = None,
    total_seconds: Optional[float] = None,
    max_rss_bytes: Optional[int] = None,
    sleep=time.sleep,
) -> Tuple[Optional[ReachResult], List[ReachResult]]:
    """Climb the fallback ladder until an attempt completes.

    Returns ``(result, attempts)`` — the completing result (or the last
    failure if every rung failed, or None if the ladder was empty) plus
    every attempt's result in order.  With a ``supervisor`` each attempt
    runs isolated in a child process; otherwise in-process.
    ``total_seconds`` is the overall budget: each attempt gets the
    remaining time divided by the rungs still planned.
    """
    policy = policy or FallbackPolicy()
    rungs = policy.ladder(spec.engine, spec.order)
    trace_journal = None
    if getattr(spec, "trace_dir", None):
        # Ladder decisions land next to the engines' per-iteration
        # traces, so `repro trace <dir>` can interleave both.
        trace_journal = RunJournal(
            os.path.join(spec.trace_dir, "attempts.jsonl")
        )
    deadline = (
        None if total_seconds is None else time.monotonic() + total_seconds
    )
    attempts: List[ReachResult] = []
    outcome: Optional[ReachResult] = None
    delay = policy.backoff_seconds
    for index, (engine, order) in enumerate(rungs):
        slice_seconds = spec.max_seconds
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 and index > 0:
                break
            slice_seconds = max(
                policy.min_attempt_seconds, remaining / (len(rungs) - index)
            )
            if spec.max_seconds is not None:
                slice_seconds = min(slice_seconds, spec.max_seconds)
        attempt_spec = replace(
            spec, engine=engine, order=order, max_seconds=slice_seconds
        )
        if supervisor is not None:
            # The watchdog backstops the engine's own time self-limit:
            # generous headroom so it only fires on genuine hangs.
            watchdog = (
                None
                if slice_seconds is None
                else slice_seconds * 1.5 + 1.0
            )
            result = supervisor.run(
                attempt_spec,
                budget_seconds=watchdog,
                max_rss_bytes=max_rss_bytes,
            )
        else:
            result = run_attempt(attempt_spec)
        attempts.append(result)
        outcome = result
        if trace_journal is not None:
            trace_journal.append(
                {
                    "event": "fallback_attempt",
                    "attempt": index + 1,
                    "of": len(rungs),
                    "circuit": spec.circuit,
                    "engine": engine,
                    "order": order,
                    "budget_seconds": slice_seconds,
                    "outcome": "completed"
                    if result.completed
                    else result.failure,
                    "seconds": result.seconds,
                    "iterations": result.iterations,
                }
            )
        if journal is not None:
            journal.append(
                {
                    "event": "attempt",
                    "attempt": index + 1,
                    "of": len(rungs),
                    "circuit": spec.circuit,
                    "engine": engine,
                    "order": order,
                    "budget_seconds": slice_seconds,
                    "isolated": supervisor is not None,
                    "outcome": "completed" if result.completed else result.failure,
                    "seconds": result.seconds,
                    "iterations": result.iterations,
                    "peak_live_nodes": result.peak_live_nodes,
                    "num_states": result.num_states,
                    "resumed_from": result.extra.get("resumed_from"),
                    "cache_hit_rate": _cache_hit_rate(result),
                }
            )
        if result.completed:
            break
        if index + 1 < len(rungs) and delay:
            sleep(min(delay, policy.backoff_cap))
            delay *= policy.backoff_factor
    return outcome, attempts

"""Long-lived worker pool: supervised attempts behind futures.

The batch scheduler owns its workers for the lifetime of one batch; a
*service* needs the opposite shape — a pool that outlives any single
request.  :class:`WorkerPool` keeps a bounded set of dispatcher threads
alive indefinitely; each submitted :class:`~repro.harness.worker.AttemptSpec`
still runs in its own supervised child process (shared-nothing, crash-
isolated, watchdogged), so the pool itself holds no engine state and a
dying attempt can never take a dispatcher down:
:meth:`repro.harness.supervisor.Supervisor.run_with_retry` absorbs
worker-spawn failures and transient child crashes with exponential
backoff + jitter before reporting a journaled failure.

Cancellation is cooperative end to end: every submission owns a
:class:`~repro.harness.scheduler.CancelToken` which the supervisor's
watchdog polls, so ``cancel()`` (or :meth:`shutdown`) kills the child
within one poll interval — the mechanism the serve layer uses to reap
abandoned requests.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Optional

from ..reach import ReachResult
from .scheduler import CancelToken
from .supervisor import RetryPolicy, Supervisor
from .worker import AttemptSpec


class WorkerPool:
    """A bounded, long-lived pool of supervised attempt dispatchers.

    Parameters
    ----------
    size:
        Maximum attempts in flight; further submissions queue.
    supervisor:
        Shared :class:`Supervisor` (stateless between runs).
    retry:
        :class:`RetryPolicy` applied to every attempt.
    journal:
        Optional :class:`repro.harness.journal.RunJournal` receiving
        ``retry`` / ``retry_exhausted`` records from the retry path.
    registry:
        Optional :class:`repro.obs.registry.MetricsRegistry` mirroring
        pool occupancy live (``pool_running`` / ``pool_queued`` gauges,
        ``pool_submitted`` / ``pool_completed`` counters) so the serve
        metrics endpoint and ``repro top`` see the pool without calling
        :meth:`stats`.
    """

    def __init__(
        self,
        size: int,
        supervisor: Optional[Supervisor] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[object] = None,
        registry: Optional[object] = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1, got %d" % size)
        self.size = size
        self.supervisor = supervisor or Supervisor()
        self.retry = retry or RetryPolicy()
        self.journal = journal
        self.registry = registry
        if registry is not None:
            registry.gauge("pool_size").set(size)
        self._executor = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="repro-pool"
        )
        self._lock = threading.Lock()
        self._tokens: Dict[int, CancelToken] = {}
        self._next_id = 0
        self._closed = False
        #: Monotonic counters (read via :meth:`stats`).
        self.submitted = 0
        self.completed = 0
        self.running = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: AttemptSpec,
        token: Optional[CancelToken] = None,
        budget_seconds: Optional[float] = None,
        max_rss_bytes: Optional[int] = None,
        on_poll: Optional[Callable[[int, Optional[int]], None]] = None,
    ) -> "Future[ReachResult]":
        """Queue one attempt; returns a future resolving to its result.

        The future never raises for attempt-side failures — crashes,
        budget kills, and cancellations all come back as tagged
        :class:`ReachResult` failures, exactly like the supervisor
        itself.  ``token`` (optional) lets the caller cancel the attempt
        before or during execution.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            token = token or CancelToken()
            ticket = self._next_id
            self._next_id += 1
            self._tokens[ticket] = token
            self.submitted += 1
        self._mirror_occupancy()
        # Per-submission jitter stream seeded by the ticket: retries of
        # concurrent attempts decorrelate, yet any single attempt's
        # backoff schedule is reproducible.
        rng = random.Random(0xA5EED ^ ticket)

        def _job() -> ReachResult:
            with self._lock:
                self.running += 1
            self._mirror_occupancy()
            try:
                return self.supervisor.run_with_retry(
                    spec,
                    policy=self.retry,
                    journal=self.journal,
                    rng=rng,
                    budget_seconds=budget_seconds,
                    max_rss_bytes=max_rss_bytes,
                    cancel=token,
                    on_poll=on_poll,
                )
            finally:
                with self._lock:
                    self.running -= 1
                    self.completed += 1
                    self._tokens.pop(ticket, None)
                self._mirror_occupancy()

        return self._executor.submit(_job)

    def _mirror_occupancy(self) -> None:
        if self.registry is None:
            return
        stats = self.stats()
        self.registry.gauge("pool_running").set(stats["running"])
        self.registry.gauge("pool_queued").set(stats["queued"])
        counter = self.registry.counter("pool_submitted")
        counter.inc(stats["submitted"] - counter.value)
        counter = self.registry.counter("pool_completed")
        counter.inc(stats["completed"] - counter.value)

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Snapshot of pool occupancy: submitted/completed/running/queued."""
        with self._lock:
            return {
                "size": self.size,
                "submitted": self.submitted,
                "completed": self.completed,
                "running": self.running,
                "queued": self.submitted - self.completed - self.running,
            }

    def cancel_all(self, reason: str = "cancelled") -> int:
        """Set every outstanding token; returns how many were signalled."""
        with self._lock:
            tokens = list(self._tokens.values())
        for token in tokens:
            if not token.is_set():
                token.set(reason)
        return len(tokens)

    def shutdown(self, wait: bool = True, reason: str = "cancelled") -> None:
        """Cancel outstanding work and stop the dispatchers.

        With ``wait=True`` this returns only after every in-flight
        supervised child has been reaped — the no-orphans guarantee the
        serve smoke test asserts.
        """
        with self._lock:
            self._closed = True
        self.cancel_all(reason)
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

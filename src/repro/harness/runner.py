"""High-level entry points: resilient single runs and batch suites.

This is what the CLI calls: :func:`resilient_reach` wraps one
reachability job with checkpointing, optional process isolation, and an
optional fallback ladder; :func:`run_batch` walks a whole circuit suite,
guaranteeing that one blowing-up circuit can neither crash nor starve
the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import os

from ..reach import ReachResult
from .journal import RunJournal
from .policy import FallbackPolicy, run_with_fallback
from .scheduler import job_key, run_scheduled_batch
from .supervisor import Supervisor
from .worker import AttemptSpec


def resilient_reach(
    circuit: str,
    engine: str = "bfv",
    order: str = "S1",
    max_seconds: Optional[float] = None,
    max_live_nodes: Optional[int] = None,
    max_iterations: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    count_states: bool = True,
    fallback: bool = False,
    policy: Optional[FallbackPolicy] = None,
    isolate: bool = False,
    max_rss_mb: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    total_seconds: Optional[float] = None,
    trace_dir: Optional[str] = None,
    sanitize: Optional[float] = None,
    faults=None,
) -> Tuple[Optional[ReachResult], List[ReachResult]]:
    """One fault-tolerant reachability run; ``(outcome, attempts)``.

    ``circuit`` is a built-in name or ``.bench`` path (resolved on the
    worker side).  Without ``fallback`` the ladder has a single rung, so
    this degrades to "run once, checkpointed/supervised".
    """
    spec = AttemptSpec(
        circuit=circuit,
        engine=engine,
        order=order,
        max_seconds=max_seconds,
        max_live_nodes=max_live_nodes,
        max_iterations=max_iterations,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume=resume,
        count_states=count_states,
        trace_dir=trace_dir,
        sanitize=sanitize,
        faults=faults,
    )
    if policy is None:
        policy = FallbackPolicy() if fallback else FallbackPolicy(max_attempts=1)
    supervisor = Supervisor() if isolate else None
    max_rss_bytes = (
        None if max_rss_mb is None else int(max_rss_mb * 1024 * 1024)
    )
    return run_with_fallback(
        spec,
        policy=policy,
        supervisor=supervisor,
        journal=journal,
        total_seconds=total_seconds,
        max_rss_bytes=max_rss_bytes,
    )


def run_batch(
    circuits: Sequence[str],
    engine: str = "bfv",
    order: str = "S1",
    max_seconds: Optional[float] = None,
    max_live_nodes: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fallback: bool = True,
    policy: Optional[FallbackPolicy] = None,
    isolate: bool = True,
    max_rss_mb: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    count_states: bool = True,
    trace_dir: Optional[str] = None,
    sanitize: Optional[float] = None,
    jobs: int = 1,
) -> Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]]:
    """Run a suite of circuits resiliently; circuit -> (outcome, attempts).

    ``max_seconds`` is the per-circuit budget (split across that
    circuit's fallback attempts).  Every circuit always gets its turn:
    failures of earlier circuits are recorded, not propagated.

    Checkpoints and traces are namespaced per job (:func:`job_key` — the
    batch position plus the circuit basename), so two circuits that
    share a basename can no longer collide on, and resume, each other's
    checkpoint state.

    With ``jobs > 1`` the suite runs on the parallel batch scheduler
    (:mod:`repro.harness.scheduler`) instead of this sequential loop;
    prefer :func:`repro.harness.scheduler.run_scheduled_batch` directly
    when you want the full :class:`~repro.harness.scheduler.BatchReport`.
    """
    if jobs > 1:
        return run_scheduled_batch(
            circuits,
            engine=engine,
            order=order,
            jobs=jobs,
            max_seconds=max_seconds,
            max_live_nodes=max_live_nodes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fallback=fallback,
            policy=policy,
            isolate=isolate,
            max_rss_mb=max_rss_mb,
            journal=journal,
            count_states=count_states,
            trace_dir=trace_dir,
            sanitize=sanitize,
        ).outcomes()
    results: Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]] = {}
    for index, circuit in enumerate(circuits):
        namespace = job_key(index, circuit)
        results[circuit] = resilient_reach(
            circuit,
            engine=engine,
            order=order,
            max_seconds=max_seconds,
            max_live_nodes=max_live_nodes,
            checkpoint_dir=(
                os.path.join(checkpoint_dir, namespace)
                if checkpoint_dir
                else None
            ),
            resume=resume,
            count_states=count_states,
            fallback=fallback,
            policy=policy,
            isolate=isolate,
            max_rss_mb=max_rss_mb,
            journal=journal,
            total_seconds=max_seconds,
            trace_dir=(
                os.path.join(trace_dir, namespace) if trace_dir else None
            ),
            sanitize=sanitize,
        )
    return results

"""High-level entry points: resilient single runs and batch suites.

This is what the CLI calls: :func:`resilient_reach` wraps one
reachability job with checkpointing, optional process isolation, and an
optional fallback ladder; :func:`run_batch` walks a whole circuit suite,
guaranteeing that one blowing-up circuit can neither crash nor starve
the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..reach import ReachResult
from .journal import RunJournal
from .policy import FallbackPolicy, run_with_fallback
from .supervisor import Supervisor
from .worker import AttemptSpec


def resilient_reach(
    circuit: str,
    engine: str = "bfv",
    order: str = "S1",
    max_seconds: Optional[float] = None,
    max_live_nodes: Optional[int] = None,
    max_iterations: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    count_states: bool = True,
    fallback: bool = False,
    policy: Optional[FallbackPolicy] = None,
    isolate: bool = False,
    max_rss_mb: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    total_seconds: Optional[float] = None,
    trace_dir: Optional[str] = None,
    faults=None,
) -> Tuple[Optional[ReachResult], List[ReachResult]]:
    """One fault-tolerant reachability run; ``(outcome, attempts)``.

    ``circuit`` is a built-in name or ``.bench`` path (resolved on the
    worker side).  Without ``fallback`` the ladder has a single rung, so
    this degrades to "run once, checkpointed/supervised".
    """
    spec = AttemptSpec(
        circuit=circuit,
        engine=engine,
        order=order,
        max_seconds=max_seconds,
        max_live_nodes=max_live_nodes,
        max_iterations=max_iterations,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume=resume,
        count_states=count_states,
        trace_dir=trace_dir,
        faults=faults,
    )
    if policy is None:
        policy = FallbackPolicy() if fallback else FallbackPolicy(max_attempts=1)
    supervisor = Supervisor() if isolate else None
    max_rss_bytes = (
        None if max_rss_mb is None else int(max_rss_mb * 1024 * 1024)
    )
    return run_with_fallback(
        spec,
        policy=policy,
        supervisor=supervisor,
        journal=journal,
        total_seconds=total_seconds,
        max_rss_bytes=max_rss_bytes,
    )


def run_batch(
    circuits: Sequence[str],
    engine: str = "bfv",
    order: str = "S1",
    max_seconds: Optional[float] = None,
    max_live_nodes: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fallback: bool = True,
    policy: Optional[FallbackPolicy] = None,
    isolate: bool = True,
    max_rss_mb: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    count_states: bool = True,
    trace_dir: Optional[str] = None,
) -> Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]]:
    """Run a suite of circuits resiliently; circuit -> (outcome, attempts).

    ``max_seconds`` is the per-circuit budget (split across that
    circuit's fallback attempts).  Every circuit always gets its turn:
    failures of earlier circuits are recorded, not propagated.
    """
    results: Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]] = {}
    for circuit in circuits:
        results[circuit] = resilient_reach(
            circuit,
            engine=engine,
            order=order,
            max_seconds=max_seconds,
            max_live_nodes=max_live_nodes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            count_states=count_states,
            fallback=fallback,
            policy=policy,
            isolate=isolate,
            max_rss_mb=max_rss_mb,
            journal=journal,
            total_seconds=max_seconds,
            trace_dir=trace_dir,
        )
    return results

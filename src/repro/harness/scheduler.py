"""Parallel batch scheduler: a shared-nothing worker pool over cells.

``python -m repro batch`` used to walk the suite one circuit at a time
even though every attempt already runs in its own supervised child
process.  This module scales the suite *out*: a batch request is
expanded into independent :class:`WorkCell`\\ s (one fallback-ladder rung
of one circuit — circuit x engine x order), the cells are dispatched to
a bounded pool of workers (each attempt still a supervised child, so
workers share nothing but the dispatch queue), and scheduled
longest-expected-first using the per-cell timings recorded in
``BENCH_reach.json`` so stragglers start early.

Semantics match the sequential fallback ladder
(:func:`repro.harness.policy.run_with_fallback`) with one deliberate
change: per-rung time slices are *static* (the per-circuit budget split
evenly over the ladder) instead of recomputed from the remaining
budget, so the outcome of every cell is independent of scheduling
order.  That is what makes the merged report deterministic: for the
same request, ``jobs=1`` and ``jobs=N`` produce byte-identical
:meth:`BatchReport.to_json` output.

With more workers than ready cells, later rungs of an unresolved ladder
are *speculated* — started before their predecessors have failed.  A
speculative result only counts if the sequential ladder would have
reached that rung: the job's outcome is always the first rung (in
ladder order) that completed, earlier-rung attempts are reported
exactly as the sequential ladder would, and any rung past the first
completion is cancelled (running children are killed, pending cells are
skipped) and journaled as discarded.

On top of the per-cell budgets the scheduler enforces *global* ceilings:
``total_seconds`` (wall deadline — outstanding cells are cancelled with
failure ``"time"``, unstarted ones are skipped) and ``total_rss_mb``
(summed child RSS — the largest child is cancelled with ``"memory"``
until the pool fits).

Per-worker JSONL journals and per-job checkpoint/trace subdirectories
(namespaced by :func:`job_key`, which keeps two circuits that share a
basename apart) are merged after the run: journals into one
input-ordered file via :func:`repro.harness.journal.merge_journals`,
trace files up into the root trace directory under job-key-prefixed
names that ``python -m repro trace`` reads unchanged.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..reach import ReachResult
from .journal import RunJournal, merge_journals
from .policy import FallbackPolicy
from .supervisor import Supervisor
from .worker import AttemptSpec, run_attempt

#: Expected duration of a cell when the benchmark baseline offers no
#: signal at all (missing/empty ``BENCH_reach.json``): a generous but
#: *finite* default, so completely unknown work still schedules ahead
#: of fast known cells without wedging the sort the way the old
#: ``inf`` sentinel did.  Cells that merely miss their exact
#: ``circuit/engine`` entry get a better guess first — see
#: :func:`expected_seconds`.
DEFAULT_EXPECTED_SECONDS = 10.0


def _sanitize(text: str) -> str:
    """Filename-safe form of a tag component (checkpointer convention)."""
    return re.sub(r"[^A-Za-z0-9_.]+", "_", text)


def job_key(index: int, circuit: str) -> str:
    """Filesystem namespace for one batch job's checkpoints and traces.

    The job *index* makes the key unique even when two circuit
    references share a basename (``a/s27.bench`` vs ``b/s27.bench``),
    which previously made their checkpoints collide and resume each
    other's state.
    """
    name = _sanitize(os.path.splitext(os.path.basename(circuit))[0])
    return "job%03d-%s" % (index, name or "circuit")


class CancelToken:
    """Cooperative cancellation flag carrying a failure code.

    The supervisor polls :meth:`is_set` in its watchdog loop and kills
    the child with :attr:`reason` (``cancelled`` / ``time`` /
    ``memory``) as the attempt's failure code.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = "cancelled"

    def set(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class WorkCell:
    """One schedulable unit: a single fallback rung of one batch job."""

    job: int
    rung: int
    circuit: str
    engine: str
    order: str
    budget_seconds: Optional[float] = None
    #: Ladder length of this cell's job (for journaling "attempt k of n").
    rungs: int = 1

    @property
    def key(self) -> str:
        """Unique, filesystem-safe cell identifier."""
        return "%s-r%d-%s-%s" % (
            job_key(self.job, self.circuit),
            self.rung,
            _sanitize(self.engine),
            _sanitize(self.order),
        )


def expand_cells(
    circuits: Sequence[str],
    engine: str = "bfv",
    order: str = "S1",
    fallback: bool = True,
    policy: Optional[FallbackPolicy] = None,
    max_seconds: Optional[float] = None,
) -> List[WorkCell]:
    """Expand a batch request into work cells in deterministic order.

    Each circuit contributes one cell per fallback-ladder rung (a single
    rung when ``fallback`` is off).  The per-circuit ``max_seconds``
    budget is split statically across the ladder, floored at the
    policy's ``min_attempt_seconds``, so a cell's time slice does not
    depend on when the scheduler happens to run it.
    """
    if policy is None:
        policy = FallbackPolicy() if fallback else FallbackPolicy(max_attempts=1)
    cells: List[WorkCell] = []
    for index, circuit in enumerate(circuits):
        rungs = policy.ladder(engine, order)
        slice_seconds = None
        if max_seconds is not None:
            slice_seconds = min(
                max_seconds,
                max(policy.min_attempt_seconds, max_seconds / len(rungs)),
            )
        for rung, (rung_engine, rung_order) in enumerate(rungs):
            cells.append(
                WorkCell(
                    job=index,
                    rung=rung,
                    circuit=circuit,
                    engine=rung_engine,
                    order=rung_order,
                    budget_seconds=slice_seconds,
                    rungs=len(rungs),
                )
            )
    return cells


def load_expected_seconds(path: str) -> Dict[str, float]:
    """``circuit/engine -> seconds`` estimates from a BENCH_reach report.

    Tolerates a missing or malformed file (returns ``{}``): the
    benchmark baseline is an optimization input, never a correctness
    dependency.
    """
    try:
        with open(path) as handle:
            report = json.load(handle)
        cells = report.get("cells", {})
    except (OSError, ValueError, AttributeError):
        return {}
    estimates: Dict[str, float] = {}
    if not isinstance(cells, dict):
        return estimates
    for key, cell in cells.items():
        if not isinstance(cell, dict):
            continue
        seconds = cell.get("after_s")
        if isinstance(seconds, (int, float)):
            estimates[str(key)] = float(seconds)
    return estimates


def expected_seconds(cell: WorkCell, estimates: Dict[str, float]) -> float:
    """Expected duration of a cell under the benchmark baseline.

    Degrades gracefully when the exact ``circuit/engine`` cell is
    missing from the baseline — the day a new engine lands it has no
    recorded timings anywhere, and longest-expected-first still needs a
    finite, conservative guess for it:

    1. the exact ``circuit/engine`` estimate when recorded;
    2. else the *slowest* recorded engine on the same circuit (a
       straggler-safe proxy: the circuit's hardness dominates);
    3. else the engine's slowest recorded time on any circuit;
    4. else :data:`DEFAULT_EXPECTED_SECONDS`.
    """
    name = os.path.splitext(os.path.basename(cell.circuit))[0]
    exact = estimates.get("%s/%s" % (name, cell.engine))
    if exact is not None:
        return exact
    same_circuit = [
        seconds
        for key, seconds in estimates.items()
        if key.rsplit("/", 1)[0] == name
    ]
    if same_circuit:
        return max(same_circuit)
    same_engine = [
        seconds
        for key, seconds in estimates.items()
        if key.rsplit("/", 1)[-1] == cell.engine
    ]
    if same_engine:
        return max(same_engine)
    return DEFAULT_EXPECTED_SECONDS


def _normalize_result(result: ReachResult) -> Dict[str, object]:
    """The deterministic attempt fields of the merged report.

    Wall-clock and RSS figures are excluded on purpose: everything kept
    here is a function of the (circuit, engine, order, budgets) inputs
    alone, which is what makes ``jobs=1`` and ``jobs=N`` reports
    byte-identical.
    """
    return {
        "engine": result.engine,
        "order": result.order,
        "completed": result.completed,
        "failure": result.failure,
        "iterations": result.iterations,
        "num_states": result.num_states,
        "reached_size": result.reached_size,
        "peak_live_nodes": result.peak_live_nodes,
    }


@dataclass
class CellOutcome:
    """What happened to one cell (for the report's cell inventory)."""

    cell: WorkCell
    state: str  # "done" | "skipped"
    result: Optional[ReachResult] = None
    speculative: bool = False
    #: True for executed rungs past the job's first completion — work a
    #: sequential ladder would never have run.
    discarded: bool = False


@dataclass
class JobOutcome:
    """Per-circuit outcome in sequential-ladder semantics."""

    index: int
    circuit: str
    outcome: Optional[ReachResult]
    attempts: List[ReachResult] = field(default_factory=list)


class BatchReport:
    """Input-ordered results of one scheduled batch."""

    def __init__(
        self,
        jobs: List[JobOutcome],
        cells: List[CellOutcome],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.jobs = jobs
        self.cells = cells
        self.meta = dict(meta or {})

    def outcomes(
        self,
    ) -> Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]]:
        """Legacy ``run_batch`` shape: circuit -> (outcome, attempts).

        Duplicate circuit references keep the last job's entry, matching
        the old dict behavior; iterate :attr:`jobs` to see every job.
        """
        results: Dict[str, Tuple[Optional[ReachResult], List[ReachResult]]] = {}
        for job in self.jobs:
            results[job.circuit] = (job.outcome, job.attempts)
        return results

    @property
    def failures(self) -> int:
        """Jobs that did not produce a completed outcome."""
        return sum(
            1
            for job in self.jobs
            if job.outcome is None or not job.outcome.completed
        )

    def merged(self) -> Dict[str, object]:
        """Deterministic, input-ordered report dict.

        Contains only fields that are functions of the request (no wall
        clock, no RSS, no worker identity), so the same request yields
        the same bytes at any ``--jobs`` level.
        """
        return {
            "schema_version": 1,
            "engine": self.meta.get("engine"),
            "order": self.meta.get("order"),
            "fallback": self.meta.get("fallback"),
            "jobs": [
                {
                    "circuit": job.circuit,
                    "outcome": (
                        None
                        if job.outcome is None
                        else _normalize_result(job.outcome)
                    ),
                    "attempts": [
                        _normalize_result(attempt) for attempt in job.attempts
                    ],
                }
                for job in self.jobs
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.merged(), indent=2, sort_keys=True) + "\n"


class BatchScheduler:
    """Dispatches a batch's work cells to a bounded worker pool.

    One instance runs one batch (:meth:`run`).  With ``jobs == 1`` the
    dispatch loop runs inline in the calling thread — in-process
    attempts (``isolate=False``) then behave exactly like the
    sequential harness, including process-global fault plans installed
    by tests.  With ``jobs > 1`` isolation is forced on: parallelism
    and cancellation both require the shared-nothing child processes.
    """

    def __init__(
        self,
        circuits: Sequence[str],
        engine: str = "bfv",
        order: str = "S1",
        jobs: int = 1,
        max_seconds: Optional[float] = None,
        max_live_nodes: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        fallback: bool = True,
        policy: Optional[FallbackPolicy] = None,
        isolate: bool = True,
        max_rss_mb: Optional[float] = None,
        journal: Optional[object] = None,
        count_states: bool = True,
        trace_dir: Optional[str] = None,
        sanitize: Optional[float] = None,
        total_seconds: Optional[float] = None,
        total_rss_mb: Optional[float] = None,
        bench_path: Optional[str] = None,
        cell_faults: Optional[Dict[str, List[Dict[str, object]]]] = None,
        supervisor: Optional[Supervisor] = None,
        registry: Optional[object] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.circuits = list(circuits)
        self.engine = engine
        self.order = order
        self.jobs = jobs
        self.max_seconds = max_seconds
        self.max_live_nodes = max_live_nodes
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fallback = fallback
        self.policy = policy or (
            FallbackPolicy() if fallback else FallbackPolicy(max_attempts=1)
        )
        self.isolate = isolate or jobs > 1
        self.max_rss_mb = max_rss_mb
        self.count_states = count_states
        self.trace_dir = trace_dir
        self.sanitize = sanitize
        self.total_seconds = total_seconds
        self.total_rss_mb = total_rss_mb
        self.cell_faults = dict(cell_faults or {})
        self.registry = registry
        self.supervisor = supervisor or (Supervisor() if self.isolate else None)
        self.journal_path = getattr(journal, "path", journal)
        if self.journal_path is not None:
            self.journal_path = str(self.journal_path)

        self.cells = expand_cells(
            self.circuits,
            engine=engine,
            order=order,
            fallback=fallback,
            policy=self.policy,
            max_seconds=max_seconds,
        )
        estimates = load_expected_seconds(bench_path) if bench_path else {}
        self._expected = [
            expected_seconds(cell, estimates) for cell in self.cells
        ]
        self._by_job: Dict[int, List[int]] = {}
        for index, cell in enumerate(self.cells):
            self._by_job.setdefault(cell.job, []).append(index)

        self._cond = threading.Condition()
        self._status = ["pending"] * len(self.cells)
        self._results: Dict[int, ReachResult] = {}
        self._speculated: Dict[int, bool] = {}
        self._skip_reason: Dict[int, str] = {}
        self._tokens: Dict[int, CancelToken] = {}
        self._rss: Dict[int, int] = {}
        self._deadline: Optional[float] = None
        self._speculate = self.jobs > 1

    # ------------------------------------------------------------------
    # Dispatch (all under self._cond)
    # ------------------------------------------------------------------

    def _predecessors(self, index: int) -> List[int]:
        cell = self.cells[index]
        return [i for i in self._by_job[cell.job] if self.cells[i].rung < cell.rung]

    def _eligible(self, index: int) -> Optional[bool]:
        """None if not runnable now, else whether it would be speculative."""
        preds = self._predecessors(index)
        settled = all(self._status[i] == "done" for i in preds)
        if settled and not any(
            self._results[i].completed for i in preds
        ):
            return False  # the sequential ladder has reached this rung
        if self._speculate:
            return True
        return None

    def _pick(self) -> Optional[int]:
        """Highest-priority runnable cell: real work first, longest first."""
        best = None
        best_key = None
        for index, cell in enumerate(self.cells):
            if self._status[index] != "pending":
                continue
            speculative = self._eligible(index)
            if speculative is None:
                continue
            key = (
                1 if speculative else 0,
                -self._expected[index],
                cell.job,
                cell.rung,
            )
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def _first_completed_rung(self, job: int) -> Optional[int]:
        for index in self._by_job[job]:
            if self._status[index] == "done" and self._results[index].completed:
                return self.cells[index].rung
        return None

    def _finish(self, index: int, result: ReachResult) -> None:
        self._status[index] = "done"
        self._results[index] = result
        self._tokens.pop(index, None)
        self._rss.pop(index, None)
        if result.completed:
            # Rungs past a completion can never be the outcome: kill the
            # running ones, skip the pending ones.
            rung = self.cells[index].rung
            for other in self._by_job[self.cells[index].job]:
                if self.cells[other].rung <= rung:
                    continue
                if self._status[other] == "pending":
                    self._status[other] = "skipped"
                    self._skip_reason[other] = "resolved"
                elif self._status[other] == "running":
                    token = self._tokens.get(other)
                    if token is not None:
                        token.set("cancelled")

    def _check_budgets(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            for index, status in enumerate(self._status):
                if status == "pending":
                    self._status[index] = "skipped"
                    self._skip_reason[index] = "deadline"
                elif status == "running":
                    token = self._tokens.get(index)
                    if token is not None and not token.is_set():
                        token.set("time")
        if self.total_rss_mb is not None and self._rss:
            budget = int(self.total_rss_mb * 1024 * 1024)
            total = sum(self._rss.values())
            if total > budget:
                largest = max(self._rss, key=lambda i: self._rss[i])
                token = self._tokens.get(largest)
                if token is not None and not token.is_set():
                    token.set("memory")

    def _settled(self) -> bool:
        return all(status in ("done", "skipped") for status in self._status)

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------

    def _spec_for(self, cell: WorkCell) -> AttemptSpec:
        checkpoint_dir = None
        if self.checkpoint_dir:
            checkpoint_dir = os.path.join(
                self.checkpoint_dir, job_key(cell.job, cell.circuit)
            )
        trace_dir = None
        if self.trace_dir:
            trace_dir = os.path.join(
                self.trace_dir, job_key(cell.job, cell.circuit)
            )
        return AttemptSpec(
            circuit=cell.circuit,
            engine=cell.engine,
            order=cell.order,
            max_seconds=cell.budget_seconds,
            max_live_nodes=self.max_live_nodes,
            checkpoint_dir=checkpoint_dir,
            resume=self.resume,
            count_states=self.count_states,
            trace_dir=trace_dir,
            sanitize=self.sanitize,
            faults=self.cell_faults.get(cell.circuit),
        )

    def _execute(self, index: int, token: CancelToken) -> ReachResult:
        cell = self.cells[index]
        spec = self._spec_for(cell)
        if token.is_set():
            return ReachResult(
                engine=cell.engine,
                circuit=cell.circuit,
                order=cell.order,
                completed=False,
                failure=token.reason,
            )
        if self.supervisor is not None:
            watchdog = (
                None
                if cell.budget_seconds is None
                else cell.budget_seconds * 1.5 + 1.0
            )
            max_rss_bytes = (
                None
                if self.max_rss_mb is None
                else int(self.max_rss_mb * 1024 * 1024)
            )

            def on_poll(pid: int, rss: Optional[int]) -> None:
                if rss is not None:
                    with self._cond:
                        if self._status[index] == "running":
                            self._rss[index] = rss
                        self._check_budgets()

            return self.supervisor.run(
                spec,
                budget_seconds=watchdog,
                max_rss_bytes=max_rss_bytes,
                cancel=token,
                on_poll=on_poll,
            )
        try:
            return run_attempt(spec)
        except Exception as error:  # worker threads must never die
            return ReachResult(
                engine=cell.engine,
                circuit=cell.circuit,
                order=cell.order,
                completed=False,
                failure="crash",
                extra={"error": "%s: %s" % (type(error).__name__, error)},
            )

    def _journal_record(
        self,
        cell: WorkCell,
        result: ReachResult,
        worker: int,
        speculative: bool,
    ) -> Dict[str, object]:
        return {
            "event": "attempt",
            "attempt": cell.rung + 1,
            "of": cell.rungs,
            "job": cell.job,
            "rung": cell.rung,
            "cell": cell.key,
            "worker": worker,
            "speculative": speculative,
            "circuit": cell.circuit,
            "engine": cell.engine,
            "order": cell.order,
            "budget_seconds": cell.budget_seconds,
            "isolated": self.supervisor is not None,
            "outcome": "completed" if result.completed else result.failure,
            "seconds": result.seconds,
            "iterations": result.iterations,
            "peak_live_nodes": result.peak_live_nodes,
            "num_states": result.num_states,
        }

    def _worker_gauges(
        self,
        worker: int,
        state: str,
        cell: Optional[WorkCell] = None,
        journal: Optional[RunJournal] = None,
    ) -> None:
        """Mirror one worker's occupancy into the registry and journal.

        The registry gauges (``worker_state`` / ``worker_job`` /
        ``worker_rung`` labelled by worker index, plus the aggregate
        ``workers_busy``) are what ``repro top`` renders as pool
        occupancy; the ``worker_state`` event in the sidecar state
        journal (``<trace_dir>/workers/``, kept out of the merged
        attempt journal) gives the same signal to trace-dir tailers
        that cannot see this process's registry.  Idle transitions
        clear the job/rung gauges.
        """
        registry = self.registry
        if registry is not None:
            labels = {"worker": str(worker)}
            registry.gauge("worker_state", labels).set(state)
            registry.gauge("worker_job", labels).set(
                job_key(cell.job, cell.circuit) if cell is not None else ""
            )
            registry.gauge("worker_rung", labels).set(
                cell.rung if cell is not None else -1
            )
            busy = registry.gauge("workers_busy")
            busy.inc(1 if state == "busy" else -1)
        if journal is not None:
            record: Dict[str, object] = {
                "event": "worker_state",
                "worker": worker,
                "state": state,
            }
            if cell is not None:
                record["cell"] = job_key(cell.job, cell.circuit)
                record["engine"] = cell.engine
                record["order"] = cell.order
            journal.append(record)

    def _worker(
        self,
        worker: int,
        journal: Optional[RunJournal],
        state_journal: Optional[RunJournal] = None,
    ) -> None:
        while True:
            with self._cond:
                index = None
                while True:
                    self._check_budgets()
                    index = self._pick()
                    if index is not None:
                        break
                    if self._settled() or not any(
                        status == "running" for status in self._status
                    ):
                        # No runnable work and nothing in flight that
                        # could unlock more: drain any stranded cells
                        # and stop.
                        for i, status in enumerate(self._status):
                            if status == "pending":
                                self._status[i] = "skipped"
                                self._skip_reason[i] = "starved"
                        self._cond.notify_all()
                        return
                    self._cond.wait(0.05)
                speculative = bool(self._eligible(index))
                token = CancelToken()
                self._status[index] = "running"
                self._tokens[index] = token
                self._speculated[index] = speculative
            self._worker_gauges(
                worker, "busy", self.cells[index], state_journal
            )
            result = self._execute(index, token)
            if journal is not None:
                journal.append(
                    self._journal_record(
                        self.cells[index], result, worker, speculative
                    )
                )
            self._worker_gauges(worker, "idle", None, state_journal)
            with self._cond:
                self._finish(index, result)
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Run + merge
    # ------------------------------------------------------------------

    def _worker_journal_dir(self) -> Optional[str]:
        if self.journal_path is not None:
            return self.journal_path + ".d"
        if self.trace_dir is not None:
            return os.path.join(self.trace_dir, ".workers")
        return None

    def run(self) -> BatchReport:
        start = time.monotonic()
        if self.total_seconds is not None:
            self._deadline = start + self.total_seconds
        journal_dir = self._worker_journal_dir()
        worker_journals: List[RunJournal] = []
        if journal_dir is not None:
            os.makedirs(journal_dir, exist_ok=True)
            worker_journals = [
                RunJournal(os.path.join(journal_dir, "worker%02d.jsonl" % i))
                for i in range(self.jobs)
            ]
        # Worker occupancy events are staged as sidecars in the same
        # scratch directory as the per-worker journals: never merged
        # into the attempt journal (the merged journal's record set is
        # part of the batch contract) and cleaned up with the directory
        # after the run — their audience is a live tailer (`repro top`)
        # watching the batch *while it runs*.
        state_journals: List[Optional[RunJournal]] = [None] * self.jobs
        if journal_dir is not None:
            state_journals = [
                RunJournal(
                    os.path.join(journal_dir, "worker%02d-state.jsonl" % i)
                )
                for i in range(self.jobs)
            ]
        if self.jobs == 1:
            self._worker(
                0,
                worker_journals[0] if worker_journals else None,
                state_journals[0],
            )
        else:
            threads = [
                threading.Thread(
                    target=self._worker,
                    args=(
                        i,
                        worker_journals[i] if worker_journals else None,
                        state_journals[i],
                    ),
                    name="repro-batch-worker-%d" % i,
                    daemon=True,
                )
                for i in range(self.jobs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        report = self._build_report(time.monotonic() - start)
        self._merge_journals(journal_dir, worker_journals)
        self._merge_traces()
        return report

    def _build_report(self, elapsed: float) -> BatchReport:
        jobs: List[JobOutcome] = []
        cell_outcomes: List[CellOutcome] = []
        first_completed: Dict[int, Optional[int]] = {
            job: self._first_completed_rung(job) for job in self._by_job
        }
        for job_index, circuit in enumerate(self.circuits):
            indices = self._by_job.get(job_index, [])
            cutoff = first_completed.get(job_index)
            attempts: List[ReachResult] = []
            outcome: Optional[ReachResult] = None
            for index in indices:
                cell = self.cells[index]
                status = self._status[index]
                result = self._results.get(index)
                discarded = cutoff is not None and cell.rung > cutoff
                if status == "done" and not discarded:
                    attempts.append(result)
                    outcome = result
                    if result.completed:
                        break
            jobs.append(
                JobOutcome(
                    index=job_index,
                    circuit=circuit,
                    outcome=outcome,
                    attempts=attempts,
                )
            )
            for index in indices:
                cell = self.cells[index]
                cell_outcomes.append(
                    CellOutcome(
                        cell=cell,
                        state=self._status[index],
                        result=self._results.get(index),
                        speculative=self._speculated.get(index, False),
                        discarded=(
                            cutoff is not None and cell.rung > cutoff
                        ),
                    )
                )
        meta = {
            "engine": self.engine,
            "order": self.order,
            "fallback": self.fallback,
            "jobs": self.jobs,
            "isolate": self.isolate,
            "cells": len(self.cells),
            "elapsed": elapsed,
        }
        return BatchReport(jobs, cell_outcomes, meta)

    def _merge_journals(
        self, journal_dir: Optional[str], worker_journals: List[RunJournal]
    ) -> None:
        if journal_dir is None:
            return
        validator = None
        if self.sanitize:
            from ..analysis.sanitizer import validate_journal_record

            validator = validate_journal_record
        sources = [journal.path for journal in worker_journals]
        if self.journal_path is not None:
            merge_journals(sources, self.journal_path, validator=validator)
        if self.trace_dir is not None:
            # Ladder decisions land next to the traces, mirroring the
            # sequential harness's attempts.jsonl convention.
            merge_journals(
                sources,
                os.path.join(self.trace_dir, "attempts.jsonl"),
                validator=validator,
            )
        shutil.rmtree(journal_dir, ignore_errors=True)

    def _merge_traces(self) -> None:
        """Lift per-job trace files into the root trace directory.

        Files become ``trace-<jobkey>-<engine>-<order>-<circuit>.jsonl``
        so one flat directory holds the whole batch without collisions
        (``python -m repro trace <dir>`` reads it unchanged).
        """
        if self.trace_dir is None:
            return
        for job_index, circuit in enumerate(self.circuits):
            subdir = os.path.join(
                self.trace_dir, job_key(job_index, circuit)
            )
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".jsonl"):
                    continue
                rest = name[len("trace-"):] if name.startswith("trace-") else name
                merged = "trace-%s-%s" % (
                    job_key(job_index, circuit), rest
                )
                os.replace(
                    os.path.join(subdir, name),
                    os.path.join(self.trace_dir, merged),
                )
            try:
                os.rmdir(subdir)
            except OSError:  # pragma: no cover - non-empty leftovers
                pass


def run_scheduled_batch(
    circuits: Sequence[str],
    engine: str = "bfv",
    order: str = "S1",
    jobs: int = 1,
    max_seconds: Optional[float] = None,
    max_live_nodes: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fallback: bool = True,
    policy: Optional[FallbackPolicy] = None,
    isolate: bool = True,
    max_rss_mb: Optional[float] = None,
    journal: Optional[object] = None,
    count_states: bool = True,
    trace_dir: Optional[str] = None,
    sanitize: Optional[float] = None,
    total_seconds: Optional[float] = None,
    total_rss_mb: Optional[float] = None,
    bench_path: Optional[str] = None,
    cell_faults: Optional[Dict[str, List[Dict[str, object]]]] = None,
    registry: Optional[object] = None,
) -> BatchReport:
    """Run a circuit suite on the parallel batch scheduler.

    The functional entry point behind ``python -m repro batch --jobs``;
    see :class:`BatchScheduler` for the semantics.
    """
    return BatchScheduler(
        circuits,
        engine=engine,
        order=order,
        jobs=jobs,
        max_seconds=max_seconds,
        max_live_nodes=max_live_nodes,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        fallback=fallback,
        policy=policy,
        isolate=isolate,
        max_rss_mb=max_rss_mb,
        journal=journal,
        count_states=count_states,
        trace_dir=trace_dir,
        sanitize=sanitize,
        total_seconds=total_seconds,
        total_rss_mb=total_rss_mb,
        bench_path=bench_path,
        cell_faults=cell_faults,
        registry=registry,
    ).run()

"""Process isolation: run an attempt in a watched child process.

The paper's Table 2 jobs run for hours under hard budgets where T.O. and
M.O. are *results*, not errors.  The :class:`Supervisor` makes that
robust end-to-end: an engine attempt executes in a child process, and
every way it can go wrong — a crash, a SIGKILL from the OOM killer, a
hang, runaway RSS — comes back to the caller as a tagged
:class:`repro.reach.ReachResult` failure instead of taking the parent
down.  Combined with per-iteration checkpoints, a killed attempt can be
resumed from where it died.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Optional

from ..reach import ReachResult
from .worker import AttemptSpec, child_main


def rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` via /proc, or None if unavailable."""
    try:
        with open("/proc/%d/status" % pid) as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


class Supervisor:
    """Runs attempts in isolated child processes under watchdogs.

    Parameters
    ----------
    poll_interval:
        Seconds between watchdog checks of the child.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux), else the platform default.
    """

    def __init__(
        self,
        poll_interval: float = 0.05,
        start_method: Optional[str] = None,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.poll_interval = poll_interval

    def run(
        self,
        spec: AttemptSpec,
        budget_seconds: Optional[float] = None,
        max_rss_bytes: Optional[int] = None,
        cancel: Optional[object] = None,
        on_poll: Optional[object] = None,
    ) -> ReachResult:
        """Run one attempt; never raises for child-side failures.

        ``budget_seconds`` is the wall-clock watchdog (a backstop above
        the engine's own ``max_seconds`` self-limit); ``max_rss_bytes``
        is the child RSS ceiling, enforced by polling ``/proc`` — the
        1-GB analogue of the paper's memory budget, but covering the
        whole interpreter rather than just live BDD nodes.

        ``cancel`` is an optional cooperative cancellation flag (see
        :class:`repro.harness.scheduler.CancelToken`: ``is_set()`` plus
        a ``reason`` failure code) checked every watchdog poll — the
        parallel scheduler uses it for global-deadline, global-RSS, and
        speculation kills.  ``on_poll(pid, rss_bytes_or_None)`` is
        invoked once per poll so a caller can aggregate RSS across a
        worker pool.
        """
        workdir = tempfile.mkdtemp(prefix="repro-supervise-")
        result_path = os.path.join(workdir, "result.json")
        process = self._context.Process(
            target=child_main,
            args=(spec.to_dict(), result_path),
            daemon=True,
        )
        start = time.monotonic()
        process.start()
        killed: Optional[str] = None
        peak_rss = 0
        try:
            while process.is_alive():
                elapsed = time.monotonic() - start
                if cancel is not None and cancel.is_set():
                    killed = getattr(cancel, "reason", None) or "cancelled"
                    process.kill()
                    break
                if budget_seconds is not None and elapsed > budget_seconds:
                    killed = "time"
                    process.kill()
                    break
                rss = rss_bytes(process.pid)
                if on_poll is not None:
                    on_poll(process.pid, rss)
                if rss is not None and rss > peak_rss:
                    peak_rss = rss
                if (
                    max_rss_bytes is not None
                    and rss is not None
                    and rss > max_rss_bytes
                ):
                    killed = "memory"
                    process.kill()
                    break
                process.join(self.poll_interval)
            process.join()
            elapsed = time.monotonic() - start
            supervisor_info = {
                "isolated": True,
                "elapsed": elapsed,
                "exitcode": process.exitcode,
                "peak_rss_bytes": peak_rss or None,
            }
            if killed is not None:
                supervisor_info["killed"] = killed
            if process.exitcode is not None and process.exitcode < 0:
                supervisor_info["signal"] = -process.exitcode
            if killed is None and process.exitcode == 0:
                try:
                    with open(result_path) as handle:
                        data = json.load(handle)
                    result = ReachResult.from_dict(data)
                    result.extra["supervisor"] = supervisor_info
                    return result
                except (OSError, ValueError, TypeError, KeyError):
                    killed = None  # fall through to a crash result
            failure = killed or "crash"
            return ReachResult(
                engine=spec.engine,
                circuit=spec.circuit,
                order=spec.order,
                completed=False,
                failure=failure,
                seconds=elapsed,
                extra={"supervisor": supervisor_info},
            )
        finally:
            if process.is_alive():  # pragma: no cover - safety net
                process.kill()
                process.join()
            shutil.rmtree(workdir, ignore_errors=True)

"""Process isolation: run an attempt in a watched child process.

The paper's Table 2 jobs run for hours under hard budgets where T.O. and
M.O. are *results*, not errors.  The :class:`Supervisor` makes that
robust end-to-end: an engine attempt executes in a child process, and
every way it can go wrong — a crash, a SIGKILL from the OOM killer, a
hang, runaway RSS — comes back to the caller as a tagged
:class:`repro.reach.ReachResult` failure instead of taking the parent
down.  Combined with per-iteration checkpoints, a killed attempt can be
resumed from where it died.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..reach import ReachResult
from .worker import AttemptSpec, child_main


@dataclass
class RetryPolicy:
    """Exponential backoff for transient supervisor-path failures.

    Worker-spawn failures (``fork`` hitting a transient ``OSError``
    under pid/memory pressure) and child crashes without a result file
    are retried up to ``retries`` times with exponentially growing,
    jittered delays.  Deterministic budget outcomes (``time`` /
    ``memory`` / ``cancelled`` / …) are *never* retried — they are
    results.  Once the cap is hit the last failure is journaled and
    returned; the caller never hangs on a permanently broken spawn path.
    """

    retries: int = 2
    backoff_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    #: Fraction of the delay added as uniform random jitter, decorrelating
    #: a pool's worth of retries so they do not stampede the same
    #: resource that caused the failure.
    jitter: float = 0.25
    #: Failure codes considered transient.
    transient: Tuple[str, ...] = ("crash",)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay before retry number ``attempt`` (0-based)."""
        base = min(
            self.backoff_cap,
            self.backoff_seconds * self.backoff_factor ** attempt,
        )
        return base * (1.0 + self.jitter * rng.random())


def rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` via /proc, or None if unavailable."""
    try:
        with open("/proc/%d/status" % pid) as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


class Supervisor:
    """Runs attempts in isolated child processes under watchdogs.

    Parameters
    ----------
    poll_interval:
        Seconds between watchdog checks of the child.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux), else the platform default.
    """

    def __init__(
        self,
        poll_interval: float = 0.05,
        start_method: Optional[str] = None,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.poll_interval = poll_interval

    def run(
        self,
        spec: AttemptSpec,
        budget_seconds: Optional[float] = None,
        max_rss_bytes: Optional[int] = None,
        cancel: Optional[object] = None,
        on_poll: Optional[object] = None,
    ) -> ReachResult:
        """Run one attempt; never raises for child-side failures.

        ``budget_seconds`` is the wall-clock watchdog (a backstop above
        the engine's own ``max_seconds`` self-limit); ``max_rss_bytes``
        is the child RSS ceiling, enforced by polling ``/proc`` — the
        1-GB analogue of the paper's memory budget, but covering the
        whole interpreter rather than just live BDD nodes.

        ``cancel`` is an optional cooperative cancellation flag (see
        :class:`repro.harness.scheduler.CancelToken`: ``is_set()`` plus
        a ``reason`` failure code) checked every watchdog poll — the
        parallel scheduler uses it for global-deadline, global-RSS, and
        speculation kills.  ``on_poll(pid, rss_bytes_or_None)`` is
        invoked once per poll so a caller can aggregate RSS across a
        worker pool.
        """
        workdir = tempfile.mkdtemp(prefix="repro-supervise-")
        result_path = os.path.join(workdir, "result.json")
        process = self._context.Process(
            target=child_main,
            args=(spec.to_dict(), result_path),
            daemon=True,
        )
        start = time.monotonic()
        process.start()
        killed: Optional[str] = None
        peak_rss = 0
        try:
            while process.is_alive():
                elapsed = time.monotonic() - start
                if cancel is not None and cancel.is_set():
                    killed = getattr(cancel, "reason", None) or "cancelled"
                    process.kill()
                    break
                if budget_seconds is not None and elapsed > budget_seconds:
                    killed = "time"
                    process.kill()
                    break
                rss = rss_bytes(process.pid)
                if on_poll is not None:
                    on_poll(process.pid, rss)
                if rss is not None and rss > peak_rss:
                    peak_rss = rss
                if (
                    max_rss_bytes is not None
                    and rss is not None
                    and rss > max_rss_bytes
                ):
                    killed = "memory"
                    process.kill()
                    break
                process.join(self.poll_interval)
            process.join()
            elapsed = time.monotonic() - start
            supervisor_info = {
                "isolated": True,
                "elapsed": elapsed,
                "exitcode": process.exitcode,
                "peak_rss_bytes": peak_rss or None,
            }
            if killed is not None:
                supervisor_info["killed"] = killed
            if process.exitcode is not None and process.exitcode < 0:
                supervisor_info["signal"] = -process.exitcode
            if killed is None and process.exitcode == 0:
                try:
                    with open(result_path) as handle:
                        data = json.load(handle)
                    result = ReachResult.from_dict(data)
                    result.extra["supervisor"] = supervisor_info
                    return result
                except (OSError, ValueError, TypeError, KeyError):
                    killed = None  # fall through to a crash result
            failure = killed or "crash"
            return ReachResult(
                engine=spec.engine,
                circuit=spec.circuit,
                order=spec.order,
                completed=False,
                failure=failure,
                seconds=elapsed,
                extra={"supervisor": supervisor_info},
            )
        finally:
            if process.is_alive():  # pragma: no cover - safety net
                process.kill()
                process.join()
            shutil.rmtree(workdir, ignore_errors=True)

    def run_with_retry(
        self,
        spec: AttemptSpec,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[object] = None,
        rng: Optional[random.Random] = None,
        sleep=time.sleep,
        **run_kwargs,
    ) -> ReachResult:
        """:meth:`run` with bounded, jittered retries of transient failures.

        Retried failures are worker-spawn errors (an ``OSError`` out of
        ``Process.start``, absorbed into a ``crash``-tagged result) and
        any failure code in ``policy.transient`` — by default only
        ``crash``, the code for a child that died without reporting.
        Cooperative cancellation short-circuits the loop: a set
        ``cancel`` token means the caller no longer wants the result,
        so the failure is returned as-is.

        Every retry appends a ``retry`` record to ``journal`` (a
        :class:`repro.harness.journal.RunJournal`, optional); exhausting
        the cap appends ``retry_exhausted`` and *returns* the last
        failure instead of raising — a downgrade, never a hang.
        """
        policy = policy or RetryPolicy()
        # Deterministic default jitter stream: reproducible tests, while
        # a pool passing its own seeded rng still decorrelates workers.
        rng = rng or random.Random(0x5EED)
        cancel = run_kwargs.get("cancel")
        result: Optional[ReachResult] = None
        for attempt in range(policy.retries + 1):
            try:
                result = self.run(spec, **run_kwargs)
            except OSError as error:
                result = ReachResult(
                    engine=spec.engine,
                    circuit=spec.circuit,
                    order=spec.order,
                    completed=False,
                    failure="crash",
                    extra={
                        "spawn_error": "%s: %s"
                        % (type(error).__name__, error)
                    },
                )
            if result.completed or result.failure not in policy.transient:
                return result
            if cancel is not None and cancel.is_set():
                return result
            if attempt == policy.retries:
                break
            delay = policy.delay(attempt, rng)
            if journal is not None:
                journal.append(
                    {
                        "event": "retry",
                        "circuit": spec.circuit,
                        "engine": spec.engine,
                        "order": spec.order,
                        "failure": result.failure,
                        "attempt": attempt + 1,
                        "of": policy.retries + 1,
                        "delay_seconds": delay,
                        "spawn_error": result.extra.get("spawn_error"),
                    }
                )
            sleep(delay)
        if journal is not None:
            journal.append(
                {
                    "event": "retry_exhausted",
                    "circuit": spec.circuit,
                    "engine": spec.engine,
                    "order": spec.order,
                    "failure": result.failure,
                    "attempts": policy.retries + 1,
                }
            )
        result.extra["retries_exhausted"] = policy.retries + 1
        return result

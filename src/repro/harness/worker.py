"""Attempt execution: one engine run described by a picklable spec.

:class:`AttemptSpec` is the unit of work the harness schedules — it
names a circuit (built-in name or ``.bench`` path, resolved on the
worker side so no netlist crosses the process boundary), an engine, an
order family, resource limits, and checkpoint/fault settings.
:func:`run_attempt` executes one spec in the current process;
:func:`child_main` is the :class:`repro.harness.supervisor.Supervisor`'s
child-process entry point, reporting the result as a JSON file.
"""

from __future__ import annotations

import json
import os
import stat
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..circuits.catalog import resolve
from ..obs import file_tracer
from ..order import order_for
from ..persist import fsync_dir
from ..reach import ENGINES, ReachLimits, ReachResult
from ..reach.common import RunMonitor
from . import faults as _faults
from .checkpoint import Checkpointer

#: Exit status of a child that noticed its supervisor vanished.
ORPHAN_EXIT_CODE = 86

#: Env var carrying a sanitizer rate across the supervised-child
#: boundary (mirrors how ``trace_dir`` rides the spec): a float in
#: (0, 1], or ``1`` for every-iteration auditing.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"


def sanitize_rate_for(spec: AttemptSpec, environ=None) -> Optional[float]:
    """The spec's sanitizer rate, falling back to ``REPRO_SANITIZE``."""
    if spec.sanitize is not None:
        return spec.sanitize
    environ = os.environ if environ is None else environ
    raw = environ.get(SANITIZE_ENV_VAR)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            "unparsable %s value %r (want a rate in (0, 1])"
            % (SANITIZE_ENV_VAR, raw)
        )


@dataclass
class AttemptSpec:
    """One reachability attempt, serializable across processes."""

    circuit: str
    engine: str = "bfv"
    order: str = "S1"
    max_seconds: Optional[float] = None
    max_live_nodes: Optional[int] = None
    max_iterations: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 1
    keep_checkpoints: int = 3
    resume: bool = False
    count_states: bool = True
    #: Directory for per-iteration trace JSONL (see :mod:`repro.obs`);
    #: None disables tracing (the engines see the null tracer).
    trace_dir: Optional[str] = None
    #: Sanitizer sampling rate in (0, 1] (see
    #: :mod:`repro.analysis.sanitizer`); None disables auditing.  The
    #: ``REPRO_SANITIZE`` env var supplies a fallback rate on the
    #: worker side, crossing the supervised-child boundary.
    sanitize: Optional[float] = None
    #: Fault plan installed before the run (tests only); see
    #: :mod:`repro.harness.faults`.
    faults: Optional[List[Dict[str, object]]] = None

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AttemptSpec":
        names = {spec.name for spec in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in data.items() if k in names})


def checkpointer_for(spec: AttemptSpec, circuit_name: str) -> Optional[Checkpointer]:
    """The spec's checkpointer, or None when checkpointing is off."""
    if not spec.checkpoint_dir:
        return None
    return Checkpointer(
        spec.checkpoint_dir,
        engine=spec.engine,
        circuit=circuit_name,
        order=spec.order,
        interval=spec.checkpoint_interval,
        keep=spec.keep_checkpoints,
        resume=spec.resume,
    )


def run_attempt(spec: AttemptSpec, registry=None) -> ReachResult:
    """Execute one attempt in the current process.

    Budget exhaustion comes back as a tagged :class:`ReachResult` (the
    engines convert ``ResourceLimitError`` internally); anything else —
    a hard ``MemoryError``, a wedged iteration, a killed process — is
    the supervisor's job to absorb.  ``registry`` (a
    :class:`repro.obs.MetricsRegistry`) feeds live histograms/gauges for
    *in-process* attempts; supervised children keep their own process's
    registry, which dies with them — their live signal is the trace
    JSONL the parent tails.
    """
    if spec.engine not in ENGINES:
        raise ValueError("unknown engine %r" % spec.engine)
    plan = _faults.FaultPlan(spec.faults).install() if spec.faults else None
    tracer = None
    try:
        circuit = resolve(spec.circuit)
        slots = order_for(circuit, spec.order)
        limits = ReachLimits(
            max_seconds=spec.max_seconds,
            max_live_nodes=spec.max_live_nodes,
            max_iterations=spec.max_iterations,
        )
        checkpointer = checkpointer_for(spec, circuit.name)
        if spec.trace_dir:
            tracer = file_tracer(
                spec.trace_dir,
                spec.engine,
                spec.order,
                circuit.name,
                registry=registry,
            )
        elif registry is not None:
            from ..obs import Tracer

            tracer = Tracer(registry=registry)
            tracer.bind(
                engine=spec.engine, order=spec.order, circuit=circuit.name
            )
        result = ENGINES[spec.engine](
            circuit,
            slots=slots,
            limits=limits,
            order_name=spec.order,
            count_states=spec.count_states,
            checkpointer=checkpointer,
            tracer=tracer,
            sanitize=sanitize_rate_for(spec),
        )
        if checkpointer is not None and checkpointer.skipped:
            result.extra["checkpoints_skipped"] = [
                path for path, _ in checkpointer.skipped
            ]
        return result
    finally:
        if tracer is not None:
            tracer.close()
        if plan is not None:
            plan.uninstall()


def install_orphan_guard() -> None:
    """Exit the child if its supervising parent process disappears.

    Supervised children are daemonic, but ``SIGKILL`` of the parent
    (e.g. the serve process dying mid-run, or the kill-resume soak test)
    skips the multiprocessing atexit cleanup and would leave the engine
    running forever under init.  This registers a per-iteration hook
    that notices the re-parenting (``getppid`` changed) and exits with
    :data:`ORPHAN_EXIT_CODE` — the last checkpoint written is exactly
    the state the restarted server resumes from.
    """
    parent = os.getppid()

    def _orphan_guard(monitor: RunMonitor, iteration: int) -> None:
        if os.getppid() != parent:
            os._exit(ORPHAN_EXIT_CODE)

    RunMonitor.iteration_hooks.append(_orphan_guard)


def _close_inherited_sockets() -> None:
    """Close every socket fd a forked engine child inherited.

    An engine child needs no network, but ``fork`` duplicates the
    serving process's listener and accepted-connection fds into it.
    Those duplicates keep TCP connections half-open for as long as an
    attempt runs: a client that disconnects is not seen to disconnect
    (its FIN is ignored while a dup of the socket survives here), and
    a closed server keeps its port busy.  Only sockets are closed —
    multiprocessing's pipes and the result/checkpoint files stay up.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - no /proc
        return
    for fd in fds:
        if fd <= 2:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _disarm_inherited_executors() -> None:
    """Drop executor shutdown hooks a forked child inherited.

    A child forked from a ``ThreadPoolExecutor`` dispatcher thread (the
    serve layer's worker pool) inherits the executor's atexit hook,
    which joins worker threads at interpreter shutdown — but after the
    fork the dispatcher thread *is* this child's main thread, so the
    join raises ``cannot join current thread`` and turns every clean
    exit into exitcode 1.  The inherited threads do not exist in the
    child anyway; forget them.
    """
    try:
        import concurrent.futures.thread as cf_thread

        cf_thread._threads_queues.clear()
    except (ImportError, AttributeError):  # pragma: no cover - stdlib drift
        pass


def child_main(spec_dict: Dict[str, object], result_path: str) -> None:
    """Supervisor child entry: run the attempt, report JSON, exit.

    Crashes simply propagate — a nonzero exit status (or a kill signal)
    is itself the report, which the supervisor converts into a tagged
    failure result.
    """
    _disarm_inherited_executors()
    _close_inherited_sockets()
    _faults.install_from_env()
    install_orphan_guard()
    spec = AttemptSpec.from_dict(spec_dict)
    result = run_attempt(spec)
    tmp = result_path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(result.to_dict(), handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, result_path)
    fsync_dir(result_path)

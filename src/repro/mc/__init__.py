"""Safety model checking on Boolean functional vectors.

The paper's conclusion lists "a symbolic simulation based model
checker" as future work; this package implements its simplest useful
form — invariant (AG) checking — on top of the BFV reachability engine:
the reached set stays a canonical vector throughout, the property check
is a containment query on vectors, and counterexamples are produced as
concrete input traces by walking the onion rings of the traversal
backwards (each step is re-validated against the gate-level simulator).
"""

from .bmc import BMCResult, bounded_check
from .checker import CheckResult, Trace, check_invariant, output_never_high
from .equivalence import check_equivalence, distinguishing_inputs
from .properties import exactly_one, implication, never_all, state_predicate

__all__ = [
    "BMCResult",
    "CheckResult",
    "bounded_check",
    "Trace",
    "check_equivalence",
    "check_invariant",
    "distinguishing_inputs",
    "exactly_one",
    "implication",
    "never_all",
    "output_never_high",
    "state_predicate",
]

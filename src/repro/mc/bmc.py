"""Bounded model checking by symbolic unrolling.

The complement to the unbounded engines: instead of a fix point over
sets, unroll the circuit ``k`` times with *fresh input variables per
step* and evaluate the property at every depth.  The state after step
``j`` is a vector of BDDs over inputs ``x@0 .. x@j`` — exactly the raw
vectors that the paper's re-parameterization canonicalizes, used here
directly (no set representation needed for a bounded query).

Finds shortest counterexamples by construction and needs no fix-point
test; the trade-off is the growing input-variable count.  Agreement
with the unbounded checker is part of the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd import BDD
from ..circuits.netlist import Circuit
from ..errors import ReproError
from ..sim.concrete import ConcreteSimulator
from ..sim.symbolic import SymbolicSimulator
from .checker import OutputProperty, Trace


@dataclass
class BMCResult:
    """Outcome of a bounded check up to ``depth`` steps."""

    holds_up_to_depth: bool
    depth: int
    violation_depth: Optional[int] = None
    counterexample: Optional[Trace] = None
    extra: Dict[str, object] = field(default_factory=dict)


def bounded_check(
    circuit: Circuit,
    prop,
    depth: int,
    bdd: Optional[BDD] = None,
) -> BMCResult:
    """Check ``AG(prop)`` along all paths of length up to ``depth``.

    ``prop`` is a property callable ``(bdd, state_var_of) -> good chi``
    or an :class:`repro.mc.checker.OutputProperty`.  On a violation,
    returns the *shortest* counterexample as a concrete, simulator
    validated input trace.
    """
    circuit.validate()
    if depth < 0:
        raise ReproError("depth must be non-negative")
    if bdd is None:
        bdd = BDD()
    simulator = SymbolicSimulator(bdd, circuit)
    # Property evaluation needs state variables; declare one per latch
    # purely to build the property BDD, then substitute per unrolling.
    state_var_of = {
        net: bdd.add_var("s_" + net) for net in circuit.latches
    }
    input_templates = list(circuit.inputs)
    if isinstance(prop, OutputProperty):
        good_builder = None
    else:
        good = prop(bdd, state_var_of)
        good_builder = good

    # State after step j, as BDDs over the step-input variables.
    state: Dict[str, int] = {
        net: (bdd.true if latch.init else bdd.false)
        for net, latch in circuit.latches.items()
    }
    step_inputs: List[Dict[str, int]] = []
    violation = None  # (depth, bad-condition BDD, input vars used)
    for step in range(depth + 1):
        bad = _bad_now(
            bdd, circuit, simulator, state, prop, good_builder, state_var_of
        )
        if bad != bdd.false:
            violation = (step, bad)
            break
        if step == depth:
            break
        fresh = {
            net: bdd.add_var("%s@%d" % (net, step))
            for net in input_templates
        }
        step_inputs.append(fresh)
        drivers = {net: bdd.var(v) for net, v in fresh.items()}
        drivers.update(state)
        next_values = simulator.next_state(drivers)
        state = dict(zip(circuit.latches, next_values))

    if violation is None:
        return BMCResult(holds_up_to_depth=True, depth=depth)
    violation_depth, bad = violation
    model = bdd.pick_model(bad) or {}
    trace_inputs: List[Dict[str, bool]] = []
    for step, fresh in enumerate(step_inputs[:violation_depth]):
        trace_inputs.append(
            {
                net: bool(model.get("%s@%d" % (net, step), False))
                for net in input_templates
            }
        )
    trace = _concretize(circuit, trace_inputs)
    result = BMCResult(
        holds_up_to_depth=False,
        depth=depth,
        violation_depth=violation_depth,
        counterexample=trace,
    )
    result.extra["bad_condition"] = bad
    return result


def _bad_now(
    bdd, circuit, simulator, state, prop, good_builder, state_var_of
) -> int:
    """Violation condition at the current unrolling depth."""
    if isinstance(prop, OutputProperty):
        # Output properties quantify the *current* step's inputs too:
        # violated if some input raises the output now.
        fresh = {net: bdd.add_var(None) for net in circuit.inputs}
        drivers = {net: bdd.var(v) for net, v in fresh.items()}
        drivers.update(state)
        outputs = simulator.outputs(drivers)
        if prop.net not in outputs:
            raise ReproError("no such output net %r" % prop.net)
        return bdd.exists(list(fresh.values()), outputs[prop.net])
    substituted = bdd.vector_compose(
        good_builder,
        {state_var_of[net]: node for net, node in state.items()},
    )
    return bdd.not_(substituted)


def _concretize(circuit: Circuit, inputs: List[Dict[str, bool]]) -> Trace:
    """Replay the inputs to produce (and validate) the state sequence."""
    simulator = ConcreteSimulator(circuit)
    declaration = list(circuit.latches)
    current = circuit.initial_state
    states = [dict(zip(declaration, current))]
    for step in inputs:
        current = simulator.step(current, step)
        states.append(dict(zip(declaration, current)))
    return Trace(states=states, inputs=inputs)

"""Invariant checking with counterexample traces.

``check_invariant`` runs a Figure-2-style traversal that keeps the
*onion rings* ``R_0 = {init}``, ``R_k = image(R_{k-1})`` as canonical
BFVs, testing each new ring against the bad states by vector
intersection.  On a violation, a concrete input trace is reconstructed
by walking the rings backwards (one SAT query per step over the
transition functions) and re-validated with the gate-level simulator,
so a returned counterexample is guaranteed real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bfv import BFV, from_characteristic, to_characteristic
from ..bfv.ops import intersect
from ..bfv.reparam import eliminate_params
from ..errors import ReproError, ResourceLimitError
from ..reach.common import ReachLimits, ReachSpace, RunMonitor
from ..sim.concrete import ConcreteSimulator
from ..sim.symbolic import SymbolicSimulator


@dataclass
class Trace:
    """A concrete counterexample: ``states[0]`` is the initial state,
    ``inputs[j]`` drives the step from ``states[j]`` to ``states[j+1]``,
    and the final state violates the invariant."""

    states: List[Dict[str, bool]]
    inputs: List[Dict[str, bool]]

    def __len__(self) -> int:
        return len(self.inputs)


@dataclass
class CheckResult:
    """Outcome of an invariant check."""

    holds: bool
    completed: bool = True
    failure: Optional[str] = None
    iterations: int = 0
    seconds: float = 0.0
    num_states: Optional[int] = None
    counterexample: Optional[Trace] = None
    extra: Dict[str, object] = field(default_factory=dict)


class OutputProperty:
    """AG(output stays low): no reachable state lets any input raise it."""

    def __init__(self, net: str) -> None:
        self.net = net


def output_never_high(net: str) -> OutputProperty:
    """Property: primary output ``net`` is never high, for any input."""
    return OutputProperty(net)


def _bad_states_chi(space: ReachSpace, simulator, prop) -> int:
    """Characteristic function of the states violating the property."""
    bdd = space.bdd
    if isinstance(prop, OutputProperty):
        drivers = {net: bdd.var(v) for net, v in space.input_var.items()}
        drivers.update(
            {net: bdd.var(v) for net, v in space.state_var.items()}
        )
        outputs = simulator.outputs(drivers)
        if prop.net not in outputs:
            raise ReproError("no such output net %r" % prop.net)
        return bdd.exists(space.x_vars, outputs[prop.net])
    good = prop(bdd, dict(space.state_var))
    return bdd.not_(good)


def check_invariant(
    circuit,
    prop,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    schedule: str = "support",
    produce_trace: bool = True,
    count_states: bool = False,
) -> CheckResult:
    """Check ``AG(prop)`` on ``circuit`` from its initial state.

    ``prop`` is either a property callable ``(bdd, state_var_of) ->
    good-states chi`` (see :mod:`repro.mc.properties`) or an
    :class:`OutputProperty`.  Returns a :class:`CheckResult`; when the
    invariant fails and ``produce_trace`` is set, the result carries a
    simulator-validated counterexample :class:`Trace`.
    """
    space = ReachSpace(circuit, slots)
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    monitor = RunMonitor(bdd, limits)
    result = CheckResult(holds=True)

    bad_chi = bdd.incref(_bad_states_chi(space, simulator, prop))
    if bad_chi == bdd.false:
        # Property holds vacuously over the whole state space.
        return result
    bad_vec = from_characteristic(bdd, space.s_vars, bad_chi)

    input_drivers = {
        net: bdd.incref(bdd.var(v)) for net, v in space.input_var.items()
    }
    params = list(space.s_vars) + list(space.x_vars)
    latch_order = list(circuit.latches)
    rename_map = dict(zip(space.t_vars, space.s_vars))

    rings: List[BFV] = [BFV.point(bdd, space.s_vars, space.initial_point)]
    reached = rings[0]
    violation_point = None
    try:
        while True:
            ring = rings[-1]
            hit = intersect(ring, bad_vec)
            if not hit.is_empty:
                result.holds = False
                violation_point = next(hit.enumerate())
                break
            # Image of the current ring (Fig 2: simulate, reparameterize).
            drivers = dict(input_drivers)
            for net, comp in zip(space.state_order, ring.components):
                drivers[net] = comp
            raw_by_latch = simulator.next_state(drivers)
            by_net = dict(zip(latch_order, raw_by_latch))
            raw = [by_net[n] for n in space.state_order]
            image_t = eliminate_params(
                bdd, space.t_vars, raw, params, schedule
            )
            image = BFV(
                bdd,
                space.s_vars,
                [bdd.rename(f, rename_map) for f in image_t],
                validate=False,
            )
            result.iterations += 1
            new_reached = image.union(reached)
            if new_reached == reached:
                break  # fix point: every reachable state is good
            reached = new_reached
            rings.append(image)
            monitor.checkpoint((), result.iterations)
    except ResourceLimitError as error:
        result.completed = False
        result.failure = error.kind
        result.holds = False  # unknown, conservatively not proven
    result.seconds = monitor.elapsed
    if count_states:
        result.num_states = reached.count()
    result.extra["space"] = space
    result.extra["reached"] = reached
    if violation_point is not None and produce_trace:
        result.counterexample = _reconstruct_trace(
            space, circuit, rings, violation_point
        )
    return result


def _reconstruct_trace(
    space: ReachSpace, circuit, rings: Sequence[BFV], violation_point
) -> Trace:
    """Walk the onion rings backwards to a concrete input trace."""
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    drivers = {net: bdd.var(v) for net, v in space.input_var.items()}
    drivers.update({net: bdd.var(v) for net, v in space.state_var.items()})
    deltas_by_latch = simulator.next_state(drivers)
    by_net = dict(zip(circuit.latches, deltas_by_latch))
    deltas = [by_net[n] for n in space.state_order]

    target = tuple(violation_point)
    depth = len(rings) - 1
    states = [dict(zip(space.state_order, target))]
    inputs: List[Dict[str, bool]] = []
    for step in range(depth, 0, -1):
        # Find (s in ring_{step-1}, x) with delta(s, x) == target.
        constraint = to_characteristic(rings[step - 1])
        for delta, value in zip(deltas, target):
            literal = delta if value else bdd.not_(delta)
            constraint = bdd.and_(constraint, literal)
        model = bdd.pick_model(
            constraint, care_vars=list(space.s_vars) + list(space.x_vars)
        )
        if model is None:  # pragma: no cover - rings guarantee a predecessor
            raise ReproError("trace reconstruction failed")
        state = {
            net: model["s_" + net] for net in space.state_order
        }
        step_inputs = {
            net: model["x_" + net] for net in space.input_var
        }
        states.append(state)
        inputs.append(step_inputs)
        target = tuple(state[net] for net in space.state_order)
    states.reverse()
    inputs.reverse()
    trace = Trace(states=states, inputs=inputs)
    _validate_trace(circuit, space, trace, violation_point)
    return trace


def _validate_trace(circuit, space, trace: Trace, violation_point) -> None:
    """Replay the trace on the gate-level simulator (defense in depth)."""
    simulator = ConcreteSimulator(circuit)
    declaration = list(circuit.latches)
    current = tuple(trace.states[0][net] for net in declaration)
    if current != circuit.initial_state:
        raise ReproError("counterexample does not start at the initial state")
    for step_inputs, next_state in zip(trace.inputs, trace.states[1:]):
        current = simulator.step(current, step_inputs)
        expected = tuple(next_state[net] for net in declaration)
        if current != expected:
            raise ReproError("counterexample failed simulator replay")
    final = dict(zip(declaration, current))
    expected_final = {
        net: value
        for net, value in zip(space.state_order, violation_point)
    }
    if any(final[net] != expected_final[net] for net in expected_final):
        raise ReproError("counterexample does not end in the bad state")

"""Sequential equivalence checking on the BFV reachability engine.

Two circuits with the same input/output interface are *sequentially
equivalent* (from their reset states) when no input sequence can make
their outputs differ.  This reduces to an invariant on the miter
product machine — the historical home turf of symbolic reachability
(Coudert-Berthet-Madre [6]) and a direct application of the paper's
set algorithms.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits.compose import miter
from ..circuits.netlist import Circuit
from ..reach.common import ReachLimits
from .checker import CheckResult, check_invariant, output_never_high


def check_equivalence(
    left: Circuit,
    right: Circuit,
    limits: Optional[ReachLimits] = None,
    produce_trace: bool = True,
) -> CheckResult:
    """Check sequential equivalence of ``left`` and ``right``.

    Returns a :class:`repro.mc.checker.CheckResult`: ``holds`` means no
    reachable miter state lets any input raise an output mismatch.  On
    inequivalence the counterexample trace is a distinguishing input
    sequence (already validated against the gate-level simulator of the
    miter); replaying it on the two original circuits yields differing
    outputs on the final step.
    """
    combined = miter(left, right)
    result = check_invariant(
        combined,
        output_never_high("mismatch"),
        limits=limits,
        produce_trace=produce_trace,
    )
    result.extra["miter"] = combined
    return result


def distinguishing_inputs(result: CheckResult) -> Sequence[dict]:
    """The input sequence that tells the two machines apart.

    Convenience accessor: the trace drives both machines from reset;
    after its last step, some output differs for a suitable final input
    (the mismatch is an *output* property, so the discrepancy shows on
    the cycle after the final trace state — callers replaying the trace
    should compare outputs under all input values at the end).
    """
    if result.holds or result.counterexample is None:
        raise ValueError("result carries no counterexample")
    return result.counterexample.inputs

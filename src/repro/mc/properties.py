"""Property constructors for the invariant checker.

A *property* is a callable ``(bdd, state_var_of) -> node`` producing the
characteristic function of the good states over the current-state
variables; ``state_var_of`` maps state net names to variable indices.
These helpers build the common shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

Property = Callable[[object, Dict[str, int]], int]


def state_predicate(predicate: Callable[[Dict[str, bool]], bool]) -> Property:
    """Lift a Python predicate over state-bit dictionaries to a property.

    The predicate is evaluated on every minterm — exact but exponential
    in the number of state bits; intended for small circuits and tests.
    """

    def build(bdd, state_var_of: Dict[str, int]) -> int:
        import itertools

        nets = list(state_var_of)
        chi = bdd.false
        for values in itertools.product([False, True], repeat=len(nets)):
            assignment = dict(zip(nets, values))
            if predicate(assignment):
                cube = {state_var_of[n]: v for n, v in assignment.items()}
                chi = bdd.or_(chi, bdd.cube(cube))
        return chi

    return build


def exactly_one(nets: Iterable[str]) -> Property:
    """Mutual exclusion: exactly one of ``nets`` is high (one-hot)."""
    nets = list(nets)

    def build(bdd, state_var_of: Dict[str, int]) -> int:
        total = bdd.false
        for hot in nets:
            term = bdd.true
            for net in nets:
                literal = bdd.var(state_var_of[net])
                if net != hot:
                    literal = bdd.not_(literal)
                term = bdd.and_(term, literal)
            total = bdd.or_(total, term)
        return total

    return build


def never_all(nets: Iterable[str]) -> Property:
    """The listed nets are never simultaneously high."""
    nets = list(nets)

    def build(bdd, state_var_of: Dict[str, int]) -> int:
        all_high = bdd.conjoin(
            [bdd.var(state_var_of[net]) for net in nets]
        )
        return bdd.not_(all_high)

    return build


def implication(if_net: str, then_net: str) -> Property:
    """Whenever ``if_net`` is high, ``then_net`` is high too."""

    def build(bdd, state_var_of: Dict[str, int]) -> int:
        return bdd.implies(
            bdd.var(state_var_of[if_net]), bdd.var(state_var_of[then_net])
        )

    return build

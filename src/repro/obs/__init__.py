"""Observability: tracing and per-iteration metrics for reachability runs.

The paper's experimental story is about *trajectories* — the BFV
representation of the reached set staying small per image step while
the characteristic function blows up (Tables 2-3).  This package makes
those trajectories visible in our own runs:

* :class:`~repro.obs.tracer.Tracer` — monotonic-clock **phase spans**
  (``setup``, ``image``, ``reparam``, ``union``, ``fixpoint_test``,
  ``chi_conversion``, ``gc``, ``checkpoint``, nestable) and
  **per-iteration metric records** (frontier/reached representation
  sizes, chi size where one is built, kernel-invocation and
  computed-table deltas, live/allocated nodes, RSS);
* :class:`~repro.obs.tracer.NullTracer` — the zero-cost default: every
  engine accepts ``tracer=None`` and runs against a shared no-op
  singleton, so disabled tracing adds only a handful of no-op calls
  per iteration;
* :mod:`~repro.obs.sinks` — pluggable record sinks: in-memory
  collection for tests, JSONL files interoperable with
  :class:`repro.harness.journal.RunJournal`;
* :mod:`~repro.obs.report` — renders trace files as paper-style
  per-iteration trajectory tables and a phase-time breakdown (behind
  ``python -m repro trace``; imported lazily to keep this package
  import-light for :mod:`repro.reach.common`).

Engines roll the cumulative phase timing summary into
``ReachResult.extra["obs"]``, so even without a sink a traced run
reports where its time went.
"""

from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    phase_percentiles,
    snapshot_delta,
)
from .sinks import JsonlSink, MemorySink, NullSink, Sink, trace_filename
from .tail import JsonlTail
from .tracer import NULL_TRACER, NullTracer, Tracer, ensure_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "JsonlTail",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "Sink",
    "Tracer",
    "ensure_tracer",
    "file_tracer",
    "phase_percentiles",
    "snapshot_delta",
    "trace_filename",
]


def file_tracer(
    trace_dir: str, engine: str, order: str, circuit: str, registry=None
) -> Tracer:
    """A :class:`Tracer` writing JSONL records under ``trace_dir``.

    The file name follows the same ``<engine>-<order>-<circuit>`` tag
    convention as :class:`repro.harness.checkpoint.Checkpointer`, so one
    directory can hold the traces of a whole fallback ladder without
    collisions; records are appended, so a resumed run extends its
    earlier trace file.
    """
    import os

    sink = JsonlSink(
        os.path.join(trace_dir, trace_filename(engine, order, circuit))
    )
    tracer = Tracer(sink=sink, registry=registry)
    tracer.bind(engine=engine, order=order, circuit=circuit)
    return tracer

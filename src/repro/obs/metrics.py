"""Cheap metric snapshots for the tracer.

These helpers read process- and manager-level counters without going
through heavier public APIs, so a traced iteration pays one dict and a
few integer reads.  They deliberately avoid importing anything from
:mod:`repro.reach` or :mod:`repro.harness` (the tracer sits below both).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: Counter fields copied from ``BDD.cache_stats()['total']`` into
#: iteration records (as deltas) and summaries.
CACHE_FIELDS = ("hits", "misses", "inserts", "evictions", "swept")


def rss_self_bytes() -> Optional[int]:
    """Resident set size of the current process, or None off-Linux."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def manager_counters(bdd) -> Dict[str, int]:
    """Monotonic operation/cache counters of a BDD manager.

    Returns ``op_count`` / ``gc_count`` plus the aggregate computed-table
    counters; iteration records report the *delta* of two snapshots.
    """
    total = bdd.cache_stats()["total"]
    counters = {
        "op_count": bdd.op_count,
        "gc_count": bdd.gc_count,
    }
    for field in CACHE_FIELDS:
        counters["cache_" + field] = int(total[field])
    return counters


def counter_deltas(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Per-field ``after - before`` over matching counter keys."""
    return {key: after[key] - before.get(key, 0) for key in after}


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-quantile (0..1) of a sample, linearly interpolated.

    Used by the trace report's per-phase percentile table (exact, over
    stored samples); :class:`repro.obs.registry.Histogram` has its own
    bucket-interpolated estimate for the live path, where samples are
    not retained.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction

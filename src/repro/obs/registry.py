"""Live metrics registry: thread-safe counters, gauges, and histograms.

The tracer (:mod:`repro.obs.tracer`) is *per run*: it accumulates one
attempt's phase times and emits per-iteration records to a sink.  The
registry is the complementary *process-level* view — monotonic counters,
point-in-time gauges, and fixed-bucket histograms shared by every
component in the process (engines via their tracer, the worker pool, the
batch scheduler, the serve layer) and readable at any moment while work
is in flight:

* :class:`Counter` — monotonic; ``inc`` only.
* :class:`Gauge` — a settable level (queue depth, busy workers, live
  nodes); also supports string-valued *info* gauges for labels like a
  worker's current job key.
* :class:`Histogram` — fixed upper-bound buckets (cumulative, Prometheus
  style) with sum/count, plus quantile estimates interpolated within
  buckets — good enough for p50/p90 dashboards without storing samples.

Metrics are identified by ``(name, labels)``; :meth:`MetricsRegistry.counter`
and friends get-or-create, so call sites never coordinate registration.
:meth:`MetricsRegistry.snapshot` returns a JSON-safe dict with cheap
delta semantics (:func:`snapshot_delta`), and
:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format served by ``python -m repro serve --metrics-port``.

Cost model: a metric update is one dict lookup plus a few adds under a
per-metric lock — cheap enough for the engines' iteration cadence, and
*zero* when no registry is attached (the tracer guards every feed with
one ``is None`` test; tier-1 enforces <2% on the detached path, the same
budget as the null tracer).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .metrics import percentile

#: Default histogram bucket upper bounds (seconds): tuned for phase
#: self-times and iteration durations, from sub-millisecond BDD phases
#: to minutes-long saturation rounds.  The implicit +Inf bucket always
#: exists on top.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    15.0,
    60.0,
    300.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(labels: Labels, extra: Optional[str] = None) -> str:
    parts = ['%s="%s"' % (k, v.replace('"', '\\"')) for k, v in labels]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def metric_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Flat snapshot key: ``name`` or ``name{k="v",...}`` (sorted labels)."""
    return name + _labels_text(_labels_key(labels))


class Counter:
    """Monotonic counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A settable level; numeric, or a string for info-style gauges."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: object = 0

    def set(self, value: object) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value = (
                self._value if isinstance(self._value, (int, float)) else 0
            ) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> object:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count and quantile estimates.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the implicit +Inf bucket.  Bucket counts are stored
    per-bucket (not cumulative); :meth:`snapshot` cumulates them in the
    Prometheus convention.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count", "_max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1), interpolated within its bucket.

        The +Inf bucket is clamped to the observed maximum, so ``p100``
        degrades to ``max`` instead of infinity.
        """
        with self._lock:
            count = self._count
            counts = list(self._counts)
            maximum = self._max
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(counts):
            upper = (
                self.bounds[index] if index < len(self.bounds) else maximum
            )
            if seen + bucket_count >= rank and bucket_count > 0:
                fraction = (rank - seen) / bucket_count
                return min(lower + fraction * (upper - lower), maximum)
            seen += bucket_count
            lower = upper
        return maximum

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
            maximum = self._max
        cumulative = []
        running = 0
        for index, bucket_count in enumerate(counts):
            running += bucket_count
            bound = (
                self.bounds[index] if index < len(self.bounds) else "+Inf"
            )
            cumulative.append([bound, running])
        snap: Dict[str, object] = {
            "buckets": cumulative,
            "count": total,
            "sum": round(total_sum, 6),
            "max": round(maximum, 6),
        }
        if total:
            snap["p50"] = round(self.quantile(0.5), 6)
            snap["p90"] = round(self.quantile(0.9), 6)
            snap["p99"] = round(self.quantile(0.99), 6)
        return snap


class MetricsRegistry:
    """Process-level metric store with get-or-create access.

    Thread-safe throughout: creation races are resolved under one
    registry lock, updates under per-metric locks.  Intended use is one
    registry per serving process (:data:`REGISTRY` is the process-global
    default), with short-lived private instances in tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # ------------------------------------------------------------------
    # Access (get-or-create)
    # ------------------------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
        return metric

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe point-in-time view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name + _labels_text(labels): metric.value
                for (name, labels), metric in sorted(counters.items())
            },
            "gauges": {
                name + _labels_text(labels): metric.value
                for (name, labels), metric in sorted(gauges.items())
            },
            "histograms": {
                name + _labels_text(labels): metric.snapshot()
                for (name, labels), metric in sorted(histograms.items())
            },
        }

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (0.0.4) of the registry.

        Counter names gain a ``_total`` suffix unless they already have
        one; info gauges (string values) render as ``name{...,value="x"} 1``.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def _type_line(full: str, kind: str) -> None:
            if seen_types.get(full) != kind:
                seen_types[full] = kind
                lines.append("# TYPE %s %s" % (full, kind))

        for (name, labels), counter in counters:
            full = prefix + name
            if not full.endswith("_total"):
                full += "_total"
            _type_line(full, "counter")
            lines.append("%s%s %d" % (full, _labels_text(labels), counter.value))
        for (name, labels), gauge in gauges:
            full = prefix + name
            value = gauge.value
            _type_line(full, "gauge")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                lines.append("%s%s %g" % (full, _labels_text(labels), value))
            else:
                info = 'value="%s"' % str(value).replace('"', '\\"')
                lines.append("%s%s 1" % (full, _labels_text(labels, info)))
        for (name, labels), histogram in histograms:
            full = prefix + name
            _type_line(full, "histogram")
            snap = histogram.snapshot()
            for bound, cumulative in snap["buckets"]:
                le = "+Inf" if bound == "+Inf" else "%g" % bound
                lines.append(
                    "%s_bucket%s %d"
                    % (full, _labels_text(labels, 'le="%s"' % le), cumulative)
                )
            lines.append(
                "%s_sum%s %g" % (full, _labels_text(labels), snap["sum"])
            )
            lines.append(
                "%s_count%s %d" % (full, _labels_text(labels), snap["count"])
            )
        return "\n".join(lines) + "\n"


def snapshot_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Counter/histogram-count deltas between two registry snapshots.

    Gauges are levels, not rates — the ``after`` value is reported
    as-is.  Metrics absent from ``before`` count from zero.
    """
    before_counters = before.get("counters", {})
    after_counters = after.get("counters", {})
    before_histograms = before.get("histograms", {})
    after_histograms = after.get("histograms", {})
    return {
        "counters": {
            key: value - before_counters.get(key, 0)
            for key, value in after_counters.items()
            if isinstance(value, int)
        },
        "gauges": dict(after.get("gauges", {})),
        "histogram_counts": {
            key: snap.get("count", 0)
            - before_histograms.get(key, {}).get("count", 0)
            for key, snap in after_histograms.items()
            if isinstance(snap, dict)
        },
    }


def phase_percentiles(
    records: Iterable[Mapping[str, object]]
) -> Dict[str, Dict[str, float]]:
    """Per-phase self-time percentiles across iteration records.

    Reads the ``phases`` dict of each ``iteration`` record (the per-
    iteration exclusive self-times the tracer emits) and reduces each
    phase's sample list to ``p50`` / ``p90`` / ``max`` / ``n`` — the
    histogram view ``python -m repro trace`` and the serve ``trace`` op
    both report.
    """
    samples: Dict[str, List[float]] = {}
    for record in records:
        if record.get("event") != "iteration":
            continue
        phases = record.get("phases")
        if not isinstance(phases, dict):
            continue
        for phase, seconds in phases.items():
            if isinstance(seconds, (int, float)):
                samples.setdefault(str(phase), []).append(float(seconds))
    return {
        phase: {
            "p50": round(percentile(values, 0.5), 6),
            "p90": round(percentile(values, 0.9), 6),
            "max": round(max(values), 6),
            "n": len(values),
        }
        for phase, values in sorted(samples.items())
    }


#: Shared process-wide registry: the default every component feeds when
#: the caller does not supply its own (servers create private ones).
REGISTRY = MetricsRegistry()

"""Render trace files: per-iteration trajectory tables + phase breakdown.

This is the read side of the observability layer, behind
``python -m repro trace <path>``.  A trace path is a JSONL file written
by :class:`repro.obs.sinks.JsonlSink` (or a directory of them, e.g. a
``--trace-dir``); records are read with the journal reader, so torn
trailing lines from an in-flight or crashed run are tolerated.

The per-iteration table is the trajectory view the paper's Tables 2-3
aggregate away: representation sizes of the frontier and reached set at
every image step, next to the operation mix (kernel invocations,
computed-table hit rate) and memory (live nodes, RSS) that produced
them.  The phase breakdown reports *exclusive* span times, so nested
spans (a ``gc`` inside a ``checkpoint``) are not double-counted and the
phase total is directly comparable to the run's wall-clock seconds.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..harness.journal import RunJournal
from ..reach.report import format_grid
from .registry import phase_percentiles

#: Columns of the per-iteration table: (header, record key, formatter).
_NUM = "%d"


def _fmt_int(value) -> str:
    return _NUM % value if isinstance(value, (int, float)) else "-"


def _fmt_rate(value) -> str:
    return "%.1f%%" % (100.0 * value) if isinstance(value, (int, float)) else "-"


def _fmt_seconds(value) -> str:
    return "%.4f" % value if isinstance(value, (int, float)) else "-"


def _fmt_mb(value) -> str:
    return (
        "%.1f" % (value / (1024.0 * 1024.0))
        if isinstance(value, (int, float))
        else "-"
    )


_COLUMNS = (
    ("Iter", "iteration", _fmt_int),
    ("Frontier", "frontier_size", _fmt_int),
    ("Reached", "reached_size", _fmt_int),
    ("Chi", "chi_size", _fmt_int),
    ("Ops", "op_delta", _fmt_int),
    ("Hit%", "cache_hit_rate", _fmt_rate),
    ("Live", "live_nodes", _fmt_int),
    ("RSS(MB)", "rss_bytes", _fmt_mb),
    ("Time(s)", "seconds", _fmt_seconds),
)


def load_trace(path: str) -> List[Dict[str, object]]:
    """All intact records of one trace file or a directory of them.

    Directories are walked non-recursively; ``*.jsonl`` files are read
    in sorted name order and each record is annotated with its source
    file under ``_file``.
    """
    if os.path.isdir(path):
        records: List[Dict[str, object]] = []
        for name in sorted(os.listdir(path)):
            if not name.endswith(".jsonl"):
                continue
            for record in RunJournal(os.path.join(path, name)):
                record["_file"] = name
                records.append(record)
        return records
    return RunJournal(path).read()


def _run_key(record: Dict[str, object]) -> Tuple[str, str, str]:
    return (
        str(record.get("engine", "?")),
        str(record.get("circuit", "?")),
        str(record.get("order", "?")),
    )


def group_runs(
    records: Iterable[Dict[str, object]]
) -> List[Tuple[Tuple[str, str, str], List[Dict[str, object]]]]:
    """Split records into per-run groups keyed (engine, circuit, order)."""
    groups: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    order: List[Tuple[str, str, str]] = []
    for record in records:
        key = _run_key(record)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    return [(key, groups[key]) for key in order]


def format_iteration_table(records: Sequence[Dict[str, object]]) -> str:
    """Paper-style size-trajectory table from iteration records."""
    rows = [[header for header, _, _ in _COLUMNS]]
    for record in records:
        rows.append(
            [fmt(record.get(key)) for _, key, fmt in _COLUMNS]
        )
    return format_grid(rows)


def format_phase_breakdown(
    phase_self: Dict[str, float],
    wall_seconds: Optional[float] = None,
    span_counts: Optional[Dict[str, int]] = None,
) -> str:
    """Phase table (exclusive seconds, share, span count) + coverage line."""
    total = sum(phase_self.values())
    rows = [["Phase", "Self(s)", "Share", "Spans"]]
    for phase, seconds in sorted(
        phase_self.items(), key=lambda item: -item[1]
    ):
        rows.append(
            [
                phase,
                "%.4f" % seconds,
                "%.1f%%" % (100.0 * seconds / total) if total else "-",
                _fmt_int((span_counts or {}).get(phase)),
            ]
        )
    lines = [format_grid(rows)]
    if wall_seconds:
        lines.append(
            "phase total %.4fs of %.4fs wall (%.1f%% coverage)"
            % (total, wall_seconds, 100.0 * total / wall_seconds)
        )
    return "\n".join(lines)


def format_phase_percentiles(
    iteration_records: Sequence[Dict[str, object]]
) -> str:
    """Per-phase self-time percentile table across iterations.

    The phase *breakdown* answers "where did the time go in total";
    this table answers "how is one iteration's phase time distributed"
    — p50/p90/max of each phase's per-iteration exclusive self-time,
    which is what exposes a phase that is cheap on average but spikes
    (a reorder-triggering image step, a GC-heavy union).
    """
    stats = phase_percentiles(iteration_records)
    if not stats:
        return ""
    rows = [["Phase", "p50(s)", "p90(s)", "Max(s)", "Iters"]]
    for phase, values in sorted(
        stats.items(), key=lambda item: -item[1]["max"]
    ):
        rows.append(
            [
                phase,
                "%.4f" % values["p50"],
                "%.4f" % values["p90"],
                "%.4f" % values["max"],
                _fmt_int(values["n"]),
            ]
        )
    return format_grid(rows)


def render_run(
    key: Tuple[str, str, str], records: Sequence[Dict[str, object]]
) -> str:
    """Full report for one run's records."""
    engine, circuit, order = key
    iteration_records = [
        r for r in records if r.get("event") == "iteration"
    ]
    summaries = [r for r in records if r.get("event") == "summary"]
    summary = summaries[-1] if summaries else None
    lines = ["== %s / %s / order %s ==" % (engine, circuit, order)]
    if iteration_records:
        lines.append(format_iteration_table(iteration_records))
    else:
        lines.append("(no iteration records)")
    phase_self: Dict[str, float] = {}
    span_counts: Optional[Dict[str, int]] = None
    wall: Optional[float] = None
    if summary is not None:
        raw = summary.get("phase_self_seconds")
        if isinstance(raw, dict):
            phase_self = {
                str(k): float(v)
                for k, v in raw.items()
                if isinstance(v, (int, float))
            }
        raw_counts = summary.get("span_counts")
        if isinstance(raw_counts, dict):
            span_counts = {str(k): int(v) for k, v in raw_counts.items()}
        if isinstance(summary.get("seconds"), (int, float)):
            wall = float(summary["seconds"])
    if not phase_self:
        for record in iteration_records:
            phases = record.get("phases")
            if isinstance(phases, dict):
                for phase, seconds in phases.items():
                    if isinstance(seconds, (int, float)):
                        phase_self[str(phase)] = (
                            phase_self.get(str(phase), 0.0) + seconds
                        )
    if wall is None and iteration_records:
        wall = sum(
            r["seconds"]
            for r in iteration_records
            if isinstance(r.get("seconds"), (int, float))
        )
    if phase_self:
        lines.append("")
        lines.append(format_phase_breakdown(phase_self, wall, span_counts))
    percentiles = format_phase_percentiles(iteration_records)
    if percentiles and len(iteration_records) > 1:
        lines.append("")
        lines.append("per-iteration phase self-time percentiles:")
        lines.append(percentiles)
    if summary is not None:
        status_bits = []
        if summary.get("completed") is True:
            status_bits.append("completed")
        elif summary.get("failure"):
            status_bits.append("failed: %s" % summary["failure"])
        for name, label in (
            ("iterations", "iterations"),
            ("peak_live_nodes", "peak live nodes"),
            ("reached_size", "reached representation"),
            ("num_states", "reachable states"),
        ):
            if summary.get(name) is not None:
                status_bits.append("%s %s" % (summary[name], label))
        if status_bits:
            lines.append("summary: " + ", ".join(status_bits))
    events = {}
    for record in records:
        kind = record.get("event")
        if kind not in ("iteration", "summary"):
            events[kind] = events.get(kind, 0) + 1
    if events:
        lines.append(
            "events: "
            + ", ".join(
                "%s x%d" % (kind, count)
                for kind, count in sorted(events.items())
            )
        )
    return "\n".join(lines)


def render_serve(records: Sequence[Dict[str, object]]) -> str:
    """Service section: request dispositions + latest counters snapshot.

    Built from the ``serve_request`` / ``serve_counters`` events the
    reachability service (``python -m repro serve``) writes into its
    ``--trace-dir``; the dedup/shed/resume counters here are the
    service-health view the per-run tables cannot show.
    """
    requests = [r for r in records if r.get("event") == "serve_request"]
    counters = [r for r in records if r.get("event") == "serve_counters"]
    lines = ["== serve =="]
    if requests:
        by_disposition: Dict[str, int] = {}
        for record in requests:
            disposition = str(record.get("disposition", "?"))
            by_disposition[disposition] = by_disposition.get(disposition, 0) + 1
        rows = [["Disposition", "Requests"]]
        for disposition, count in sorted(by_disposition.items()):
            rows.append([disposition, _fmt_int(count)])
        lines.append(format_grid(rows))
    if counters:
        latest = counters[-1]
        bits = []
        for name in (
            "requests",
            "ok",
            "cache_hits",
            "dedup_hits",
            "resumes",
            "resumable_stored",
            "shed",
            "cancelled",
            "abandoned",
            "disconnects",
            "errors",
            "telemetry_drops",
            "subscriber_drops",
        ):
            value = latest.get(name)
            if isinstance(value, int):
                bits.append("%s %d" % (name, value))
        if bits:
            lines.append("counters: " + ", ".join(bits))
        cache = latest.get("cache")
        if isinstance(cache, dict):
            lines.append(
                "cache: %s complete, %s resumable, %s corrupt"
                % (
                    cache.get("complete", "-"),
                    cache.get("resumable", "-"),
                    cache.get("corrupt", "-"),
                )
            )
    if len(lines) == 1:
        lines.append("(no serve events)")
    return "\n".join(lines)


def render_trace(records: Iterable[Dict[str, object]]) -> str:
    """Report for every run found in ``records``.

    Service telemetry (``serve_*`` events) renders as its own section
    after the per-run tables instead of polluting the run grouping.
    """
    serve_records: List[Dict[str, object]] = []
    run_records: List[Dict[str, object]] = []
    for record in records:
        if str(record.get("event", "")).startswith("serve_"):
            serve_records.append(record)
        else:
            run_records.append(record)
    sections = [
        render_run(key, group) for key, group in group_runs(run_records)
    ]
    if serve_records:
        sections.append(render_serve(serve_records))
    if not sections:
        return "(no trace records)"
    return "\n\n".join(sections)


def render_trace_path(path: str) -> str:
    """Load ``path`` (file or directory) and render its report."""
    return render_trace(load_trace(path))


def summarize_trace(records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Machine-readable trace summary (the serve ``trace`` op's answer).

    For every run group: the iteration records (verbatim, minus the
    ``_file`` annotation), the final summary record if one was written,
    and the per-phase self-time percentiles — everything the rendered
    report shows, as JSON, computed purely from stored telemetry (no
    recomputation of the run).
    """
    serve_records: List[Dict[str, object]] = []
    run_records: List[Dict[str, object]] = []
    for record in records:
        if str(record.get("event", "")).startswith("serve_"):
            serve_records.append(record)
        else:
            run_records.append(record)
    runs = []
    for (engine, circuit, order), group in group_runs(run_records):
        iteration_records = [
            {k: v for k, v in r.items() if k != "_file"}
            for r in group
            if r.get("event") == "iteration"
        ]
        summaries = [r for r in group if r.get("event") == "summary"]
        events: Dict[str, int] = {}
        for record in group:
            kind = str(record.get("event", "?"))
            events[kind] = events.get(kind, 0) + 1
        run: Dict[str, object] = {
            "engine": engine,
            "circuit": circuit,
            "order": order,
            "iterations": iteration_records,
            "phase_percentiles": phase_percentiles(iteration_records),
            "events": events,
        }
        if summaries:
            run["summary"] = {
                k: v for k, v in summaries[-1].items() if k != "_file"
            }
        runs.append(run)
    out: Dict[str, object] = {"runs": runs}
    if serve_records:
        counters = [
            r for r in serve_records if r.get("event") == "serve_counters"
        ]
        if counters:
            out["serve_counters"] = {
                k: v for k, v in counters[-1].items() if k != "_file"
            }
    return out


def format_follow_record(record: Dict[str, object]) -> Optional[str]:
    """One-line live rendering of a tailed record, or None to skip.

    ``repro trace --follow`` prints these as records arrive: iteration
    rows in the table's column order, lifecycle events compactly, and
    nothing for high-frequency noise (per-span gc events).
    """
    kind = record.get("event")
    tag = "%s/%s/%s" % (
        record.get("engine", "?"),
        record.get("circuit", "?"),
        record.get("order", "?"),
    )
    if kind == "iteration":
        cells = " ".join(
            "%s=%s" % (header.lower(), fmt(record.get(key)))
            for header, key, fmt in _COLUMNS
        )
        return "%s %s" % (tag, cells)
    if kind == "summary":
        status = (
            "completed"
            if record.get("completed") is True
            else "failed: %s" % record.get("failure", "?")
        )
        return "%s summary %s iterations=%s seconds=%s" % (
            tag,
            status,
            record.get("iterations", "-"),
            record.get("seconds", "-"),
        )
    if kind == "gc":
        return None
    if isinstance(kind, str) and kind.startswith("serve_"):
        if kind == "serve_request":
            return "serve %s %s" % (
                record.get("disposition", "?"),
                record.get("fingerprint", "")[:12],
            )
        return None
    if kind == "worker_state":
        return "worker%s %s %s" % (
            record.get("worker", "?"),
            record.get("state", "?"),
            record.get("cell", ""),
        )
    return "%s %s" % (tag, kind)

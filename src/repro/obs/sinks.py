"""Trace record sinks: where tracer records go.

A sink receives one JSON-safe dict per record (iteration, event, or
summary).  Three implementations cover the use cases:

* :class:`NullSink` — drops everything (the tracer itself already
  short-circuits when disabled; this exists for explicit wiring);
* :class:`MemorySink` — collects records in a list (tests, in-process
  analysis);
* :class:`JsonlSink` — appends one JSON line per record, in the same
  shape as :class:`repro.harness.journal.RunJournal` records (every
  record carries an ``event`` key and a ``wall`` timestamp, written
  with ``sort_keys``), so a trace file can be read back with the
  journal reader — including its torn-trailing-line tolerance.

Unlike the attempt journal, the JSONL sink does **not** fsync per
record: iteration records are emitted on the engines' hot loop, and a
lost trailing record after a crash costs one iteration of telemetry,
not run state.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Dict, List, Optional


def trace_filename(engine: str, order: str, circuit: str) -> str:
    """Trace file name for one attempt flavor (filename-safe tag)."""

    def clean(text: str) -> str:
        return re.sub(r"[^A-Za-z0-9_.]+", "_", text)

    return "trace-%s-%s-%s.jsonl" % (clean(engine), clean(order), clean(circuit))


class Sink:
    """Interface: receives tracer records; close flushes resources."""

    def emit(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullSink(Sink):
    """Discards every record."""

    def emit(self, record: Dict[str, object]) -> None:
        pass


class MemorySink(Sink):
    """Collects records in :attr:`records` (testing / in-process use)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def by_event(self, event: str) -> List[Dict[str, object]]:
        """Records whose ``event`` field equals ``event``."""
        return [r for r in self.records if r.get("event") == event]


class JsonlSink(Sink):
    """Appends records as JSON lines to ``path``.

    The file is opened lazily on the first record (so merely
    constructing a tracer creates no empty files) and in append mode,
    so a resumed attempt extends its previous trace.  ``fsync=True``
    switches to journal-grade durability per record.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle: Optional[object] = None
        self.emitted = 0

    def _open(self):
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        return self._handle

    def emit(self, record: Dict[str, object]) -> None:
        record = dict(record)
        # Deliberate wall stamp: this is the one place records get an
        # absolute timestamp for cross-host correlation; durations
        # elsewhere stay monotonic.
        record.setdefault("wall", time.time())  # noqa: R204
        handle = self._open()
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

"""Incremental JSONL tailing for live telemetry.

The attempts that produce telemetry run in supervised child processes;
the only channel that crosses that boundary *while the run is in
flight* is the trace JSONL the child's :class:`~repro.obs.sinks.JsonlSink`
appends to.  :class:`JsonlTail` turns those files into a poll-based
stream: each :meth:`poll` returns every record appended since the last
call, across all ``*.jsonl`` files under a path (new files are picked
up as they appear — a fallback ladder or batch writes several).

The reader mirrors the journal reader's crash tolerance, incrementally:
a torn trailing line (the writer is mid-``write``, or died mid-line) is
left unconsumed until its newline arrives; a *corrupt* complete line is
skipped and counted in :attr:`skipped`.  Truncation (a rotated or
rewritten file) resets that file's offset to zero rather than reading
garbage from a stale position.

This is the mechanism behind the serve ``subscribe`` op (the server
tails the in-flight attempt's trace for each subscriber), ``repro trace
--follow``, and the trace-dir mode of ``python -m repro top``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple


class JsonlTail:
    """Poll-based incremental reader of a JSONL file or directory.

    Parameters
    ----------
    path:
        A ``.jsonl`` file, or a directory whose ``*.jsonl`` files are
        tailed collectively (sorted name order per poll).  The path may
        not exist yet — polls return nothing until it does.
    recursive:
        Walk subdirectories too (the batch scheduler stages per-worker
        journals under ``<trace_dir>/.workers/``).
    from_start:
        True (default) replays existing content on the first poll —
        what a subscriber wants (the iterations already run are part of
        the trajectory).  False starts at the current end of each file
        already present, streaming only what arrives later.
    """

    def __init__(
        self, path: str, recursive: bool = False, from_start: bool = True
    ) -> None:
        self.path = path
        self.recursive = recursive
        #: Corrupt (complete but unparsable) lines skipped so far.
        self.skipped = 0
        self._offsets: Dict[str, int] = {}
        if not from_start:
            for file_path in self._files():
                try:
                    self._offsets[file_path] = os.path.getsize(file_path)
                except OSError:
                    continue

    def _files(self) -> List[str]:
        path = self.path
        if os.path.isfile(path):
            return [path]
        if not os.path.isdir(path):
            return []
        if self.recursive:
            found: List[str] = []
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".jsonl"):
                        found.append(os.path.join(root, name))
            return found
        return [
            os.path.join(path, name)
            for name in sorted(os.listdir(path))
            if name.endswith(".jsonl")
        ]

    def _poll_file(self, file_path: str) -> List[Tuple[str, Dict[str, object]]]:
        offset = self._offsets.get(file_path, 0)
        try:
            size = os.path.getsize(file_path)
        except OSError:
            return []
        if size < offset:  # truncated/rotated: start over
            offset = 0
        if size == offset:
            return []
        try:
            with open(file_path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(size - offset)
        except OSError:
            return []
        # Consume only up to the last newline; a torn trailing line
        # stays unconsumed until the writer finishes it.
        end = data.rfind(b"\n")
        if end < 0:
            return []
        self._offsets[file_path] = offset + end + 1
        records: List[Tuple[str, Dict[str, object]]] = []
        for line in data[: end + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.skipped += 1
                continue
            if isinstance(record, dict):
                records.append((file_path, record))
            else:
                self.skipped += 1
        return records

    def poll(self) -> List[Dict[str, object]]:
        """Every record appended since the previous poll.

        Records are annotated with their source file name under
        ``_file`` (matching :func:`repro.obs.report.load_trace`).
        """
        out: List[Dict[str, object]] = []
        for file_path in self._files():
            for source, record in self._poll_file(file_path):
                record["_file"] = os.path.basename(source)
                out.append(record)
        return out


"""Live per-run status table: ``python -m repro top``.

Two sources feed the same renderer:

* **trace-dir mode** — tail a ``--trace-dir`` (or a serve cache's
  per-key ``trace/`` directories) with :class:`repro.obs.tail.JsonlTail`
  and fold every record into a :class:`TopState`.  Worker-occupancy
  sidecar journals (``worker*-state.jsonl``) feed the pool header.
* **server mode** — subscribe to one fingerprint on a running
  ``python -m repro serve`` instance and fold the streamed records.

:class:`TopState` is a pure fold (records in, table out) so tests can
drive it without a terminal; the screen loop around it repaints with a
plain ANSI home-and-clear, or appends lines under ``--plain``.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Tuple

from .report import _COLUMNS, format_follow_record
from .tail import JsonlTail

#: Clear screen + home; crude but dependency-free.
_CLEAR = "\x1b[2J\x1b[H"


def _run_tag(record: Dict[str, object]) -> str:
    return "%s/%s/%s" % (
        record.get("engine", "?"),
        record.get("circuit", "?"),
        record.get("order", "?"),
    )


class TopState:
    """Fold of tailed trace records into a per-run live table."""

    def __init__(self) -> None:
        #: tag -> latest iteration record for the run.
        self.runs: Dict[str, Dict[str, object]] = {}
        #: tag -> terminal status line ("completed", "failed: oom", ...).
        self.finished: Dict[str, str] = {}
        #: worker index -> (state, cell) from worker_state events.
        self.workers: Dict[int, Tuple[str, str]] = {}
        #: serve_request dispositions -> count.
        self.dispositions: Dict[str, int] = {}
        self.records = 0

    def update(self, record: Dict[str, object]) -> None:
        """Fold one record; unknown events are counted and ignored."""
        self.records += 1
        kind = record.get("event")
        if kind == "iteration":
            self.runs[_run_tag(record)] = record
        elif kind == "summary":
            tag = _run_tag(record)
            if record.get("completed") is True:
                self.finished[tag] = "completed"
            else:
                self.finished[tag] = "failed: %s" % record.get(
                    "failure", "?"
                )
        elif kind == "worker_state":
            try:
                worker = int(record.get("worker"))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return
            self.workers[worker] = (
                str(record.get("state", "?")),
                str(record.get("cell", "") or ""),
            )
        elif kind == "serve_request":
            disposition = str(record.get("disposition", "?"))
            self.dispositions[disposition] = (
                self.dispositions.get(disposition, 0) + 1
            )

    def update_all(self, records: Iterable[Dict[str, object]]) -> None:
        for record in records:
            self.update(record)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def header(self) -> str:
        busy = sum(
            1 for state, _ in self.workers.values() if state == "busy"
        )
        parts = ["repro top — %d run(s)" % len(self.runs)]
        if self.workers:
            parts.append("workers %d/%d busy" % (busy, len(self.workers)))
        if self.dispositions:
            parts.append(
                "serve " + " ".join(
                    "%s=%d" % (name, count)
                    for name, count in sorted(self.dispositions.items())
                )
            )
        return ", ".join(parts)

    def rows(self) -> List[List[str]]:
        """Table body: one row per run, live runs first."""
        header = ["Run"] + [name for name, _, _ in _COLUMNS] + ["Status"]
        body: List[Tuple[int, List[str]]] = []
        for tag, record in self.runs.items():
            status = self.finished.get(tag, "running")
            cells = [fmt(record.get(key)) for _, key, fmt in _COLUMNS]
            rank = 0 if status == "running" else 1
            body.append((rank, [tag] + cells + [status]))
        # A run that failed before its first iteration still deserves a
        # row — surface it with empty cells rather than hiding it.
        for tag, status in self.finished.items():
            if tag not in self.runs:
                body.append((1, [tag] + ["-"] * len(_COLUMNS) + [status]))
        body.sort(key=lambda item: (item[0], item[1][0]))
        return [header] + [row for _, row in body]

    def render(self) -> str:
        from ..reach.report import format_grid

        lines = [self.header()]
        if len(self.rows()) > 1:
            lines.append(format_grid(self.rows()))
        busy_workers = [
            (worker, cell)
            for worker, (state, cell) in sorted(self.workers.items())
            if state == "busy" and cell
        ]
        if busy_workers:
            lines.append(
                "\n".join(
                    "  worker%02d  %s" % (worker, cell)
                    for worker, cell in busy_workers
                )
            )
        return "\n".join(lines)


def _emit(state: TopState, stream, plain: bool) -> None:
    if plain:
        stream.write(state.render() + "\n\n")
    else:
        stream.write(_CLEAR + state.render() + "\n")
    stream.flush()


def run_tail_top(
    path: str,
    poll: float = 0.5,
    max_seconds: Optional[float] = None,
    plain: bool = False,
    stream=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> TopState:
    """Trace-dir mode: tail ``path`` recursively and repaint on change.

    Runs until ``max_seconds`` elapses (forever when None, until ^C).
    Returns the final state so tests can assert on the fold.
    """
    stream = stream if stream is not None else sys.stdout
    tail = JsonlTail(path, recursive=os.path.isdir(path))
    state = TopState()
    deadline = None if max_seconds is None else clock() + max_seconds
    first = True
    while True:
        records = tail.poll()
        if records or first:
            state.update_all(records)
            _emit(state, stream, plain)
            first = False
        if deadline is not None and clock() >= deadline:
            return state
        sleep(poll)


def run_serve_top(
    host: str,
    port: int,
    request: Dict[str, object],
    plain: bool = False,
    stream=None,
) -> TopState:
    """Server mode: subscribe to one fingerprint and repaint per event.

    ``request`` carries either ``key`` or ``circuit`` (+ options), as
    accepted by :meth:`repro.serve.client.ServeClient.subscribe`.  The
    loop ends when the server closes the stream (run finished, miss, or
    error); the closing line is printed verbatim.
    """
    from ..serve.client import ServeClient

    stream = stream if stream is not None else sys.stdout
    state = TopState()
    with ServeClient(host, port) as client:
        for message in client.subscribe(**request):
            status = message.get("status")
            if status == "event":
                record = message.get("record")
                if isinstance(record, dict):
                    state.update(record)
                    _emit(state, stream, plain)
            elif status in ("complete", "miss", "error"):
                stream.write(
                    "%s%s: key=%s events=%s dropped=%s outcome=%s\n"
                    % (
                        "" if plain else "\n",
                        status,
                        str(message.get("key", ""))[:12],
                        message.get("events", "-"),
                        message.get("dropped", "-"),
                        message.get("outcome", "-"),
                    )
                )
                stream.flush()
    return state


def follow_trace(
    path: str,
    poll: float = 0.5,
    max_seconds: Optional[float] = None,
    stream=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """``repro trace --follow``: print one line per arriving record.

    Unlike :func:`run_tail_top` this is an append-only log view —
    every tailed record renders through
    :func:`repro.obs.report.format_follow_record`.  Returns the number
    of lines printed.
    """
    stream = stream if stream is not None else sys.stdout
    tail = JsonlTail(path, recursive=os.path.isdir(path))
    printed = 0
    deadline = None if max_seconds is None else clock() + max_seconds
    while True:
        for record in tail.poll():
            line = format_follow_record(record)
            if line is not None:
                stream.write(line + "\n")
                printed += 1
        stream.flush()
        if deadline is not None and clock() >= deadline:
            return printed
        sleep(poll)

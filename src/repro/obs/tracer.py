"""The tracer: phase spans and per-iteration metric records.

Two implementations share one duck-typed API:

* :class:`Tracer` — the real thing.  ``span(phase)`` returns a context
  manager timing one phase on the monotonic clock; spans nest, and both
  *inclusive* and *exclusive* ("self") times are accumulated, so a
  ``gc`` span inside a ``checkpoint`` span is not double-counted in the
  phase breakdown.  ``begin_iteration`` / ``end_iteration`` bracket one
  engine iteration and emit a metric record (phase self-times for that
  iteration, frontier/reached/chi sizes passed by the engine,
  kernel-invocation and computed-table counter deltas, allocated/live
  node counts, RSS).  ``event`` emits out-of-band records (gc,
  checkpoint, resume, attempt lifecycle).  The tracer's own metric
  collection is accounted under a ``telemetry`` phase so the phase
  breakdown stays honest about observer cost.
* :class:`NullTracer` — a stateless singleton (:data:`NULL_TRACER`)
  whose every method is a no-op and whose ``span`` returns a shared
  reusable null context manager.  Engines always run against a tracer
  (``ensure_tracer(None)`` yields the singleton), so the disabled path
  costs a few attribute lookups per iteration and allocates nothing.

The tracer knows nothing about engines or results; engines ``bind``
identifying metadata (engine/circuit/order) that is stamped onto every
record, ``attach`` the BDD manager whose counters should be sampled,
and call ``finish(result)`` to emit a final summary record.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .metrics import counter_deltas, manager_counters, rss_self_bytes
from .sinks import Sink

#: Phase names the engines use; other names are allowed (spans are
#: open-ended), these are just the conventional vocabulary rendered by
#: ``python -m repro trace``.
PHASES = (
    "setup",
    "image",
    "reparam",
    "union",
    "fixpoint_test",
    "chi_conversion",
    "gc",
    "checkpoint",
    "sanitize",
    "finalize",
    "telemetry",
)


class _NullSpan:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer; engines' default when tracing is off.

    Mirrors every :class:`Tracer` method with a no-op so engine code is
    branch-free: the single ``tracer.enabled`` flag exists for callers
    that want to skip *their own* metric computation (e.g. BFV shared
    sizes) when nobody is listening.
    """

    enabled = False

    def attach(self, bdd) -> None:
        pass

    def bind(self, **meta) -> None:
        pass

    def span(self, phase: str) -> _NullSpan:
        return NULL_SPAN

    def begin_iteration(self, iteration: int) -> None:
        pass

    def end_iteration(self, iteration: int, **metrics) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def summary(self) -> Dict[str, object]:
        return {}

    def finish(self, result=None) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared process-wide null tracer instance (stateless, so sharable).
NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> "Tracer":
    """``tracer`` itself, or the null singleton when None."""
    return NULL_TRACER if tracer is None else tracer


class _Span:
    """One active phase span; exclusive time excludes nested spans."""

    __slots__ = ("tracer", "phase", "start", "child_seconds")

    def __init__(self, tracer: "Tracer", phase: str) -> None:
        self.tracer = tracer
        self.phase = phase
        self.child_seconds = 0.0

    def __enter__(self) -> "_Span":
        self.tracer._stack.append(self)
        self.start = self.tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.tracer
        elapsed = tracer._clock() - self.start
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_seconds += elapsed
        tracer._record_span(self.phase, elapsed, elapsed - self.child_seconds)
        return False


class Tracer:
    """Collects phase spans and per-iteration metrics; emits to a sink.

    Parameters
    ----------
    sink:
        Record destination (see :mod:`repro.obs.sinks`).  None keeps
        the tracer accumulate-only: phase summaries still work (and
        still land in ``ReachResult.extra['obs']``), nothing is stored
        per iteration.
    bdd:
        Manager whose counters are sampled; usually attached later by
        the engine via :meth:`attach` once the variable layout exists.
    clock:
        Monotonic time source (injectable for tests).
    measure_rss / count_live:
        Toggle the two most expensive per-iteration samples: reading
        ``/proc/self/status`` and the live-node mark pass.
    registry:
        Optional :class:`repro.obs.registry.MetricsRegistry` fed live
        aggregates alongside the sink: per-phase self-time histograms,
        an iteration-duration histogram, iteration/span counters, and
        live-node / RSS gauges.  None (the default) costs one ``is
        None`` test per feed point — the detached path stays inside the
        <2% tier-1 overhead budget.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Sink] = None,
        bdd=None,
        clock=time.monotonic,
        measure_rss: bool = True,
        count_live: bool = True,
        registry=None,
    ) -> None:
        self.sink = sink
        self._clock = clock
        self.measure_rss = measure_rss
        self.count_live = count_live
        self.registry = registry
        self._phase_histograms: Dict[str, object] = {}
        self._iteration_histogram = None
        if registry is not None:
            self._iteration_histogram = registry.histogram("iteration_seconds")
            self._iterations_counter = registry.counter("iterations")
            self._live_gauge = registry.gauge("live_nodes")
            self._rss_gauge = registry.gauge("rss_bytes")
            self._hit_rate_gauge = registry.gauge("cache_hit_rate")
        self.meta: Dict[str, object] = {}
        self.bdd = None
        self._stack: List[_Span] = []
        #: phase -> inclusive seconds (nested children counted in).
        self.phase_seconds: Dict[str, float] = {}
        #: phase -> exclusive seconds (what the breakdown reports).
        self.phase_self_seconds: Dict[str, float] = {}
        self.span_counts: Dict[str, int] = {}
        self.iterations_recorded = 0
        self.events_emitted = 0
        self._iter_open: Optional[Dict[str, object]] = None
        self._started = self._clock()
        if bdd is not None:
            self.attach(bdd)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, bdd) -> None:
        """Sample counters from ``bdd`` and report its GC events."""
        if bdd is self.bdd:
            return
        self.bdd = bdd
        hooks = getattr(bdd, "gc_hooks", None)
        if hooks is not None and self._on_gc not in hooks:
            hooks.append(self._on_gc)

    def bind(self, **meta) -> None:
        """Stamp identifying metadata onto every subsequent record."""
        self.meta.update(
            {key: value for key, value in meta.items() if value is not None}
        )

    def _on_gc(self, bdd, freed: int) -> None:
        self.event("gc", freed=freed, allocated_nodes=bdd.num_nodes)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, phase: str) -> _Span:
        """Context manager timing one (nestable) phase."""
        return _Span(self, phase)

    def _record_span(self, phase: str, elapsed: float, self_seconds: float) -> None:
        totals = self.phase_seconds
        totals[phase] = totals.get(phase, 0.0) + elapsed
        self_totals = self.phase_self_seconds
        self_totals[phase] = self_totals.get(phase, 0.0) + self_seconds
        counts = self.span_counts
        counts[phase] = counts.get(phase, 0) + 1
        if self.registry is not None:
            histogram = self._phase_histograms.get(phase)
            if histogram is None:
                histogram = self.registry.histogram(
                    "phase_self_seconds", {"phase": phase}
                )
                self._phase_histograms[phase] = histogram
            histogram.observe(self_seconds)

    # ------------------------------------------------------------------
    # Iterations
    # ------------------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Open iteration ``iteration``: snapshot clocks and counters."""
        t0 = self._clock()
        counters = (
            manager_counters(self.bdd) if self.bdd is not None else None
        )
        t1 = self._clock()
        self._record_span("telemetry", t1 - t0, t1 - t0)
        self._iter_open = {
            "iteration": iteration,
            "start": t1,
            "phase_self": dict(self.phase_self_seconds),
            "counters": counters,
        }

    def end_iteration(self, iteration: int, **metrics) -> None:
        """Close the open iteration and emit its metric record.

        ``metrics`` carries engine-supplied fields (``frontier_size``,
        ``reached_size``, ``chi_size``, ``fixpoint``...) merged into the
        record verbatim.  Without a matching :meth:`begin_iteration`
        the call is ignored (e.g. after a resume restored mid-run).
        """
        opened = self._iter_open
        self._iter_open = None
        if opened is None:
            return
        seconds = self._clock() - opened["start"]
        # Collect the sampled metrics, charging the cost to `telemetry`
        # *before* computing this iteration's phase deltas, so the
        # record (and the final breakdown) include observer cost.
        t0 = self._clock()
        sampled: Dict[str, object] = {}
        before = opened["counters"]
        if before is not None and self.bdd is not None:
            deltas = counter_deltas(before, manager_counters(self.bdd))
            sampled["op_delta"] = deltas["op_count"]
            sampled["gc_delta"] = deltas["gc_count"]
            for field in ("hits", "misses", "inserts", "evictions", "swept"):
                sampled["cache_%s_delta" % field] = deltas["cache_" + field]
            probes = sampled["cache_hits_delta"] + sampled["cache_misses_delta"]
            sampled["cache_hit_rate"] = (
                sampled["cache_hits_delta"] / probes if probes else 0.0
            )
            sampled["allocated_nodes"] = self.bdd.num_nodes
            if self.count_live:
                sampled["live_nodes"] = self.bdd.count_live()
        if self.measure_rss:
            rss = rss_self_bytes()
            if rss is not None:
                sampled["rss_bytes"] = rss
        t1 = self._clock()
        self._record_span("telemetry", t1 - t0, t1 - t0)
        base = opened["phase_self"]
        phases = {}
        for phase, total in self.phase_self_seconds.items():
            delta = total - base.get(phase, 0.0)
            if delta > 0.0:
                phases[phase] = round(delta, 6)
        record: Dict[str, object] = dict(self.meta)
        record["event"] = "iteration"
        record["iteration"] = iteration
        record["seconds"] = round(seconds, 6)
        record["phases"] = phases
        record.update(sampled)
        record.update(metrics)
        self.iterations_recorded += 1
        if self._iteration_histogram is not None:
            self._iteration_histogram.observe(seconds)
            self._iterations_counter.inc()
            if "live_nodes" in sampled:
                self._live_gauge.set(sampled["live_nodes"])
            if "rss_bytes" in sampled:
                self._rss_gauge.set(sampled["rss_bytes"])
            if "cache_hit_rate" in sampled:
                self._hit_rate_gauge.set(sampled["cache_hit_rate"])
        self._emit(record)

    # ------------------------------------------------------------------
    # Events, summary, lifecycle
    # ------------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Emit one out-of-band record (gc, checkpoint, resume, ...)."""
        record: Dict[str, object] = dict(self.meta)
        record["event"] = kind
        record.update(fields)
        self.events_emitted += 1
        self._emit(record)

    def summary(self) -> Dict[str, object]:
        """Cumulative phase timing (what engines put in ``extra['obs']``)."""
        return {
            "phase_seconds": {
                k: round(v, 6) for k, v in sorted(self.phase_seconds.items())
            },
            "phase_self_seconds": {
                k: round(v, 6)
                for k, v in sorted(self.phase_self_seconds.items())
            },
            "span_counts": dict(sorted(self.span_counts.items())),
            "iterations_recorded": self.iterations_recorded,
            "traced_seconds": round(self._clock() - self._started, 6),
        }

    def finish(self, result=None) -> None:
        """Emit the final summary record, annotated from ``result``.

        ``result`` is duck-typed (a :class:`repro.reach.ReachResult`):
        only plain attributes are read, no reach import happens here.
        """
        record: Dict[str, object] = dict(self.meta)
        record["event"] = "summary"
        record.update(self.summary())
        if result is not None:
            for name in (
                "engine",
                "circuit",
                "order",
                "completed",
                "failure",
                "iterations",
                "seconds",
                "peak_live_nodes",
                "reached_size",
                "num_states",
                "conversion_seconds",
            ):
                value = getattr(result, name, None)
                if value is not None:
                    record[name] = value
        self._emit(record)

    def close(self) -> None:
        """Close the attached sink (idempotent)."""
        if self.sink is not None:
            self.sink.close()

    def _emit(self, record: Dict[str, object]) -> None:
        if self.sink is not None:
            self.sink.emit(record)

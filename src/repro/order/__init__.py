"""Variable-order construction: static heuristics and Table 2 families."""

from .families import FAMILIES, order_for, random_order, reversed_order, sifted_order
from .static import bfs_interleave_order, fanin_dfs_order

__all__ = [
    "FAMILIES",
    "bfs_interleave_order",
    "fanin_dfs_order",
    "order_for",
    "random_order",
    "reversed_order",
    "sifted_order",
]

"""The five variable-order families of the paper's Table 2.

The paper evaluates both engines under *fixed* orders drawn from five
sources: VIS's static order (S1), their own tool's static order (S2), an
order produced by an earlier dynamic-reordering run (D), orders shipped
with pdtexp (P), and other externally supplied orders (O).  The original
order files are unavailable; the reproduction derives deterministic
analogues from the netlist itself:

========  ==========================================================
family     construction
========  ==========================================================
``S1``     fan-in DFS static order (VIS-like)
``S2``     BFS-interleaved static order (our-tool-like)
``D``      order extracted from a sifting run over the circuit's
           transition functions, seeded from S1
``P``      S1 reversed — a plausible-but-untuned order standing in
           for the externally produced pdtexp orders
``O``      seeded random permutation — an order tuned for neither
           representation
========  ==========================================================

Each family maps a circuit to a *slot list* (see
:mod:`repro.order.static`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..circuits.netlist import Circuit
from .static import bfs_interleave_order, fanin_dfs_order


def sifted_order(circuit: Circuit, seed_family: str = "S1") -> List[str]:
    """Order from a dynamic-reordering (sifting) run (the "D" family).

    Builds the circuit's next-state functions over the ``seed_family``
    static order, sifts, and reads back the resulting relative order of
    the input and current-state variables.
    """
    from ..bdd import BDD
    from ..sim.symbolic import SymbolicSimulator

    slots = FAMILIES[seed_family](circuit)
    bdd = BDD()
    var_of: Dict[str, int] = {}
    for net in slots:
        var_of[net] = bdd.add_var(net)
    sim = SymbolicSimulator(bdd, circuit)
    drivers = {net: bdd.var(v) for net, v in var_of.items()}
    deltas = sim.next_state(drivers)
    for f in deltas:
        bdd.incref(f)
    bdd.sift(max_growth=1.15)
    by_level = sorted(var_of, key=lambda net: bdd.level_of(var_of[net]))
    return by_level


def reversed_order(circuit: Circuit) -> List[str]:
    """S1 reversed (the "P" stand-in)."""
    return list(reversed(fanin_dfs_order(circuit)))


def random_order(circuit: Circuit, seed: int = 0) -> List[str]:
    """Seeded random slot permutation (the "O" family)."""
    slots = fanin_dfs_order(circuit)
    rng = random.Random(seed)
    rng.shuffle(slots)
    return slots


FAMILIES: Dict[str, Callable[[Circuit], List[str]]] = {
    "S1": fanin_dfs_order,
    "S2": bfs_interleave_order,
    "D": sifted_order,
    "P": reversed_order,
    "O": random_order,
}


def order_for(circuit: Circuit, family: str) -> List[str]:
    """Slot list for ``circuit`` under order ``family``."""
    return FAMILIES[family](circuit)

"""Static variable-ordering heuristics for sequential circuits.

An *order* here is a list of interleaved slots — primary-input nets and
state (latch output) nets — top of the BDD order first.  The reachability
engines turn a slot list into a concrete variable layout (current-state
and next-state/choice variables adjacent per state bit, as usual for
transition-relation methods) and use the state-net slot order as the BFV
*component order*, matching the paper's setup ("we used the same order
for component ordering and BDD variable ordering").

Two classic heuristics are provided:

* :func:`fanin_dfs_order` — depth-first traversal of the transitive
  fan-in cones of the latch data inputs, recording inputs and state nets
  in first-visit order.  This approximates VIS's static ordering (the
  paper's "S1").
* :func:`bfs_interleave_order` — breadth-first levelling from the latch
  outputs, interleaving the cone frontiers (the paper's "S2", "the
  static ordering obtained from our tool").
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from ..circuits.netlist import Circuit


def _sources(circuit: Circuit) -> Set[str]:
    return set(circuit.inputs) | set(circuit.latches)


def fanin_dfs_order(circuit: Circuit) -> List[str]:
    """Depth-first fan-in order from each latch's data cone (S1-like)."""
    circuit.validate()
    sources = _sources(circuit)
    seen: Set[str] = set()
    slots: List[str] = []

    def visit(net: str) -> None:
        stack = [net]
        while stack:
            current = stack.pop()
            if current in sources:
                if current not in seen:
                    seen.add(current)
                    slots.append(current)
                continue
            gate = circuit.gates[current]
            marker = "gate:" + current
            if marker in seen:
                continue
            seen.add(marker)
            # Push in reverse so the first input is explored first.
            for child in reversed(gate.inputs):
                stack.append(child)

    for latch in circuit.latches.values():
        if latch.output not in seen:
            seen.add(latch.output)
            slots.append(latch.output)
        visit(latch.data)
    for net in circuit.inputs:
        if net not in seen:
            seen.add(net)
            slots.append(net)
    return slots


def bfs_interleave_order(circuit: Circuit) -> List[str]:
    """Breadth-first interleaved fan-in order (S2-like)."""
    circuit.validate()
    sources = _sources(circuit)
    seen: Set[str] = set()
    slots: List[str] = []
    frontier = deque()
    for latch in circuit.latches.values():
        frontier.append(latch.data)
    while frontier:
        net = frontier.popleft()
        if net in sources:
            if net not in seen:
                seen.add(net)
                slots.append(net)
            continue
        marker = "gate:" + net
        if marker in seen:
            continue
        seen.add(marker)
        for child in circuit.gates[net].inputs:
            frontier.append(child)
    for net in circuit.inputs:
        if net not in seen:
            seen.add(net)
            slots.append(net)
    for net in circuit.latches:
        if net not in seen:
            seen.add(net)
            slots.append(net)
    return slots

"""Persistence: save and load BDD functions and Boolean functional vectors.

Reachability results are expensive; this module lets a tool cache them
(e.g. the reached-set BFV of a design) and reload them in a later
session, into a fresh manager or an existing one.

The format is a line-oriented text file::

    repro-bdd 1
    vars <name> <name> ...
    node <id> <var-name> <lo-id> <hi-id>
    ...
    func <name> <root-id>
    bfv <name> <choice-var-names...> | <root-ids...>   (optional)

Node ids ``0``/``1`` are the constants.  Nodes are written children
first, so loading is a single pass.  Loading into an existing manager
re-declares missing variables and rebuilds nodes with ``ite`` (correct
under any variable order); loading into a fresh manager recreates the
stored order exactly.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from .bdd import BDD
from .bfv import BFV
from .errors import PersistError, ReproError

_MAGIC = "repro-bdd 1"


def fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (or ``path`` itself).

    ``os.replace`` makes a rename atomic, but on ext4-style journaling
    filesystems the *directory entry* is not durable until the directory
    inode is synced: a power cut just after the rename can roll the
    directory back, losing the new name entirely.  Every atomic-replace
    writer in this repo (checkpoints, journals, cache entries, the
    supervisor's result files) calls this after its ``os.replace``.

    Best-effort: platforms that cannot open or fsync a directory (or a
    directory that vanished concurrently) are silently tolerated — the
    rename itself already happened.
    """
    directory = path if os.path.isdir(path) else os.path.dirname(
        os.path.abspath(path)
    )
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str) -> Iterator[TextIO]:
    """Write ``path`` atomically: temp file in the same directory, fsync,
    then ``os.replace``, then an fsync of the parent directory.

    A crash mid-write leaves the previous file contents intact; readers
    never observe a torn file; and the directory fsync makes the rename
    itself durable (see :func:`fsync_dir`).  Used by :func:`save` and by
    the harness checkpoint/journal writers.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _collect_nodes(bdd, roots: Iterable[int]) -> List[int]:
    """Shared-DAG nodes reachable from the roots, children first."""
    order: List[int] = []
    seen = {0, 1}
    stack = [(root, False) for root in roots]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded:
            seen.add(node)
            order.append(node)
            continue
        lo, hi = bdd.node_children(node)
        stack.append((node, True))
        stack.append((hi, False))
        stack.append((lo, False))
    return order


def dump_functions(
    bdd,
    functions: Dict[str, int],
    handle: TextIO,
    vectors: Optional[Dict[str, BFV]] = None,
) -> None:
    """Write named functions (and optionally named BFVs) to ``handle``."""
    vectors = vectors or {}
    roots = list(functions.values())
    for vector in vectors.values():
        if not vector.is_empty:
            roots.extend(vector.components)
    handle.write(_MAGIC + "\n")
    handle.write("vars %s\n" % " ".join(bdd.order_names))
    for node in _collect_nodes(bdd, roots):
        lo, hi = bdd.node_children(node)
        handle.write(
            "node %d %s %d %d\n"
            % (node, bdd.var_name(bdd.node_var(node)), lo, hi)
        )
    for name, root in functions.items():
        _check_name(name)
        handle.write("func %s %d\n" % (name, root))
    for name, vector in vectors.items():
        _check_name(name)
        choice_names = " ".join(
            bdd.var_name(v) for v in vector.choice_vars
        )
        if vector.is_empty:
            handle.write("bfv %s %s | empty\n" % (name, choice_names))
        else:
            components = " ".join(str(c) for c in vector.components)
            handle.write(
                "bfv %s %s | %s\n" % (name, choice_names, components)
            )


def _check_name(name: str) -> None:
    if not name or any(ch.isspace() for ch in name):
        raise ReproError("names must be non-empty and whitespace-free: %r" % name)


def load_functions(
    handle: TextIO, bdd: Optional[BDD] = None
) -> Tuple[BDD, Dict[str, int], Dict[str, BFV]]:
    """Read functions/vectors; returns ``(bdd, functions, vectors)``.

    With ``bdd=None`` a fresh manager is created with the stored
    variable order; otherwise missing variables are appended to the
    given manager and nodes are rebuilt order-independently.
    """
    line = handle.readline().rstrip("\n")
    if line != _MAGIC:
        raise PersistError("not a repro-bdd file (bad magic %r)" % line, line=1)
    vars_line = handle.readline().split()
    if not vars_line or vars_line[0] != "vars":
        raise PersistError("missing vars line", line=2)
    names = vars_line[1:]
    fresh = bdd is None
    if fresh:
        bdd = BDD(names)
    else:
        known = set(bdd.order_names)
        for name in names:
            if name not in known:
                bdd.add_var(name)
    id_map: Dict[int, int] = {0: bdd.false, 1: bdd.true}
    functions: Dict[str, int] = {}
    vectors: Dict[str, BFV] = {}
    for lineno, raw in enumerate(handle, start=3):
        parts = raw.split()
        if not parts:
            continue
        kind = parts[0]
        if kind == "node":
            if len(parts) != 5:
                raise PersistError(
                    "malformed node line %r" % raw, line=lineno
                )
            node_id, var_name = _int(parts[1], lineno), parts[2]
            lo, hi = _int(parts[3], lineno), _int(parts[4], lineno)
            try:
                lo_node, hi_node = id_map[lo], id_map[hi]
            except KeyError:
                raise PersistError(
                    "node %d references unknown child" % node_id,
                    line=lineno,
                ) from None
            variable = bdd.var(var_name)
            rebuilt = bdd.ite(variable, hi_node, lo_node)
            id_map[node_id] = bdd.incref(rebuilt)
        elif kind == "func":
            if len(parts) != 3:
                raise PersistError(
                    "malformed func line %r" % raw, line=lineno
                )
            functions[parts[1]] = _lookup(
                id_map, _int(parts[2], lineno), lineno
            )
        elif kind == "bfv":
            try:
                separator = parts.index("|")
            except ValueError:
                raise PersistError(
                    "malformed bfv line %r" % raw, line=lineno
                ) from None
            name = parts[1]
            choice_vars = [bdd.var_index(n) for n in parts[2:separator]]
            payload = parts[separator + 1:]
            if payload == ["empty"]:
                vectors[name] = BFV.empty(bdd, choice_vars)
            else:
                components = [
                    _lookup(id_map, _int(item, lineno), lineno)
                    for item in payload
                ]
                vectors[name] = BFV(bdd, choice_vars, components)
        else:
            raise PersistError("unknown record %r" % kind, line=lineno)
    # Release the temporary pins; callers own functions/vectors now.
    for name, root in functions.items():
        bdd.incref(root)
    for node in id_map.values():
        bdd.decref(node)
    return bdd, functions, vectors


def _int(text: str, lineno: int) -> int:
    try:
        return int(text)
    except ValueError:
        raise PersistError(
            "expected an integer, got %r" % text, line=lineno
        ) from None


def _lookup(
    id_map: Dict[int, int], node_id: int, lineno: Optional[int] = None
) -> int:
    try:
        return id_map[node_id]
    except KeyError:
        raise PersistError(
            "reference to unknown node %d" % node_id, line=lineno
        ) from None


def save(path: str, bdd, functions=None, vectors=None) -> None:
    """Convenience wrapper: write to a file path, atomically.

    The data is written to a temp file in the target directory, fsynced,
    and moved into place with ``os.replace``, so a crash mid-save never
    leaves a torn file behind.
    """
    with atomic_write(path) as handle:
        dump_functions(bdd, functions or {}, handle, vectors)


def load(path: str, bdd: Optional[BDD] = None):
    """Convenience wrapper: read from a file path."""
    with open(path) as handle:
        return load_functions(handle, bdd)

"""Persistence: save and load BDD functions and Boolean functional vectors.

Reachability results are expensive; this module lets a tool cache them
(e.g. the reached-set BFV of a design) and reload them in a later
session, into a fresh manager or an existing one.

The format is a line-oriented text file::

    repro-bdd 1
    vars <name> <name> ...
    node <id> <var-name> <lo-id> <hi-id>
    ...
    func <name> <root-id>
    bfv <name> <choice-var-names...> | <root-ids...>   (optional)

Node ids ``0``/``1`` are the constants.  Nodes are written children
first, so loading is a single pass.  Loading into an existing manager
re-declares missing variables and rebuilds nodes with ``ite`` (correct
under any variable order); loading into a fresh manager recreates the
stored order exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from .bdd import BDD
from .bfv import BFV
from .errors import ReproError

_MAGIC = "repro-bdd 1"


def _collect_nodes(bdd, roots: Iterable[int]) -> List[int]:
    """Shared-DAG nodes reachable from the roots, children first."""
    order: List[int] = []
    seen = {0, 1}
    stack = [(root, False) for root in roots]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded:
            seen.add(node)
            order.append(node)
            continue
        lo, hi = bdd.node_children(node)
        stack.append((node, True))
        stack.append((hi, False))
        stack.append((lo, False))
    return order


def dump_functions(
    bdd,
    functions: Dict[str, int],
    handle: TextIO,
    vectors: Optional[Dict[str, BFV]] = None,
) -> None:
    """Write named functions (and optionally named BFVs) to ``handle``."""
    vectors = vectors or {}
    roots = list(functions.values())
    for vector in vectors.values():
        if not vector.is_empty:
            roots.extend(vector.components)
    handle.write(_MAGIC + "\n")
    handle.write("vars %s\n" % " ".join(bdd.order_names))
    for node in _collect_nodes(bdd, roots):
        lo, hi = bdd.node_children(node)
        handle.write(
            "node %d %s %d %d\n"
            % (node, bdd.var_name(bdd.node_var(node)), lo, hi)
        )
    for name, root in functions.items():
        _check_name(name)
        handle.write("func %s %d\n" % (name, root))
    for name, vector in vectors.items():
        _check_name(name)
        choice_names = " ".join(
            bdd.var_name(v) for v in vector.choice_vars
        )
        if vector.is_empty:
            handle.write("bfv %s %s | empty\n" % (name, choice_names))
        else:
            components = " ".join(str(c) for c in vector.components)
            handle.write(
                "bfv %s %s | %s\n" % (name, choice_names, components)
            )


def _check_name(name: str) -> None:
    if not name or any(ch.isspace() for ch in name):
        raise ReproError("names must be non-empty and whitespace-free: %r" % name)


def load_functions(
    handle: TextIO, bdd: Optional[BDD] = None
) -> Tuple[BDD, Dict[str, int], Dict[str, BFV]]:
    """Read functions/vectors; returns ``(bdd, functions, vectors)``.

    With ``bdd=None`` a fresh manager is created with the stored
    variable order; otherwise missing variables are appended to the
    given manager and nodes are rebuilt order-independently.
    """
    line = handle.readline().rstrip("\n")
    if line != _MAGIC:
        raise ReproError("not a repro-bdd file (bad magic %r)" % line)
    vars_line = handle.readline().split()
    if not vars_line or vars_line[0] != "vars":
        raise ReproError("missing vars line")
    names = vars_line[1:]
    fresh = bdd is None
    if fresh:
        bdd = BDD(names)
    else:
        known = set(bdd.order_names)
        for name in names:
            if name not in known:
                bdd.add_var(name)
    id_map: Dict[int, int] = {0: bdd.false, 1: bdd.true}
    functions: Dict[str, int] = {}
    vectors: Dict[str, BFV] = {}
    for raw in handle:
        parts = raw.split()
        if not parts:
            continue
        kind = parts[0]
        if kind == "node":
            if len(parts) != 5:
                raise ReproError("malformed node line %r" % raw)
            node_id, var_name = int(parts[1]), parts[2]
            lo, hi = int(parts[3]), int(parts[4])
            try:
                lo_node, hi_node = id_map[lo], id_map[hi]
            except KeyError:
                raise ReproError(
                    "node %d references unknown child" % node_id
                ) from None
            variable = bdd.var(var_name)
            rebuilt = bdd.ite(variable, hi_node, lo_node)
            id_map[node_id] = bdd.incref(rebuilt)
        elif kind == "func":
            if len(parts) != 3:
                raise ReproError("malformed func line %r" % raw)
            functions[parts[1]] = _lookup(id_map, int(parts[2]))
        elif kind == "bfv":
            try:
                separator = parts.index("|")
            except ValueError:
                raise ReproError("malformed bfv line %r" % raw) from None
            name = parts[1]
            choice_vars = [bdd.var_index(n) for n in parts[2:separator]]
            payload = parts[separator + 1:]
            if payload == ["empty"]:
                vectors[name] = BFV.empty(bdd, choice_vars)
            else:
                components = [
                    _lookup(id_map, int(item)) for item in payload
                ]
                vectors[name] = BFV(bdd, choice_vars, components)
        else:
            raise ReproError("unknown record %r" % kind)
    # Release the temporary pins; callers own functions/vectors now.
    for name, root in functions.items():
        bdd.incref(root)
    for node in id_map.values():
        bdd.decref(node)
    return bdd, functions, vectors


def _lookup(id_map: Dict[int, int], node_id: int) -> int:
    try:
        return id_map[node_id]
    except KeyError:
        raise ReproError("reference to unknown node %d" % node_id) from None


def save(path: str, bdd, functions=None, vectors=None) -> None:
    """Convenience wrapper: write to a file path."""
    with open(path, "w") as handle:
        dump_functions(bdd, functions or {}, handle, vectors)


def load(path: str, bdd: Optional[BDD] = None):
    """Convenience wrapper: read from a file path."""
    with open(path) as handle:
        return load_functions(handle, bdd)

"""Symbolic reachability engines compared in the paper.

* :func:`bfv_reachability` — the paper's contribution (Figure 2): BFV
  sets, symbolic simulation, re-parameterization, direct union.
* :func:`tr_reachability` — the VIS/IWLS95 baseline: characteristic
  functions and a partitioned transition relation with early
  quantification.
* :func:`cbm_reachability` — the Coudert-Berthet-Madre flow (Figure 1):
  BFV image computation but characteristic-function set manipulation,
  paying per-iteration conversions.
* :func:`conj_reachability` — Figure 2 with McMillan's conjunctive
  decomposition as the set representation (Sec 2.7).
* :func:`sat_reachability` — structural saturation: chained per-latch
  image steps over disjunctive input-cube partitions, local fix points,
  frontier-avoidance (:mod:`repro.reach.sat_engine`).
* :func:`bfv_sat_reachability` — the hybrid that saturates inside the
  BFV reparameterization loop (split inputs driven constant during
  symbolic simulation).
* :func:`bitset_reachability` / :func:`zono_reachability` — non-BDD
  set-representation backends (:mod:`repro.backends`): explicit packed
  bitsets (exact ground truth on small state spaces) and logical
  zonotopes (GF(2) generator matrices, exactness-flagged
  over-approximation), adapted to the engine contract by
  :func:`repro.backends.engine.backend_engine`.

All engines share a variable layout (:class:`ReachSpace`), resource
budgets (:class:`ReachLimits`, reported as the paper's T.O./M.O.) and
statistics (:class:`ReachResult`).
"""

from ..backends import BitsetBackend, LogicalZonotopeBackend, backend_engine
from .backward import backward_reachability, can_reach
from .bfv_engine import bfv_reachability
from .cbm_engine import cbm_reachability
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor
from .conj_engine import conj_reachability
from .iwls95 import PartitionedRelation
from .report import format_table2, format_table3
from .sat_engine import bfv_sat_reachability, sat_reachability
from .tr_engine import tr_reachability

bitset_reachability = backend_engine(BitsetBackend)
zono_reachability = backend_engine(LogicalZonotopeBackend)

ENGINES = {
    "bfv": bfv_reachability,
    "tr": tr_reachability,
    "cbm": cbm_reachability,
    "conj": conj_reachability,
    "sat": sat_reachability,
    "bfv-sat": bfv_sat_reachability,
    "bitset": bitset_reachability,
    "zono": zono_reachability,
}

__all__ = [
    "ENGINES",
    "backward_reachability",
    "can_reach",
    "PartitionedRelation",
    "ReachLimits",
    "ReachResult",
    "ReachSpace",
    "RunMonitor",
    "bfv_reachability",
    "bfv_sat_reachability",
    "bitset_reachability",
    "cbm_reachability",
    "conj_reachability",
    "format_table2",
    "format_table3",
    "sat_reachability",
    "tr_reachability",
    "zono_reachability",
]

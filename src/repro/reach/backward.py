"""Backward reachability: which states can reach a target set?

The dual of the forward engines: iterate the *pre-image* of a target
set until a fix point.  Useful on its own (error-state diagnosis,
"can this assertion ever fire?") and as a powerful cross-check — a
target intersects the forward reachable set iff the initial state lies
in the backward reachable set of the target (exploited in the tests).

Characteristic-function based (pre-image needs complements and the BFV
form has no negation operator, as the paper notes).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..errors import ResourceLimitError
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor
from .iwls95 import PartitionedRelation


def backward_reachability(
    circuit,
    target_states: Iterable[Sequence[bool]],
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    cluster_threshold: int = 800,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
) -> ReachResult:
    """States that can reach any of ``target_states`` (in any #steps).

    ``target_states`` are given in latch declaration order.  Returns a
    :class:`ReachResult` whose ``extra['backward_chi']`` holds the
    characteristic function (over current-state variables) of the
    backward-reachable set, including the targets themselves.
    """
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    monitor = RunMonitor(bdd, limits)

    deltas_by_latch = simulator.transition_functions(
        dict(space.input_var), dict(space.state_var)
    )
    by_net = dict(zip(circuit.latches, deltas_by_latch))
    parts = [
        bdd.equiv(bdd.var(space.next_var[net]), by_net[net])
        for net in space.state_order
    ]
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(
        bdd, parts, quantify, cluster_threshold=cluster_threshold
    )

    declaration = list(circuit.latches)
    index = {net: i for i, net in enumerate(declaration)}
    target = bdd.false
    for point in target_states:
        cube = {
            space.state_var[net]: bool(point[index[net]])
            for net in space.state_order
        }
        target = bdd.or_(target, bdd.cube(cube))

    reached = bdd.incref(target)
    frontier = bdd.incref(target)
    iterations = 0
    result = ReachResult(
        engine="backward",
        circuit=circuit.name,
        order=order_name,
        completed=False,
    )
    try:
        while True:
            iterations += 1
            # Lift the frontier to next-state variables and step back.
            frontier_t = bdd.rename(
                frontier, dict(zip(space.s_vars, space.t_vars))
            )
            predecessors = relation.pre_image(
                frontier_t, space.t_vars, space.x_vars
            )
            new = bdd.diff(predecessors, reached)
            if new == bdd.false:
                break
            previous = reached
            reached = bdd.incref(bdd.or_(reached, new))
            bdd.decref(previous)
            bdd.decref(frontier)
            frontier = bdd.incref(new)
            monitor.checkpoint((), iterations)
        result.completed = True
    except ResourceLimitError as error:
        result.failure = error.kind
    except RecursionError:
        result.failure = "depth"
    result.iterations = iterations
    # The frontier's pin is ours alone; only `reached` outlives this
    # function (via result.extra), so release the frontier before the
    # final sweep.
    bdd.decref(frontier)
    bdd.collect_garbage()
    result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
    result.extra["cache"] = bdd.cache_stats()
    result.reached_size = bdd.dag_size(reached)
    if result.completed:
        result.extra["space"] = space
        result.extra["backward_chi"] = reached
        if count_states:
            result.num_states = space.states_of(reached)
    result.seconds = monitor.elapsed
    return result


def can_reach(
    circuit,
    target_states: Iterable[Sequence[bool]],
    limits: Optional[ReachLimits] = None,
) -> bool:
    """True iff some target state is reachable from the reset state.

    Decided *backwards*: the reset state must lie in the backward
    reachable set of the targets.
    """
    result = backward_reachability(
        circuit, target_states, limits=limits, count_states=False
    )
    if not result.completed:
        raise ResourceLimitError(
            result.failure or "time", "backward traversal exhausted budget"
        )
    space = result.extra["space"]
    chi = result.extra["backward_chi"]
    assignment = dict(zip(space.s_vars, space.initial_point))
    return space.bdd.evaluate(chi, assignment)

"""Reachability with Boolean functional vectors (paper Figure 2).

The paper's flow: the reached set is held as a canonical BFV over the
current-state choice variables; each iteration

1. **symbolic simulation** — drive the circuit's state nets with the
   from-set's components and its inputs with fresh variables, producing
   the raw next-state vector over (state-choice, input) parameters;
2. **re-parameterization** (Sec 2.6) — existentially eliminate those
   parameters over the next-state choice variables, yielding the
   canonical image, then rename next-state choices back to current;
3. **set union** (Sec 2.3) — accumulate into the reached set;
4. **fix-point test** — canonical vectors are compared componentwise.

No characteristic function is ever constructed.  The *selection
heuristic* of Figures 1/2 picks the representation-smaller of the image
and the reached set as the next from-set.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bfv import BFV
from ..bfv.reparam import eliminate_params
from ..errors import ResourceLimitError
from ..obs import ensure_tracer
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor


def bfv_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    schedule: str = "support",
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """Run Figure 2 reachability; returns a :class:`ReachResult`.

    ``result.extra['space']`` / ``['reached']`` hold the
    :class:`ReachSpace` and final reached :class:`BFV` for
    cross-validation (when the run completes).  With a ``checkpointer``
    (see :mod:`repro.harness.checkpoint`) the reached/frontier vectors
    are snapshotted every iteration and the run resumes from the latest
    valid snapshot.  With a ``tracer`` (see :mod:`repro.obs`) every
    iteration emits a metric record and the loop phases are timed;
    ``result.extra['obs']`` carries the phase summary.  With a
    ``sanitize`` rate (see :mod:`repro.analysis.sanitizer`) sampled
    iterations audit manager and vector invariants;
    ``result.extra['sanitizer']`` carries the audit counts.
    """
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="bfv", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )
    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        input_drivers = {
            net: bdd.incref(bdd.var(v)) for net, v in space.input_var.items()
        }
        params = list(space.s_vars) + list(space.x_vars)
        latch_order = list(circuit.latches)
        rename_map = dict(zip(space.t_vars, space.s_vars))

        init = BFV.from_points(
            bdd, space.s_vars, space.initial_point_set(initial_points)
        )
    reached = init
    frontier = init
    iterations = 0
    result = ReachResult(
        engine="bfv", circuit=circuit.name, order=order_name, completed=False
    )
    snapshot = monitor.restore()
    if snapshot is not None:
        reached = snapshot.vectors["reached"]
        frontier = snapshot.vectors["frontier"]
        iterations = snapshot.iteration
        result.extra["resumed_from"] = snapshot.iteration
    try:
        while True:
            iterations += 1
            tracer.begin_iteration(iterations)
            with tracer.span("image"):
                drivers = dict(input_drivers)
                for net, comp in zip(space.state_order, frontier.components):
                    drivers[net] = comp
                raw_by_latch = simulator.next_state(drivers)
                by_net = dict(zip(latch_order, raw_by_latch))
                raw = [by_net[n] for n in space.state_order]
            with tracer.span("reparam"):
                image_t = eliminate_params(
                    bdd, space.t_vars, raw, params, schedule
                )
                image_comps = [bdd.rename(f, rename_map) for f in image_t]
                image = BFV(bdd, space.s_vars, image_comps, validate=False)
            with tracer.span("union"):
                new_reached = image.union(reached)
            with tracer.span("fixpoint_test"):
                fixed = new_reached == reached
            if fixed:
                if tracer.enabled:
                    with tracer.span("telemetry"):
                        frontier_size = frontier.shared_size()
                        reached_size = reached.shared_size()
                    tracer.end_iteration(
                        iterations,
                        frontier_size=frontier_size,
                        reached_size=reached_size,
                        fixpoint=True,
                    )
                break
            reached = new_reached
            if selection_heuristic and image.shared_size() < reached.shared_size():
                frontier = image
            else:
                frontier = reached
            if monitor.want_checkpoint(iterations):
                monitor.save_state(
                    iterations,
                    vectors={"reached": reached, "frontier": frontier},
                )
            monitor.checkpoint((), iterations)
            monitor.audit(iterations, vectors=(reached, frontier))
            if tracer.enabled:
                with tracer.span("telemetry"):
                    frontier_size = frontier.shared_size()
                    reached_size = reached.shared_size()
                tracer.end_iteration(
                    iterations,
                    frontier_size=frontier_size,
                    reached_size=reached_size,
                )
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, iterations)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            iterations,
        )
    result.iterations = iterations
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = reached.shared_size()
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        if result.completed:
            result.extra["space"] = space
            result.extra["reached"] = reached
            if count_states:
                result.num_states = reached.count()
    # Captured after the finalize span: every engine reports the same
    # window, and traced phase self-times can never exceed it.
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result

"""The Coudert-Berthet-Madre flow (paper Figure 1) — the motivation baseline.

Image computation is done with Boolean functional vectors, but all *set
manipulation* happens on characteristic functions, so every iteration
pays representation conversions.  Two historical image methods are
provided (``image_method``):

* ``"simulate"`` — the original CBM flow [6]: convert the from-set chi
  to a BFV, drive the symbolic simulator with its components, and
  re-parameterize (two conversions per iteration);
* ``"constrain"`` — the follow-up flow of Coudert & Madre [7], which
  the paper quotes as "replac[ing] the symbolic simulation with a range
  computation by constraining the transition functions with the
  characteristic function": each transition function is generalized
  cofactored (``constrain``) by the from-set and the image is the range
  of the constrained vector — avoiding the chi-to-BFV conversion.

The per-iteration conversion time is recorded separately
(``result.conversion_seconds``) — the cost the paper's direct BFV
algorithms eliminate (compare Figures 1 and 2).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..bfv import BFV, from_characteristic, to_characteristic
from ..bfv.reparam import eliminate_params
from ..errors import ResourceLimitError
from ..obs import ensure_tracer
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor


def cbm_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    schedule: str = "support",
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    image_method: str = "simulate",
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """Run the Figure 1 flow; returns a :class:`ReachResult`.

    With a ``tracer`` the per-iteration representation conversions the
    paper's Figure 2 eliminates show up as ``chi_conversion`` spans,
    directly comparable against the BFV engine's phase profile.  With a
    ``sanitize`` rate sampled iterations audit manager invariants and
    the reparameterized image vector; ``result.extra['sanitizer']``
    carries the audit counts.
    """
    if image_method not in ("simulate", "constrain"):
        raise ValueError("unknown image_method %r" % image_method)
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="cbm", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )
    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        input_drivers = {
            net: bdd.incref(bdd.var(v)) for net, v in space.input_var.items()
        }
        params = list(space.s_vars) + list(space.x_vars)
        latch_order = list(circuit.latches)
        rename_map = dict(zip(space.t_vars, space.s_vars))

        deltas = None
        if image_method == "constrain":
            deltas_by_latch = simulator.transition_functions(
                dict(space.input_var), dict(space.state_var)
            )
            by_net = dict(zip(latch_order, deltas_by_latch))
            deltas = [bdd.incref(by_net[n]) for n in space.state_order]

        reached = bdd.incref(space.initial_chi(initial_points))
        from_chi = bdd.incref(reached)
    iterations = 0
    conversion = 0.0
    result = ReachResult(
        engine="cbm", circuit=circuit.name, order=order_name, completed=False
    )
    snapshot = monitor.restore()
    if snapshot is not None:
        # The restored handles arrive with their own pins; drop ours
        # before adopting them or the initial-state refs leak for the
        # whole resumed run.
        bdd.decref(reached)
        bdd.decref(from_chi)
        reached = snapshot.functions["reached"]
        from_chi = snapshot.functions["frontier"]
        iterations = snapshot.iteration
        result.extra["resumed_from"] = snapshot.iteration
    try:
        while True:
            iterations += 1
            tracer.begin_iteration(iterations)
            if image_method == "simulate":
                # chi -> BFV conversion (the cost Figure 2 avoids).
                with tracer.span("chi_conversion"):
                    t0 = time.monotonic()
                    frontier = from_characteristic(bdd, space.s_vars, from_chi)
                    conversion += time.monotonic() - t0
                with tracer.span("image"):
                    drivers = dict(input_drivers)
                    for net, comp in zip(
                        space.state_order, frontier.components
                    ):
                        drivers[net] = comp
                    raw_by_latch = simulator.next_state(drivers)
                    by_net = dict(zip(latch_order, raw_by_latch))
                    raw = [by_net[n] for n in space.state_order]
            else:
                # Range computation [7]: generalized cofactor of each
                # transition function by the from-set; the image is the
                # range of the constrained vector.
                with tracer.span("image"):
                    raw = [
                        bdd.constrain(delta, from_chi) for delta in deltas
                    ]
            with tracer.span("reparam"):
                image_t = eliminate_params(
                    bdd, space.t_vars, raw, params, schedule
                )
                image_comps = [bdd.rename(f, rename_map) for f in image_t]
                image_vec = BFV(bdd, space.s_vars, image_comps, validate=False)
            # BFV -> chi conversion.
            with tracer.span("chi_conversion"):
                t0 = time.monotonic()
                image = to_characteristic(image_vec)
                conversion += time.monotonic() - t0
            with tracer.span("fixpoint_test"):
                new = bdd.diff(image, reached)
                fixed = new == bdd.false
            if fixed:
                if tracer.enabled:
                    with tracer.span("telemetry"):
                        frontier_size = bdd.dag_size(from_chi)
                        reached_size = bdd.dag_size(reached)
                    tracer.end_iteration(
                        iterations,
                        frontier_size=frontier_size,
                        reached_size=reached_size,
                        chi_size=reached_size,
                        fixpoint=True,
                    )
                break
            previous = reached
            with tracer.span("union"):
                reached = bdd.incref(bdd.or_(reached, image))
            bdd.decref(previous)
            bdd.decref(from_chi)
            if selection_heuristic and bdd.dag_size(new) > bdd.dag_size(reached):
                from_chi = bdd.incref(reached)
            else:
                from_chi = bdd.incref(new)
            if monitor.want_checkpoint(iterations):
                monitor.save_state(
                    iterations,
                    functions={"reached": reached, "frontier": from_chi},
                )
            monitor.checkpoint((), iterations)
            monitor.audit(
                iterations, roots=(reached, from_chi), vectors=(image_vec,)
            )
            if tracer.enabled:
                with tracer.span("telemetry"):
                    frontier_size = bdd.dag_size(from_chi)
                    reached_size = bdd.dag_size(reached)
                tracer.end_iteration(
                    iterations,
                    frontier_size=frontier_size,
                    reached_size=reached_size,
                    chi_size=reached_size,
                )
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, iterations)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            iterations,
        )
    result.iterations = iterations
    result.conversion_seconds = conversion
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = bdd.dag_size(reached)
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        if result.completed:
            result.extra["space"] = space
            result.extra["reached_chi"] = reached
            if count_states:
                result.num_states = space.states_of(reached)
    # Captured after the finalize span: every engine reports the same
    # window, and traced phase self-times can never exceed it.
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result

"""Shared infrastructure for the reachability engines.

:class:`ReachSpace` turns a circuit plus an order (slot list) into a BDD
variable layout:

* one variable ``x_<net>`` per primary input,
* per state bit, adjacent ``s_<net>`` (current state / BFV choice) and
  ``t_<net>`` (next state / re-parameterization choice) variables,

with slots laid out in the requested order.  The state-net slot order is
also the BFV *component order*, matching the paper's "same order for
component ordering and BDD variable ordering".

:class:`ReachLimits` models the paper's 10-hour / 1-GB budgets with
wall-clock and live-node ceilings; engines raise
:class:`repro.errors.ResourceLimitError` tagged ``"time"`` / ``"memory"``
— reported as T.O. / M.O. in the Table 2 reproduction.
:class:`ReachResult` carries the statistics Table 2 reports (time, peak
live BDD nodes) plus cross-validation data.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import BDD
from ..circuits.netlist import Circuit
from ..errors import CircuitError, ResourceLimitError
from ..obs import NULL_TRACER, ensure_tracer
from ..order import order_for

#: Table-2-style cell label for every failure code the engines and the
#: harness can emit.  Engines tag budget failures ``time`` / ``memory``
#: / ``iterations`` / ``depth`` (ResourceLimitError kinds, plus the
#: RecursionError translation); the supervisor adds ``crash`` for child
#: processes that die without reporting, and reuses ``time`` /
#: ``memory`` for watchdog kills; the parallel batch scheduler adds
#: ``cancelled`` for speculative attempts killed once an earlier
#: fallback rung completed.  :attr:`ReachResult.status` renders unknown
#: codes as ``FAIL`` rather than raising.
FAILURE_LABELS: Dict[str, str] = {
    "time": "T.O.",
    "memory": "M.O.",
    "iterations": "I.O.",
    "depth": "D.O.",
    "crash": "CRASH",
    "cancelled": "CANC.",
}


class ReachSpace:
    """BDD variable layout for reachability on one circuit."""

    def __init__(self, circuit: Circuit, slots: Optional[Sequence[str]] = None) -> None:
        circuit.validate()
        self.circuit = circuit
        if slots is None:
            slots = order_for(circuit, "S1")
        state_nets = set(circuit.latches)
        input_nets = set(circuit.inputs)
        missing = (state_nets | input_nets) - set(slots)
        if missing:
            raise CircuitError("order misses nets: %s" % sorted(missing))
        self.slots = list(slots)
        self.bdd = BDD()
        self.input_var: Dict[str, int] = {}
        self.state_var: Dict[str, int] = {}
        self.next_var: Dict[str, int] = {}
        #: State nets in component order (== slot order).
        self.state_order: List[str] = []
        for net in self.slots:
            if net in input_nets:
                self.input_var[net] = self.bdd.add_var("x_" + net)
            elif net in state_nets:
                self.state_var[net] = self.bdd.add_var("s_" + net)
                self.next_var[net] = self.bdd.add_var("t_" + net)
                self.state_order.append(net)
            else:
                raise CircuitError("order slot %r is not an input or state net" % net)
        #: Choice/current-state variables in component order.
        self.s_vars: Tuple[int, ...] = tuple(
            self.state_var[n] for n in self.state_order
        )
        #: Next-state/re-parameterization variables in component order.
        self.t_vars: Tuple[int, ...] = tuple(
            self.next_var[n] for n in self.state_order
        )
        self.x_vars: Tuple[int, ...] = tuple(
            self.input_var[n] for n in circuit.inputs
        )
        init_by_net = {
            latch.output: latch.init for latch in circuit.latches.values()
        }
        #: Initial state bits in component order.
        self.initial_point: Tuple[bool, ...] = tuple(
            init_by_net[n] for n in self.state_order
        )

    def initial_point_set(
        self, initial_points: Optional[Sequence[Sequence[bool]]] = None
    ) -> List[Tuple[bool, ...]]:
        """Initial states as component-order tuples.

        ``initial_points`` (optional) gives the initial state set in
        *latch declaration order*; the default is the circuit's single
        reset state.
        """
        if initial_points is None:
            return [self.initial_point]
        declaration = list(self.circuit.latches)
        index = {net: i for i, net in enumerate(declaration)}
        points = []
        for point in initial_points:
            if len(point) != len(declaration):
                raise CircuitError("initial state width mismatch")
            points.append(
                tuple(bool(point[index[net]]) for net in self.state_order)
            )
        if not points:
            raise CircuitError("initial state set must be non-empty")
        return points

    def initial_chi(
        self, initial_points: Optional[Sequence[Sequence[bool]]] = None
    ) -> int:
        """Characteristic function (over ``s`` vars) of the initial set."""
        chi = self.bdd.false
        for point in self.initial_point_set(initial_points):
            chi = self.bdd.or_(
                chi, self.bdd.cube(dict(zip(self.s_vars, point)))
            )
        return chi

    def t_to_s(self, node: int) -> int:
        """Rename next-state variables to current-state variables."""
        return self.bdd.rename(
            node, dict(zip(self.t_vars, self.s_vars))
        )

    def states_of(self, chi: int) -> int:
        """Number of states in a characteristic function over ``s`` vars."""
        return self.bdd.sat_count(chi, self.s_vars)


@dataclass
class ReachLimits:
    """Resource budget for one reachability run."""

    max_seconds: Optional[float] = None
    max_live_nodes: Optional[int] = None
    max_iterations: Optional[int] = None


@dataclass
class ReachResult:
    """Outcome and statistics of a reachability run."""

    engine: str
    circuit: str
    order: str
    completed: bool
    # "time" | "memory" | "iterations" | "depth" | "crash"
    failure: Optional[str] = None
    iterations: int = 0
    seconds: float = 0.0
    peak_live_nodes: int = 0
    num_states: Optional[int] = None
    reached_size: Optional[int] = None  # representation size (shared nodes)
    conversion_seconds: float = 0.0  # Fig 1 flow: BFV<->chi conversion cost
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def status(self) -> str:
        """Table-2-style cell: time, or a :data:`FAILURE_LABELS` code.

        Every failure code the engines or the harness can emit has a
        label; anything unrecognized (including a missing code) renders
        as ``FAIL`` instead of raising.
        """
        if self.completed:
            return "%.2f" % self.seconds
        return FAILURE_LABELS.get(self.failure or "", "FAIL")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (crosses the supervisor process boundary).

        Non-serializable ``extra`` entries (the cross-validation objects
        like ``space`` / ``reached``) are dropped.
        """
        data: Dict[str, object] = {}
        for spec in fields(self):
            data[spec.name] = getattr(self, spec.name)
        extra = {}
        for key, value in self.extra.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            extra[key] = value
        data["extra"] = extra
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReachResult":
        known = {spec.name for spec in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class RunMonitor:
    """Tracks time/node budgets and peak-live statistics for a run.

    Besides budget enforcement, the monitor is the engines' hook into the
    fault-tolerant harness (:mod:`repro.harness`):

    * an optional *checkpointer* (duck-typed; see
      :class:`repro.harness.checkpoint.Checkpointer`) receives the
      engine's frontier/reached state every iteration via
      :meth:`save_state`, and hands back the latest valid snapshot via
      :meth:`restore`;
    * the process-global :attr:`iteration_hooks` are invoked at every
      iteration checkpoint — :mod:`repro.harness.faults` uses them to
      inject deterministic time-outs, hangs, and crashes;
    * an optional *sanitizer* (``sanitize`` rate, see
      :class:`repro.analysis.sanitizer.Sanitizer`) audits the manager,
      the engines' accumulated vectors and loaded persisted state via
      :meth:`audit` — engines call it right after :meth:`checkpoint`
      so same-iteration corruption (including injected faults) is
      caught before it propagates.
    """

    #: Process-global callbacks ``hook(monitor, iteration)`` fired at the
    #: start of every :meth:`checkpoint` call (fault injection hook).
    iteration_hooks: List[Callable[["RunMonitor", int], None]] = []

    def __init__(
        self,
        bdd: BDD,
        limits: Optional[ReachLimits],
        checkpointer: Optional[object] = None,
        tracer: Optional[object] = None,
        sanitize: Optional[float] = None,
    ) -> None:
        self.bdd = bdd
        self.limits = limits or ReachLimits()
        self.checkpointer = checkpointer
        #: Runtime invariant auditor (None unless a ``--sanitize`` rate
        #: was requested); see :mod:`repro.analysis.sanitizer`.
        self.sanitizer = None
        if sanitize:
            from ..analysis.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(bdd, rate=float(sanitize))
        #: Observability hook (see :mod:`repro.obs`): GC work inside
        #: :meth:`checkpoint` is timed under a ``gc`` span, snapshots
        #: under a ``checkpoint`` span, and checkpoint/resume become
        #: trace events.  Defaults to the zero-cost null tracer.
        self.tracer = ensure_tracer(tracer)
        self.start = time.monotonic()
        self.peak_live = 0
        #: Minimum allocation before a no-budget checkpoint collects.
        self.gc_floor = 4096
        self._gc_live = 0
        #: Nodes allocated by sanitizer audits since the last collection.
        #: Audit scratch (oracle replays, BFV round-trips) is garbage the
        #: moment the pass ends, but it still raises ``num_nodes``;
        #: discounting it keeps the GC schedule — and therefore the
        #: reported peak-live statistic — byte-identical to an
        #: unsanitized run (the --jobs determinism guarantee).
        self._audit_nodes = 0
        self.iteration = 0
        if self.limits.max_live_nodes is not None:
            # Hard allocation ceiling so a blowing-up image computation
            # aborts from inside the BDD layer rather than only at the
            # next iteration checkpoint.  Allocation includes garbage
            # deferred by :meth:`checkpoint` (up to 5x the budget), hence
            # the headroom factor.
            bdd.node_limit = max(
                20 * self.limits.max_live_nodes, 100_000
            )

    @property
    def elapsed(self) -> float:
        """Seconds since the run started."""
        return time.monotonic() - self.start

    def want_checkpoint(self, iteration: int) -> bool:
        """True iff the attached checkpointer wants a snapshot now.

        Lets engines skip building the snapshot payload (e.g. the
        conjunctive engine's BFV view) when it would be thrown away.
        """
        return self.checkpointer is not None and self.checkpointer.due(
            iteration
        )

    def save_state(
        self,
        iteration: int,
        functions: Optional[Dict[str, int]] = None,
        vectors: Optional[Dict[str, object]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Persist the engine's state through the attached checkpointer.

        ``meta`` (optional, JSON-safe) rides along in the checkpoint
        metadata under the ``"extra"`` key — the saturation engines use
        it to serialize their chaining position so kill-resume is exact
        mid-chain (see :mod:`repro.reach.sat_engine`).
        """
        if self.checkpointer is not None:
            with self.tracer.span("checkpoint"):
                saved = self.checkpointer.maybe_save(
                    self.bdd, iteration, functions, vectors, meta
                )
            if saved:
                self.tracer.event("checkpoint", iteration=iteration)

    def restore(self):
        """Latest valid snapshot to resume from, or None.

        A restored snapshot's counter baselines (see
        :meth:`repro.bdd.BDD.counters_snapshot`) are added onto the
        manager, so statistics reported after a resume are monotonic
        across the whole logical run instead of resetting to zero.
        """
        if self.checkpointer is None:
            return None
        snapshot = self.checkpointer.restore(self.bdd)
        if snapshot is not None:
            if self.sanitizer is not None:
                # Schema-validate what we are about to trust: resuming
                # from a malformed snapshot corrupts the whole run.
                self.sanitizer.validate_checkpoint(
                    snapshot.meta, snapshot.path
                )
            counters = snapshot.meta.get("counters")
            if counters and hasattr(self.bdd, "restore_counters"):
                self.bdd.restore_counters(counters)
            self.tracer.event(
                "resume", iteration=snapshot.iteration, path=snapshot.path
            )
        return snapshot

    def audit(
        self,
        iteration: int,
        roots: Sequence[int] = (),
        vectors: Sequence[object] = (),
        decompositions: Sequence[object] = (),
    ) -> bool:
        """Run a sanitizer pass when one is attached and the stride hits.

        Engines call this right after :meth:`checkpoint` with the
        vectors / decompositions they are accumulating; it is a cheap
        no-op when no ``--sanitize`` rate was configured.  Audit time is
        accounted under a ``sanitize`` tracer span.
        """
        sanitizer = self.sanitizer
        if sanitizer is None or not sanitizer.should_audit(iteration):
            return False
        before = self.bdd.num_nodes
        with self.tracer.span("sanitize"):
            ran = sanitizer.audit(
                iteration,
                roots=roots,
                vectors=vectors,
                decompositions=decompositions,
            )
        self._audit_nodes += max(0, self.bdd.num_nodes - before)
        if ran:
            self.tracer.event(
                "sanitize",
                iteration=iteration,
                audits=sanitizer.counts["audits"],
                cache_replayed=sanitizer.counts["cache_replayed"],
                vectors_audited=sanitizer.counts["vectors_audited"],
            )
        return ran

    def annotate(self, result: "ReachResult", error, iteration: int) -> None:
        """Record a budget failure and its partial-progress statistics.

        Fills ``result.failure`` and ``result.extra`` with how far the
        run got (``elapsed``, ``iteration``, ``live_nodes``) so T.O./M.O.
        rows are informative.
        """
        result.failure = error.kind
        elapsed = getattr(error, "elapsed", None)
        result.extra["elapsed"] = (
            elapsed if elapsed is not None else self.elapsed
        )
        err_iter = getattr(error, "iteration", None)
        result.extra["iteration"] = (
            err_iter if err_iter is not None else iteration
        )
        live = getattr(error, "live_nodes", None)
        result.extra["live_nodes"] = (
            live if live is not None else self.bdd.count_live()
        )

    def checkpoint(self, roots: Sequence[int], iteration: int) -> None:
        """Enforce the budgets; collect only when allocation demands it.

        Live nodes never exceed allocated nodes, so while the allocated
        count stays within ``max_live_nodes`` a memory violation is
        impossible and no mark pass is needed.  Past the budget, a
        *mark-only* :meth:`~repro.bdd.BDD.count_live` enforces the limit
        exactly without freeing anything; the actual collection — which
        also sweeps every computed-table entry whose nodes died — is
        deferred until allocation reaches several times the budget.
        Deferring keeps the kernels' computed tables warm across
        iterations, where image computations reuse sub-results from
        earlier frontiers (the ``node_limit`` ceiling installed in
        ``__init__`` still caps allocation between checkpoints).
        Without a node budget, collection falls back to the classic
        grow-by-2x heuristic over the last post-GC live count.
        """
        self.iteration = iteration
        for hook in list(self.iteration_hooks):
            hook(self, iteration)
        limits = self.limits
        bdd = self.bdd
        # Sanitizer scratch is dead weight, not engine allocation; see
        # :attr:`_audit_nodes`.
        allocated = bdd.num_nodes - self._audit_nodes
        budget = limits.max_live_nodes
        if getattr(bdd, "per_iteration_gc", False):
            # Escape hatch: collect at every checkpoint, the cadence the
            # engines used before collection became budget-driven.  The
            # benchmark baseline sets this to reproduce the seed stack
            # end-to-end (see tests/bdd/reference_kernels.py).
            with self.tracer.span("gc"):
                bdd.collect_garbage(roots)
                live = self._gc_live = bdd.count_live(roots)
                self._audit_nodes = 0
            if live > self.peak_live:
                self.peak_live = live
        elif budget is not None:
            if allocated <= budget:
                live = allocated  # upper bound; exact count not needed
            elif allocated <= 5 * budget:
                live = bdd.count_live(roots)  # mark-only budget check
                if live > self.peak_live:
                    self.peak_live = live
            else:
                with self.tracer.span("gc"):
                    bdd.collect_garbage(roots)
                    live = self._gc_live = bdd.count_live(roots)
                    self._audit_nodes = 0
                if live > self.peak_live:
                    self.peak_live = live
        elif allocated > max(self.gc_floor, 2 * self._gc_live):
            with self.tracer.span("gc"):
                bdd.collect_garbage(roots)
                live = self._gc_live = bdd.count_live(roots)
                self._audit_nodes = 0
            if live > self.peak_live:
                self.peak_live = live
        else:
            live = allocated
        if limits.max_live_nodes is not None and live > limits.max_live_nodes:
            raise ResourceLimitError(
                "memory",
                "live nodes %d exceed budget" % live,
                elapsed=self.elapsed,
                iteration=iteration,
                live_nodes=live,
            )
        if (
            limits.max_seconds is not None
            and self.elapsed > limits.max_seconds
        ):
            raise ResourceLimitError(
                "time",
                "time budget exceeded",
                elapsed=self.elapsed,
                iteration=iteration,
                live_nodes=live,
            )
        if (
            limits.max_iterations is not None
            and iteration >= limits.max_iterations
        ):
            raise ResourceLimitError(
                "iterations",
                "iteration budget exceeded",
                elapsed=self.elapsed,
                iteration=iteration,
                live_nodes=live,
            )

"""Reachability on McMillan's conjunctive decomposition (paper Sec 2.7).

The paper notes that when the component order equals the BDD variable
order (as in all its experiments, and ours), it is more efficient to run
the Figure 2 flow with the set manipulation carried out on the
conjunctive decomposition, "as explained in Section 2.7".  This engine
does exactly that: image computation is still symbolic simulation +
re-parameterization, but the reached set is a
:class:`repro.bfv.conjunctive.ConjunctiveDecomposition` and the union is
performed on the constraint view.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bfv import BFV
from ..bfv.conjunctive import ConjunctiveDecomposition
from ..bfv.reparam import eliminate_params
from ..errors import ResourceLimitError
from ..obs import ensure_tracer
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor


def conj_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    schedule: str = "support",
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """Run Figure 2 with conjunctive-decomposition set manipulation.

    With a ``sanitize`` rate sampled iterations audit the image vector,
    the frontier, and the reached decomposition's constraint-view
    invariants; ``result.extra['sanitizer']`` carries the audit counts.
    """
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="conj", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )
    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        input_drivers = {
            net: bdd.incref(bdd.var(v)) for net, v in space.input_var.items()
        }
        params = list(space.s_vars) + list(space.x_vars)
        latch_order = list(circuit.latches)
        rename_map = dict(zip(space.t_vars, space.s_vars))

        init = BFV.from_points(
            bdd, space.s_vars, space.initial_point_set(initial_points)
        )
        reached = ConjunctiveDecomposition.from_bfv(init)
    frontier = init
    iterations = 0
    result = ReachResult(
        engine="conj", circuit=circuit.name, order=order_name, completed=False
    )
    snapshot = monitor.restore()
    if snapshot is not None:
        reached = ConjunctiveDecomposition.from_bfv(
            snapshot.vectors["reached"]
        )
        frontier = snapshot.vectors["frontier"]
        iterations = snapshot.iteration
        result.extra["resumed_from"] = snapshot.iteration
    try:
        while True:
            iterations += 1
            tracer.begin_iteration(iterations)
            with tracer.span("image"):
                drivers = dict(input_drivers)
                for net, comp in zip(space.state_order, frontier.components):
                    drivers[net] = comp
                raw_by_latch = simulator.next_state(drivers)
                by_net = dict(zip(latch_order, raw_by_latch))
                raw = [by_net[n] for n in space.state_order]
            with tracer.span("reparam"):
                image_t = eliminate_params(
                    bdd, space.t_vars, raw, params, schedule
                )
                image_comps = [bdd.rename(f, rename_map) for f in image_t]
                image_vec = BFV(bdd, space.s_vars, image_comps, validate=False)
            with tracer.span("union"):
                image = ConjunctiveDecomposition.from_bfv(image_vec)
                new_reached = image.union(reached)
            with tracer.span("fixpoint_test"):
                fixed = new_reached == reached
            if fixed:
                if tracer.enabled:
                    with tracer.span("telemetry"):
                        frontier_size = frontier.shared_size()
                        reached_size = reached.shared_size()
                    tracer.end_iteration(
                        iterations,
                        frontier_size=frontier_size,
                        reached_size=reached_size,
                        fixpoint=True,
                    )
                break
            reached = new_reached
            if (
                selection_heuristic
                and image.shared_size() < reached.shared_size()
            ):
                frontier = image_vec
            else:
                frontier = reached.to_bfv()
            if monitor.want_checkpoint(iterations):
                monitor.save_state(
                    iterations,
                    vectors={
                        "reached": reached.to_bfv(),
                        "frontier": frontier,
                    },
                )
            monitor.checkpoint((), iterations)
            monitor.audit(
                iterations,
                vectors=(image_vec, frontier),
                decompositions=(reached,),
            )
            if tracer.enabled:
                with tracer.span("telemetry"):
                    frontier_size = frontier.shared_size()
                    reached_size = reached.shared_size()
                tracer.end_iteration(
                    iterations,
                    frontier_size=frontier_size,
                    reached_size=reached_size,
                )
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, iterations)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            iterations,
        )
    result.iterations = iterations
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = reached.shared_size()
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        if result.completed:
            result.extra["space"] = space
            result.extra["reached_cd"] = reached
            if count_states:
                result.num_states = reached.count()
    # Captured after the finalize span: every engine reports the same
    # window, and traced phase self-times can never exceed it.
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result

"""IWLS95-style partitioned transition relations with early quantification.

The paper's baseline is "the reachability analysis implemented in VIS,
using the IWLS95 set of heuristics [12] with default settings": the
transition relation ``T(s, x, t) = AND_i (t_i <-> delta_i(s, x))`` is
kept as a list of conjuncts, greedily clustered up to a size threshold,
and the clusters are ordered so that quantification variables can be
summed out as early as possible [8].  Image computation is then a chain
of fused ``and_exists`` (relational product) steps.

This module implements that pipeline in a simplified but faithful form:

* parts are ordered by a greedy benefit score — prefer conjuncts that
  let many quantifiable variables die while introducing few new
  variables (the core of the IWLS95 ordering);
* clustering conjoins parts in that order until the cluster BDD exceeds
  ``cluster_threshold`` nodes;
* for each cluster, the variables whose last occurrence it is are
  scheduled for quantification at that step.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple


def order_parts(
    bdd, parts: Sequence[int], quantify: Set[int]
) -> List[int]:
    """Greedy IWLS95-style ordering of relation conjuncts.

    Repeatedly picks the part with the best (dying-quantifiable-vars,
    fewest-new-vars) score relative to the parts already placed.
    """
    remaining = list(parts)
    supports = {p: set(bdd.support(p)) for p in remaining}
    placed_support: Set[int] = set()
    ordered: List[int] = []
    while remaining:
        # A quantifiable variable dies with part p if p is the only
        # remaining part whose support contains it.
        occurrences: dict = {}
        for p in remaining:
            for v in supports[p]:
                occurrences[v] = occurrences.get(v, 0) + 1

        def score(p: int) -> Tuple[int, int, int]:
            sup = supports[p]
            dying = sum(
                1 for v in sup if v in quantify and occurrences[v] == 1
            )
            new = len(sup - placed_support)
            return (-dying, new, len(sup))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        placed_support |= supports[best]
    return ordered


def cluster_parts(
    bdd, parts: Sequence[int], cluster_threshold: int
) -> List[int]:
    """Conjoin consecutive parts until the threshold size is reached."""
    clusters: List[int] = []
    current = bdd.true
    for part in parts:
        combined = bdd.and_(current, part)
        if (
            current != bdd.true
            and bdd.dag_size(combined) > cluster_threshold
        ):
            clusters.append(current)
            current = part
        else:
            current = combined
    if current != bdd.true or not clusters:
        clusters.append(current)
    return clusters


def quantification_schedule(
    bdd, clusters: Sequence[int], quantify: Set[int]
) -> List[Tuple[int, List[int]]]:
    """Pair each cluster with the variables quantifiable right after it.

    A variable can be summed out once no *later* cluster mentions it
    (the from-set argument of the relational product is always the
    accumulated prefix, so earlier occurrences are already inside).
    """
    supports = [set(bdd.support(c)) for c in clusters]
    schedule: List[Tuple[int, List[int]]] = []
    seen_after: Set[int] = set()
    later: List[Set[int]] = [set()] * len(clusters)
    for i in range(len(clusters) - 1, -1, -1):
        later[i] = set(seen_after)
        seen_after |= supports[i]
    for i, cluster in enumerate(clusters):
        dying = [
            v
            for v in quantify
            if v not in later[i] and (v in supports[i] or i == len(clusters) - 1)
        ]
        schedule.append((cluster, dying))
    return schedule


class PartitionedRelation:
    """A clustered transition relation ready for image computation."""

    def __init__(
        self,
        bdd,
        parts: Sequence[int],
        quantify: Sequence[int],
        cluster_threshold: int = 800,
    ) -> None:
        self.bdd = bdd
        quantify_set = set(quantify)
        ordered = order_parts(bdd, parts, quantify_set)
        self.clusters = cluster_parts(bdd, ordered, cluster_threshold)
        self.schedule = quantification_schedule(
            bdd, self.clusters, quantify_set
        )
        for cluster in self.clusters:
            bdd.incref(cluster)
        # Any quantified variable mentioned by no cluster at all must
        # still be summed out of the from-set (free inputs).
        covered = set()
        for cluster in self.clusters:
            covered |= set(bdd.support(cluster))
        self.residual_quantify = sorted(quantify_set - covered)

    def image(self, from_set: int) -> int:
        """``EXISTS quantify . from_set AND T`` via chained and_exists."""
        bdd = self.bdd
        product = from_set
        if self.residual_quantify:
            product = bdd.exists(self.residual_quantify, product)
        for cluster, dying in self.schedule:
            product = bdd.and_exists(product, cluster, dying)
        return product

    def pre_image(self, target: int, next_vars, input_vars=()) -> int:
        """States with a successor in ``target`` (given over next-state vars).

        Computes ``EXISTS next_vars, input_vars . T AND target`` —
        backward reachability's workhorse.  The result ranges over the
        current-state variables; inputs are existential (some input
        drives the transition).
        """
        bdd = self.bdd
        quantify = set(next_vars) | set(input_vars)
        # Early quantification: a variable can be summed once no
        # remaining cluster mentions it.
        supports = [set(bdd.support(c)) for c in self.clusters]
        later: list = [set()] * len(self.clusters)
        seen_after: set = set()
        for i in range(len(self.clusters) - 1, -1, -1):
            later[i] = set(seen_after)
            seen_after |= supports[i]
        product = target
        for i, cluster in enumerate(self.clusters):
            dying = [
                v
                for v in quantify
                if v not in later[i]
                and (v in supports[i] or i == len(self.clusters) - 1)
            ]
            product = bdd.and_exists(product, cluster, dying)
        leftovers = quantify - set().union(*supports) if supports else quantify
        if leftovers:
            product = bdd.exists(sorted(leftovers), product)
        return product

    def release(self) -> None:
        """Drop the references pinning the clusters."""
        for cluster in self.clusters:
            self.bdd.decref(cluster)

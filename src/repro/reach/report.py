"""Tabular reporting for reachability runs (the paper's Table 2 layout)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .common import ReachResult


def format_grid(rows: Sequence[Sequence[str]], header_rule: bool = True) -> str:
    """Render rows of string cells as an aligned left-justified grid.

    The first row is the header; with ``header_rule`` a dashed rule is
    inserted below it.  Shared by the Table 2/3 renderers here and the
    trace trajectory tables in :mod:`repro.obs.report`.
    """
    if not rows:
        return ""
    ncols = len(rows[0])
    widths = [max(len(row[i]) for row in rows) for i in range(ncols)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
        )
        if i == 0 and header_rule:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table2(
    results: Iterable[ReachResult], engines: Sequence[str] = ("tr", "bfv")
) -> str:
    """Render results in the paper's Table 2 shape.

    One row per (circuit, order); per engine, the runtime in seconds (or
    T.O. / M.O.) and the peak live BDD node count in thousands.
    """
    by_key: Dict[tuple, Dict[str, ReachResult]] = {}
    order_seen: List[tuple] = []
    for result in results:
        key = (result.circuit, result.order)
        if key not in by_key:
            by_key[key] = {}
            order_seen.append(key)
        by_key[key][result.engine] = result

    headers = ["Name", "Order"]
    for engine in engines:
        headers.extend(["%s time(s)" % engine, "%s Peak(K)" % engine])
    rows = [headers]
    for key in order_seen:
        circuit, order = key
        row = [circuit, order]
        for engine in engines:
            result = by_key[key].get(engine)
            if result is None:
                row.extend(["-", "-"])
            else:
                row.append(result.status)
                row.append("%.1f" % (result.peak_live_nodes / 1000.0))
        rows.append(row)
    return format_grid(rows)


def format_table3(sizes: Dict[str, Dict[str, int]]) -> str:
    """Render Table 3: chi size vs BFV shared size per order family."""
    orders = list(sizes)
    rows = [["Order"] + orders]
    rows.append(["Char.Fn"] + ["%d" % sizes[o]["chi"] for o in orders])
    rows.append(["BFV"] + ["%d" % sizes[o]["bfv"] for o in orders])
    return format_grid(rows)

"""Saturation reachability: chained image steps over disjunctive partitions.

Every other engine in this package computes one monolithic image per
breadth-first iteration.  The two engines here instead *chain* smaller
image steps and run each to a local fix point — structural saturation
in the style of the biodivine/LTSmin family, adapted to synchronous
circuits:

* the transition relation is split **disjunctively** by cofactoring the
  next-state functions against cubes over a few primary inputs
  (``T = OR_c  T|_{x=c}``), which is exact for synchronous semantics —
  unlike per-latch *asynchronous* firing, every disjunct still updates
  all latches at once;
* inside each disjunct the relation stays **per-latch conjunctive**
  (one ``t_i <-> delta_i|_c`` conjunct per latch) and is clustered and
  early-quantified by the IWLS95 machinery
  (:class:`~repro.reach.iwls95.PartitionedRelation`), so each chained
  step is itself a chain of per-latch ``and_exists`` products;
* a **chaining schedule** orders the disjuncts (static IWLS95-flavoured
  scoring: cheapest relation chain first, with an optional round-robin
  rotation as the fallback schedule) and each partition is saturated to
  a **local fix point** before the chain moves on, feeding newly found
  states straight back into the current round instead of parking them
  for the next breadth-first wave;
* **frontier-avoidance** keeps re-fires cheap: each partition tracks a
  *pending* delta (states discovered since it last fired) and is
  skipped while that delta is empty; on top of that, the pending set is
  projected onto the partition's state-variable support and fired only
  if the projection adds anything over what the partition has already
  seen — the image of a partition depends only on that projection, so
  states that look identical to a partition never trigger a re-fire.

:func:`sat_reachability` (engine ``sat``) runs this over characteristic
functions; :func:`bfv_sat_reachability` (engine ``bfv-sat``) is the
hybrid that saturates *inside* the BFV flow of Figure 2: each partition
fires by symbolic simulation with the cube's inputs driven constant,
re-parameterizes over the remaining parameters, and accumulates into
the reached set by BFV union — no characteristic function is built.

Saturation changes the meaning of ``ReachResult.iterations``: it counts
**macro rounds** (full sweeps of the chaining schedule), not images.
Every round dominates one breadth-first image over the whole reached
set, so ``1 <= rounds <= bfs_depth`` — the differential campaign in
``tests/test_fuzz.py`` pins exactly this contract.  The fine-grained
progress unit is the *fire* (one chained image step); fires drive the
budget/fault/checkpoint tick so kill-resume can cut the run mid-chain,
and the chaining position (round, schedule index, fire count) rides in
the checkpoint metadata to make resume exact.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..bfv import BFV
from ..bfv.reparam import eliminate_params
from ..errors import CircuitError, ResourceLimitError
from ..obs import ensure_tracer
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor
from .iwls95 import PartitionedRelation

#: Chaining schedules: ``static`` fires the IWLS95-scored order every
#: round; ``round-robin`` rotates the starting partition per round (the
#: fallback when the static scoring has no signal, e.g. all-equal
#: chains).
CHAIN_SCHEDULES = ("static", "round-robin")

#: Default number of input variables to split the relation on.  0 keeps
#: one disjunct (pure chaining + frontier-avoidance, the fastest
#: setting on the Table-2 surrogates); positive values trade more,
#: simpler partitions for more fires — worthwhile when cofactoring
#: collapses the next-state logic.
DEFAULT_SPLIT_INPUTS = 0

#: Default IWLS95 clustering threshold for the chi-based saturation
#: engine.  Finer than ``tr``'s 800: chained fires are many and small,
#: so smaller clusters (earlier quantification, cheaper and_exists
#: steps) amortize better — on the Table-2 surrogates 400 beats 800 on
#: four of the five circuits and flips s1512s from a tie with ``tr``
#: into a clear win.
DEFAULT_SAT_CLUSTER_THRESHOLD = 400

#: The BFV hybrid defaults to splitting one input: each cube then
#: drives that input constant during symbolic simulation, shrinking the
#: parameter set the re-parameterization has to eliminate.
DEFAULT_BFV_SPLIT_INPUTS = 1


def split_input_vars(
    bdd, deltas: Dict[str, int], state_order: Sequence[str], x_vars, cap: int
) -> Tuple[List[int], List[int]]:
    """Choose up to ``cap`` input variables to split the relation on.

    Ranks inputs by how many next-state functions mention them (most
    shared first — cofactoring those simplifies the most per-latch
    logic); inputs mentioned by no delta are never split on.  Returns
    ``(split, unsplit)`` with ``unsplit`` in declaration order.
    """
    occurrence: Dict[int, int] = {}
    for net in state_order:
        for var in bdd.support(deltas[net]):
            occurrence[var] = occurrence.get(var, 0) + 1
    ranked = sorted(
        (v for v in x_vars if occurrence.get(v)),
        key=lambda v: (-occurrence[v], v),
    )
    split = ranked[: max(0, cap)]
    unsplit = [v for v in x_vars if v not in split]
    return split, unsplit


class _Partition:
    """One disjunct of the split relation plus its saturation state."""

    __slots__ = (
        "cube", "relation", "support", "nonsupport", "pending", "fired",
        "fires", "skips",
    )

    def __init__(self, cube, relation, support, nonsupport):
        self.cube = cube  # {input var: bool} (empty for the unsplit case)
        self.relation = relation
        self.support = support  # s-vars the relation actually reads
        self.nonsupport = nonsupport  # s-vars it ignores (projected away)
        self.pending = None  # chi node or BFV; None/false = clean
        self.fired = None  # chi engines: projection already fired on
        self.fires = 0
        self.skips = 0


def chain_order(bdd, partitions: Sequence[_Partition]) -> List[int]:
    """Static chaining order: cheapest relation chain first.

    The IWLS95-flavoured score: partitions whose clustered chain is
    smaller fire first, so early fires (which run to a local fix point
    and feed everyone else's pending set) are the cheap ones.  Ties
    break on cube index, keeping the order deterministic.
    """
    def cost(index: int) -> Tuple[int, int]:
        chain = partitions[index].relation.clusters
        return (sum(bdd.dag_size(c) for c in chain), index)

    return sorted(range(len(partitions)), key=cost)


def sweep_order(order: Sequence[int], round_number: int, schedule: str) -> List[int]:
    """The firing order for one macro round under a chaining schedule."""
    if schedule == "static" or len(order) < 2:
        return list(order)
    shift = (round_number - 1) % len(order)
    return list(order[shift:]) + list(order[:shift])


def _chain_meta(round_number, position, fires, order) -> Dict[str, object]:
    """Chaining position serialized into checkpoint metadata."""
    return {
        "sat": {
            "round": round_number,
            "position": position,
            "fires": fires,
            "order": list(order),
        }
    }


def sat_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    cluster_threshold: int = DEFAULT_SAT_CLUSTER_THRESHOLD,
    split_inputs: int = DEFAULT_SPLIT_INPUTS,
    chain_schedule: str = "static",
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """Saturation reachability over characteristic functions.

    ``result.extra['space']`` / ``['reached_chi']`` hold the layout and
    reached set for cross-validation; ``result.extra['saturation']``
    carries the per-partition fire/skip counts, the chaining order and
    the split variables.  ``selection_heuristic`` toggles the
    projection-based frontier-avoidance (off, partitions fire on their
    raw pending deltas — same result, more work).  With a
    ``checkpointer`` the reached set, every pending/fired set and the
    chaining position are snapshotted at every fire, and the run
    resumes mid-chain from the latest valid snapshot.
    """
    if chain_schedule not in CHAIN_SCHEDULES:
        raise CircuitError(
            "unknown chain schedule %r (want one of %s)"
            % (chain_schedule, ", ".join(CHAIN_SCHEDULES))
        )
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="sat", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )

    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        deltas_by_latch = simulator.transition_functions(
            dict(space.input_var), dict(space.state_var)
        )
        by_net = dict(zip(circuit.latches, deltas_by_latch))
        split, unsplit = split_input_vars(
            bdd, by_net, space.state_order, space.x_vars, split_inputs
        )
        quantify = list(space.s_vars) + unsplit
        partitions: List[_Partition] = []
        for bits in itertools.product((False, True), repeat=len(split)):
            cube = dict(zip(split, bits))
            parts = []
            for net in space.state_order:
                delta = by_net[net]
                if cube:
                    delta = bdd.cofactor_cube(delta, cube)
                parts.append(
                    bdd.equiv(bdd.var(space.next_var[net]), delta)
                )
            relation = PartitionedRelation(
                bdd, parts, quantify, cluster_threshold=cluster_threshold
            )
            read = set()
            for cluster in relation.clusters:
                read |= set(bdd.support(cluster))
            support = sorted(set(space.s_vars) & read)
            nonsupport = sorted(set(space.s_vars) - read)
            partitions.append(_Partition(cube, relation, support, nonsupport))
        order = chain_order(bdd, partitions)

        init = space.initial_chi(initial_points)
        reached = bdd.incref(init)
        for part in partitions:
            part.pending = bdd.incref(init)
            part.fired = bdd.false

    def set_slot(part, attr, node):
        bdd.incref(node)
        bdd.decref(getattr(part, attr))
        setattr(part, attr, node)

    rounds = 0
    fires = 0
    resume_position = 0
    result = ReachResult(
        engine="sat", circuit=circuit.name, order=order_name, completed=False
    )
    snapshot = monitor.restore()
    if snapshot is not None:
        chain = snapshot.meta.get("extra", {}).get("sat", {})
        bdd.decref(reached)
        reached = snapshot.functions["reached"]
        for i, part in enumerate(partitions):
            bdd.decref(part.pending)
            part.pending = snapshot.functions["pend%02d" % i]
            bdd.decref(part.fired)
            part.fired = snapshot.functions["fired%02d" % i]
        rounds = max(0, int(chain.get("round", 1)) - 1)
        resume_position = int(chain.get("position", 0))
        fires = int(chain.get("fires", snapshot.iteration))
        result.extra["resumed_from"] = snapshot.iteration

    def save_position(round_number, position):
        functions = {"reached": reached}
        for i, part in enumerate(partitions):
            functions["pend%02d" % i] = part.pending
            functions["fired%02d" % i] = part.fired
        monitor.save_state(
            fires,
            functions=functions,
            meta=_chain_meta(round_number, position, fires, order),
        )

    try:
        while True:
            rounds += 1
            tracer.begin_iteration(rounds)
            sweep = sweep_order(order, rounds, chain_schedule)
            with tracer.span("saturate"):
                for position in range(resume_position, len(sweep)):
                    part = partitions[sweep[position]]
                    while part.pending != bdd.false:
                        with tracer.span("image"):
                            if selection_heuristic:
                                frontier = part.pending
                                if part.nonsupport:
                                    frontier = bdd.exists(
                                        part.nonsupport, frontier
                                    )
                                frontier = bdd.diff(frontier, part.fired)
                                set_slot(part, "pending", bdd.false)
                                if frontier == bdd.false:
                                    part.skips += 1
                                    break
                                set_slot(
                                    part,
                                    "fired",
                                    bdd.or_(part.fired, frontier),
                                )
                            else:
                                frontier = part.pending
                                set_slot(part, "pending", bdd.false)
                            image = space.t_to_s(
                                part.relation.image(frontier)
                            )
                        part.fires += 1
                        fires += 1
                        with tracer.span("fixpoint_test"):
                            new = bdd.diff(image, reached)
                        if new != bdd.false:
                            with tracer.span("union"):
                                old = reached
                                reached = bdd.incref(bdd.or_(reached, new))
                                bdd.decref(old)
                                for other in partitions:
                                    if other is part:
                                        set_slot(part, "pending", new)
                                    else:
                                        set_slot(
                                            other,
                                            "pending",
                                            bdd.or_(other.pending, new),
                                        )
                        if monitor.want_checkpoint(fires):
                            save_position(rounds, position)
                        monitor.checkpoint((), fires)
            resume_position = 0
            # Budgets are also enforced at round boundaries: a round of
            # pure frontier-avoidance skips performs no fires, and the
            # per-fire checks above would never run.
            monitor.checkpoint((), fires)
            fixed = all(p.pending == bdd.false for p in partitions)
            monitor.audit(
                fires,
                roots=[reached]
                + [p.pending for p in partitions]
                + [p.fired for p in partitions],
            )
            if tracer.enabled:
                with tracer.span("telemetry"):
                    pending_union = bdd.false
                    for part in partitions:
                        pending_union = bdd.or_(pending_union, part.pending)
                    frontier_size = bdd.dag_size(pending_union)
                    reached_size = bdd.dag_size(reached)
                tracer.event(
                    "saturate",
                    iteration=rounds,
                    fires=[p.fires for p in partitions],
                    skips=[p.skips for p in partitions],
                    partitions=len(partitions),
                )
                tracer.end_iteration(
                    rounds,
                    frontier_size=frontier_size,
                    reached_size=reached_size,
                    chi_size=reached_size,
                    fixpoint=fixed,
                )
            if fixed:
                break
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, rounds)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            rounds,
        )
    result.iterations = rounds
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = bdd.dag_size(reached)
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        result.extra["saturation"] = {
            "partitions": len(partitions),
            "split_vars": len(split),
            "schedule": chain_schedule,
            "order": list(order),
            "fires": [p.fires for p in partitions],
            "skips": [p.skips for p in partitions],
            "total_fires": fires,
        }
        if result.completed:
            result.extra["space"] = space
            result.extra["reached_chi"] = reached
            if count_states:
                result.num_states = space.states_of(reached)
    # Captured after the finalize span so the traced phase self-times
    # can never exceed the reported wall clock.
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result


def bfv_sat_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    schedule: str = "support",
    split_inputs: int = DEFAULT_BFV_SPLIT_INPUTS,
    chain_schedule: str = "static",
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """The BFV hybrid: saturation inside the reparameterization loop.

    Same disjunctive chaining as :func:`sat_reachability`, but every
    fire is one Figure-2 step: symbolic simulation with the partition's
    split inputs driven *constant* (so the cube never becomes a
    parameter), re-parameterization over the remaining (choice +
    unsplit-input) parameters, and BFV union into the reached set.
    Pending deltas are BFVs; a partition is clean when its pending
    vector is ``None``.  ``result.extra['reached']`` holds the final
    BFV.  ``selection_heuristic`` picks the smaller of the fire's image
    and its raw pending vector as the partition's next local frontier.
    """
    if chain_schedule not in CHAIN_SCHEDULES:
        raise CircuitError(
            "unknown chain schedule %r (want one of %s)"
            % (chain_schedule, ", ".join(CHAIN_SCHEDULES))
        )
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="bfv-sat", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )

    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        deltas_by_latch = simulator.transition_functions(
            dict(space.input_var), dict(space.state_var)
        )
        by_net = dict(zip(circuit.latches, deltas_by_latch))
        split, unsplit = split_input_vars(
            bdd, by_net, space.state_order, space.x_vars, split_inputs
        )
        var_to_net = {v: net for net, v in space.input_var.items()}
        latch_order = list(circuit.latches)
        rename_map = dict(zip(space.t_vars, space.s_vars))
        params = list(space.s_vars) + unsplit
        input_drivers = {
            net: bdd.incref(bdd.var(v))
            for net, v in space.input_var.items()
            if v in unsplit
        }
        partitions: List[_Partition] = []
        for bits in itertools.product((False, True), repeat=len(split)):
            cube = dict(zip(split, bits))
            constants = {
                var_to_net[v]: (bdd.true if value else bdd.false)
                for v, value in cube.items()
            }
            partitions.append(_Partition(constants, None, None, None))
        order = list(range(len(partitions)))

        init = BFV.from_points(
            bdd, space.s_vars, space.initial_point_set(initial_points)
        )
        reached = init
        for part in partitions:
            part.pending = init

    rounds = 0
    fires = 0
    resume_position = 0
    result = ReachResult(
        engine="bfv-sat",
        circuit=circuit.name,
        order=order_name,
        completed=False,
    )
    empty = BFV.empty(bdd, space.s_vars)
    snapshot = monitor.restore()
    if snapshot is not None:
        chain = snapshot.meta.get("extra", {}).get("sat", {})
        reached = snapshot.vectors["reached"]
        for i, part in enumerate(partitions):
            pending = snapshot.vectors["pend%02d" % i]
            part.pending = None if pending.is_empty else pending
        rounds = max(0, int(chain.get("round", 1)) - 1)
        resume_position = int(chain.get("position", 0))
        fires = int(chain.get("fires", snapshot.iteration))
        result.extra["resumed_from"] = snapshot.iteration

    def save_position(round_number, position):
        vectors = {"reached": reached}
        for i, part in enumerate(partitions):
            vectors["pend%02d" % i] = (
                empty if part.pending is None else part.pending
            )
        monitor.save_state(
            fires,
            vectors=vectors,
            meta=_chain_meta(round_number, position, fires, order),
        )

    def fire(part, from_vec):
        """One Figure-2 step for one partition: sim, reparam, union."""
        with tracer.span("image"):
            drivers = dict(input_drivers)
            drivers.update(part.cube)
            for net, comp in zip(space.state_order, from_vec.components):
                drivers[net] = comp
            raw_by_latch = simulator.next_state(drivers)
            raw_by_net = dict(zip(latch_order, raw_by_latch))
            raw = [raw_by_net[n] for n in space.state_order]
        with tracer.span("reparam"):
            image_t = eliminate_params(
                bdd, space.t_vars, raw, params, schedule
            )
            comps = [bdd.rename(f, rename_map) for f in image_t]
            return BFV(bdd, space.s_vars, comps, validate=False)

    try:
        while True:
            rounds += 1
            tracer.begin_iteration(rounds)
            sweep = sweep_order(order, rounds, chain_schedule)
            with tracer.span("saturate"):
                for position in range(resume_position, len(sweep)):
                    part = partitions[sweep[position]]
                    while part.pending is not None:
                        from_vec = part.pending
                        part.pending = None
                        image = fire(part, from_vec)
                        part.fires += 1
                        fires += 1
                        with tracer.span("union"):
                            new_reached = image.union(reached)
                        with tracer.span("fixpoint_test"):
                            grew = new_reached != reached
                        if grew:
                            reached = new_reached
                            for other in partitions:
                                if other is part:
                                    if (
                                        selection_heuristic
                                        and reached.shared_size()
                                        < image.shared_size()
                                    ):
                                        part.pending = reached
                                    else:
                                        part.pending = image
                                elif other.pending is None:
                                    other.pending = image
                                else:
                                    other.pending = other.pending.union(
                                        image
                                    )
                        if monitor.want_checkpoint(fires):
                            save_position(rounds, position)
                        monitor.checkpoint((), fires)
            resume_position = 0
            monitor.checkpoint((), fires)
            fixed = all(p.pending is None for p in partitions)
            monitor.audit(
                fires,
                vectors=[reached]
                + [p.pending for p in partitions if p.pending is not None],
            )
            if tracer.enabled:
                with tracer.span("telemetry"):
                    frontier_size = sum(
                        p.pending.shared_size()
                        for p in partitions
                        if p.pending is not None
                    )
                    reached_size = reached.shared_size()
                tracer.event(
                    "saturate",
                    iteration=rounds,
                    fires=[p.fires for p in partitions],
                    skips=[p.skips for p in partitions],
                    partitions=len(partitions),
                )
                tracer.end_iteration(
                    rounds,
                    frontier_size=max(1, frontier_size),
                    reached_size=reached_size,
                    fixpoint=fixed,
                )
            if fixed:
                break
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, rounds)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            rounds,
        )
    result.iterations = rounds
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = reached.shared_size()
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        result.extra["saturation"] = {
            "partitions": len(partitions),
            "split_vars": len(split),
            "schedule": chain_schedule,
            "order": list(order),
            "fires": [p.fires for p in partitions],
            "skips": [p.skips for p in partitions],
            "total_fires": fires,
        }
        if result.completed:
            result.extra["space"] = space
            result.extra["reached"] = reached
            if count_states:
                result.num_states = reached.count()
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result

"""Characteristic-function reachability (the paper's VIS/IWLS95 baseline).

Classic breadth-first symbolic traversal: the reached set is one BDD
over the current-state variables; images are computed through an
IWLS95-style partitioned transition relation with early quantification
(:mod:`repro.reach.iwls95`); the frontier (newly reached states) —
or the reached set, when smaller — feeds the next iteration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ResourceLimitError
from ..obs import ensure_tracer
from ..sim.symbolic import SymbolicSimulator
from .common import ReachLimits, ReachResult, ReachSpace, RunMonitor
from .iwls95 import PartitionedRelation


def tr_reachability(
    circuit,
    slots: Optional[Sequence[str]] = None,
    limits: Optional[ReachLimits] = None,
    cluster_threshold: int = 800,
    selection_heuristic: bool = True,
    count_states: bool = True,
    order_name: str = "?",
    space: Optional[ReachSpace] = None,
    initial_points=None,
    checkpointer=None,
    tracer=None,
    sanitize=None,
) -> ReachResult:
    """Run IWLS95-style reachability; returns a :class:`ReachResult`.

    ``result.extra['space']`` / ``['reached_chi']`` hold the layout and
    the reached characteristic function for cross-validation.  With a
    ``checkpointer`` the reached/frontier characteristic functions are
    snapshotted every iteration and the run resumes from the latest
    valid snapshot.  With a ``sanitize`` rate sampled iterations audit
    manager invariants (no vectors exist in this flow);
    ``result.extra['sanitizer']`` carries the audit counts.
    """
    if space is None:
        space = ReachSpace(circuit, slots)
    bdd = space.bdd
    tracer = ensure_tracer(tracer)
    tracer.attach(bdd)
    tracer.bind(engine="tr", circuit=circuit.name, order=order_name)
    monitor = RunMonitor(
        bdd, limits, checkpointer, tracer=tracer, sanitize=sanitize
    )

    with tracer.span("setup"):
        simulator = SymbolicSimulator(bdd, circuit)
        net_input_vars = {net: v for net, v in space.input_var.items()}
        net_state_vars = {net: v for net, v in space.state_var.items()}
        deltas_by_latch = simulator.transition_functions(
            net_input_vars, net_state_vars
        )
        by_net = dict(zip(circuit.latches, deltas_by_latch))
        parts = [
            bdd.equiv(bdd.var(space.next_var[net]), by_net[net])
            for net in space.state_order
        ]
        quantify = list(space.s_vars) + list(space.x_vars)
        relation = PartitionedRelation(
            bdd, parts, quantify, cluster_threshold=cluster_threshold
        )

        init = bdd.incref(space.initial_chi(initial_points))
    reached = init
    frontier = init
    iterations = 0
    result = ReachResult(
        engine="tr", circuit=circuit.name, order=order_name, completed=False
    )
    snapshot = monitor.restore()
    if snapshot is not None:
        # `reached` and `frontier` both alias `init`, whose single pin
        # is dropped here; the restored handles arrive with their own.
        bdd.decref(reached)
        reached = snapshot.functions["reached"]
        frontier = snapshot.functions["frontier"]
        iterations = snapshot.iteration
        result.extra["resumed_from"] = snapshot.iteration
    try:
        while True:
            iterations += 1
            tracer.begin_iteration(iterations)
            with tracer.span("image"):
                image_t = relation.image(frontier)
                image = space.t_to_s(image_t)
            with tracer.span("fixpoint_test"):
                new = bdd.diff(image, reached)
                fixed = new == bdd.false
            if fixed:
                if tracer.enabled:
                    with tracer.span("telemetry"):
                        frontier_size = bdd.dag_size(frontier)
                        reached_size = bdd.dag_size(reached)
                    tracer.end_iteration(
                        iterations,
                        frontier_size=frontier_size,
                        reached_size=reached_size,
                        chi_size=reached_size,
                        fixpoint=True,
                    )
                break
            previous = reached
            with tracer.span("union"):
                reached = bdd.incref(bdd.or_(reached, image))
                bdd.decref(previous)
                bdd.decref(frontier)
                if selection_heuristic and bdd.dag_size(new) > bdd.dag_size(
                    reached
                ):
                    frontier = bdd.incref(reached)
                else:
                    frontier = bdd.incref(new)
            if monitor.want_checkpoint(iterations):
                monitor.save_state(
                    iterations,
                    functions={"reached": reached, "frontier": frontier},
                )
            monitor.checkpoint((), iterations)
            monitor.audit(iterations, roots=(reached, frontier))
            if tracer.enabled:
                with tracer.span("telemetry"):
                    frontier_size = bdd.dag_size(frontier)
                    reached_size = bdd.dag_size(reached)
                tracer.end_iteration(
                    iterations,
                    frontier_size=frontier_size,
                    reached_size=reached_size,
                    chi_size=reached_size,
                )
        result.completed = True
    except ResourceLimitError as error:
        monitor.annotate(result, error, iterations)
    except RecursionError:
        monitor.annotate(
            result,
            ResourceLimitError("depth", "recursion limit exceeded"),
            iterations,
        )
    result.iterations = iterations
    with tracer.span("finalize"):
        bdd.collect_garbage()
        result.peak_live_nodes = max(monitor.peak_live, bdd.count_live())
        result.extra["cache"] = bdd.cache_stats()
        result.reached_size = bdd.dag_size(reached)
        if monitor.sanitizer is not None:
            result.extra["sanitizer"] = monitor.sanitizer.snapshot()
        if result.completed:
            result.extra["space"] = space
            result.extra["reached_chi"] = reached
            if count_states:
                result.num_states = space.states_of(reached)
    # Captured after the finalize span: every engine reports the same
    # window, and traced phase self-times can never exceed it.
    result.seconds = monitor.elapsed
    if tracer.enabled:
        result.extra["obs"] = tracer.summary()
        tracer.finish(result)
    return result

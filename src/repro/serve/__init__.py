"""Reachability-as-a-service: the ``python -m repro serve`` subsystem.

Turns the fault-tolerant harness into a long-running service: an
asyncio NDJSON front-end (:mod:`~repro.serve.server`) over a long-lived
supervised worker pool, with a persistent content-addressed result +
checkpoint cache (:mod:`~repro.serve.cache`) that lets timed-out or
killed requests *resume* instead of restart, in-flight deduplication
and cooperative abandonment (:mod:`~repro.serve.session`), and bounded
admission with load shedding (:mod:`~repro.serve.admission`).  The wire
protocol lives in :mod:`~repro.serve.protocol`; a small blocking client
in :mod:`~repro.serve.client`.  See ``docs/serving.md``.
"""

from .admission import AdmissionController, AdmissionPolicy, Ticket
from .cache import COMPLETE, RESUMABLE, CacheEntry, ResultCache
from .client import ServeClient
from .protocol import (
    PROTOCOL,
    ReachRequest,
    Request,
    encode,
    parse_request,
    response,
)
from .server import ReachServer
from .session import SessionManager

__all__ = [
    "COMPLETE",
    "PROTOCOL",
    "RESUMABLE",
    "AdmissionController",
    "AdmissionPolicy",
    "CacheEntry",
    "ReachRequest",
    "ReachServer",
    "Request",
    "ResultCache",
    "ServeClient",
    "SessionManager",
    "Ticket",
    "encode",
    "parse_request",
    "response",
]

"""Admission control: bounded queueing, budget clamps, load shedding.

The service degrades gracefully instead of falling over: every request
passes the :class:`AdmissionController` before any work starts.  It
enforces a bounded queue on top of the worker pool (beyond it, requests
are *shed* with a ``retry_after`` hint rather than queued without
bound), clamps per-request budgets to server-wide ceilings, and tracks
the shed/admit counters the telemetry layer reports.

Shedding is deliberately cheap and stateless — a shed request costs one
dictionary and one write, so an overloaded server stays responsive
enough to keep saying "not now".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional


@dataclass
class AdmissionPolicy:
    """Server-wide limits applied to every request."""

    #: Requests allowed to wait for a pool slot beyond those running.
    max_queue: int = 16
    #: Engine time budget used when the request names none.
    default_budget_seconds: float = 60.0
    #: Hard ceiling on any request's engine time budget.
    max_budget_seconds: float = 600.0
    #: Watchdog grace multiplier/offset over the engine budget: the
    #: supervisor kills the child at ``budget * factor + grace``.
    watchdog_factor: float = 1.5
    watchdog_grace_seconds: float = 5.0
    #: Per-child RSS ceiling (None disables the RSS watchdog).
    max_rss_mb: Optional[float] = None
    #: Floor for the Retry-After hint handed to shed clients.
    min_retry_after_seconds: float = 1.0


@dataclass
class Ticket:
    """An admitted request's resolved budgets."""

    max_seconds: float
    budget_seconds: float
    max_rss_bytes: Optional[int]


class AdmissionController:
    """Gatekeeper in front of the worker pool."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._inflight = 0
        self.admitted = 0
        self.shed = 0
        self.peak_inflight = 0

    # ------------------------------------------------------------------

    def try_admit(
        self, pool_size: int, requested_seconds: Optional[float] = None
    ) -> Optional[Ticket]:
        """Admit one request, or return None (shed) when the queue is full.

        ``pool_size`` is the number of concurrently *running* attempts
        the pool allows; admission allows ``pool_size + max_queue``
        in-flight requests total.  Deduplicated waiters do not pass
        through here — attaching to an in-flight attempt costs nothing,
        so it is never shed.
        """
        policy = self.policy
        with self._lock:
            if self._inflight >= pool_size + policy.max_queue:
                self.shed += 1
                return None
            self._inflight += 1
            self.admitted += 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
        max_seconds = min(
            requested_seconds or policy.default_budget_seconds,
            policy.max_budget_seconds,
        )
        budget = (
            max_seconds * policy.watchdog_factor
            + policy.watchdog_grace_seconds
        )
        max_rss = (
            int(policy.max_rss_mb * 1024 * 1024)
            if policy.max_rss_mb is not None
            else None
        )
        return Ticket(
            max_seconds=max_seconds,
            budget_seconds=budget,
            max_rss_bytes=max_rss,
        )

    def release(self) -> None:
        """Return an admitted request's slot (call exactly once)."""
        with self._lock:
            self._inflight -= 1

    def retry_after(self, pool_stats: dict, typical_seconds: float) -> float:
        """Retry-After hint for a shed client, from current occupancy.

        A straight queue-drain estimate: how long until today's backlog
        clears if every queued attempt takes ``typical_seconds``.
        """
        queued = max(0, int(pool_stats.get("queued", 0)))
        size = max(1, int(pool_stats.get("size", 1)))
        estimate = (queued + 1) * typical_seconds / size
        return max(self.policy.min_retry_after_seconds, round(estimate, 1))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "admitted": self.admitted,
                "shed": self.shed,
                "peak_inflight": self.peak_inflight,
            }

"""Persistent, content-addressed result + checkpoint cache.

Layout under the cache root (``key`` is the request fingerprint from
:meth:`repro.serve.protocol.ReachRequest.fingerprint`)::

    <root>/<key[:2]>/<key>/entry.json   checksummed result record
    <root>/<key[:2]>/<key>/ckpt/        the attempt's checkpoint dir
    <root>/<key[:2]>/<key>/trace/       the attempt's telemetry JSONL

``entry.json`` is written atomically (tmp + rename + directory fsync)
and carries a sha256 checksum over its own payload; a load that fails
the checksum or schema is quarantined (``entry.json.corrupt``) and
treated as a miss — a corrupt cache degrades to recomputation, never to
a crash or a wrong answer.  The ``ckpt/`` directory is a plain
:class:`repro.harness.checkpoint.Checkpointer` target, so resuming a
timed-out request is exactly the harness's resume path: the server
points the next attempt at the same directory with ``resume=True`` and
the engine continues from the last intact snapshot (corrupt snapshots
are themselves quarantined by the checkpointer).

Entry statuses:

* ``complete`` — a finished result; served without running anything.
* ``resumable`` — a partial result from a budget-exhausted or killed
  attempt whose checkpoint survived; served as a progress report, and
  the next ``run``-mode request resumes from the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..persist import fsync_dir
from ..reach import ReachResult

#: Schema tag of ``entry.json``; bump on incompatible layout changes.
ENTRY_SCHEMA = "repro-serve-cache 1"

COMPLETE = "complete"
RESUMABLE = "resumable"


@dataclass
class CacheEntry:
    """One decoded cache record."""

    key: str
    status: str  # COMPLETE | RESUMABLE
    result: ReachResult
    path: str


def _checksum(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


class ResultCache:
    """Content-addressed cache of reachability results and checkpoints."""

    def __init__(self, root: str, registry: Optional[object] = None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: Paths quarantined by this process (for tests/telemetry).
        self.quarantined: List[str] = []
        #: Optional :class:`repro.obs.MetricsRegistry` counting stores,
        #: hits, and quarantines live.
        self.registry = registry

    def _count(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        if self.registry is not None:
            self.registry.counter(name, labels).inc()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.entry_dir(key), "entry.json")

    def checkpoint_dir(self, key: str) -> str:
        """The key's checkpoint directory (created on demand)."""
        path = os.path.join(self.entry_dir(key), "ckpt")
        os.makedirs(path, exist_ok=True)
        return path

    def trace_dir(self, key: str) -> str:
        """The key's telemetry directory (created on demand).

        Attempt trace JSONL lives *inside* the cache entry, next to the
        checkpoints: the ``subscribe`` op tails it while the attempt is
        in flight, and the ``trace`` op answers from it long after —
        content-addressed like everything else under the key.
        """
        path = os.path.join(self.entry_dir(key), "trace")
        os.makedirs(path, exist_ok=True)
        return path

    def has_trace(self, key: str) -> bool:
        """True when the key has at least one stored trace file."""
        path = os.path.join(self.entry_dir(key), "trace")
        try:
            names = sorted(os.listdir(path))
        except OSError:
            return False
        return any(name.endswith(".jsonl") for name in names)

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """The key's entry, or None on miss/corruption (quarantined)."""
        path = self.entry_path(key)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path, "entry is not valid JSON")
            return None
        problem = self._validate(data, key)
        if problem is not None:
            self._quarantine(path, problem)
            return None
        self._count("cache_lookup_hits")
        return CacheEntry(
            key=key,
            status=str(data["status"]),
            result=ReachResult.from_dict(data["result"]),
            path=path,
        )

    def _validate(self, data: object, key: str) -> Optional[str]:
        if not isinstance(data, dict):
            return "entry is not a JSON object"
        if data.get("schema") != ENTRY_SCHEMA:
            return "entry schema is %r, want %r" % (
                data.get("schema"),
                ENTRY_SCHEMA,
            )
        if data.get("key") != key:
            return "entry is for key %r" % data.get("key")
        if data.get("status") not in (COMPLETE, RESUMABLE):
            return "entry status is %r" % data.get("status")
        if not isinstance(data.get("result"), dict):
            return "entry result is not an object"
        recorded = data.get("checksum")
        payload = {k: v for k, v in data.items() if k != "checksum"}
        if recorded != _checksum(payload):
            return "entry checksum mismatch"
        try:
            ReachResult.from_dict(data["result"])
        except TypeError as error:
            return "entry result does not decode: %s" % error
        return None

    def _quarantine(self, path: str, reason: str) -> None:
        corrupt = path + ".corrupt"
        try:
            os.replace(path, corrupt)
            fsync_dir(path)
        except OSError:  # pragma: no cover - racing cleanup
            return
        self.quarantined.append(corrupt)
        self._count("cache_quarantined")
        warnings.warn(
            "quarantined corrupt cache entry %s -> %s (%s)"
            % (path, corrupt, reason),
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def store(self, key: str, result: ReachResult, status: str) -> str:
        """Atomically persist ``result`` under ``key``; returns the path."""
        if status not in (COMPLETE, RESUMABLE):
            raise ValueError("bad cache entry status %r" % status)
        payload: Dict[str, object] = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "status": status,
            "result": result.to_dict(),
        }
        payload["checksum"] = _checksum(
            {k: v for k, v in payload.items() if k != "checksum"}
        )
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True, default=str)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(path)
        self._count("cache_stores", {"status": status})
        return path

    def has_checkpoints(self, key: str) -> bool:
        """True when the key's checkpoint dir holds at least one snapshot."""
        path = os.path.join(self.entry_dir(key), "ckpt")
        try:
            names = sorted(os.listdir(path))
        except OSError:
            return False
        return any(name.endswith(".rbdd") for name in names)

    def stats(self) -> Dict[str, int]:
        """Counts of complete/resumable entries on disk (walks the root)."""
        complete = resumable = corrupt = 0
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for key in sorted(os.listdir(shard_dir)):
                entry = os.path.join(shard_dir, key, "entry.json")
                if os.path.exists(entry + ".corrupt"):
                    corrupt += 1
                if not os.path.exists(entry):
                    continue
                try:
                    with open(entry) as handle:
                        data = json.load(handle)
                    status = data.get("status")
                except (OSError, ValueError, AttributeError):
                    corrupt += 1
                    continue
                if status == COMPLETE:
                    complete += 1
                elif status == RESUMABLE:
                    resumable += 1
        return {
            "complete": complete,
            "resumable": resumable,
            "corrupt": corrupt,
        }

"""Minimal synchronous client for the reachability service.

A thin blocking socket wrapper over the NDJSON protocol, used by the
test suite, the CI smoke script, and anyone scripting against
``python -m repro serve`` without an asyncio stack.  One client holds
one connection; requests can be pipelined (``send`` then match ids via
``recv``) or issued call-and-wait (``reach`` / ``status`` / ...).
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional

from ..errors import ServeError
from .protocol import PROTOCOL


class ServeClient:
    """Blocking NDJSON client; usable as a context manager."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        # Requests are tiny; Nagle would batch pipelined lines behind
        # the previous ACK and serialize what should run concurrently.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self.sock.makefile("rwb")
        self.greeting = self._read()
        if self.greeting.get("server") != PROTOCOL:
            raise ServeError(
                "unexpected server greeting: %r" % (self.greeting,)
            )
        #: Server pid from the greeting (the smoke test's crash target).
        self.server_pid = self.greeting.get("pid")
        self._next_id = 0
        self._pending: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------

    def _read(self) -> Dict[str, object]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            message = json.loads(line.decode())
        except ValueError as error:
            raise ServeError("unparsable server line: %s" % error)
        if not isinstance(message, dict):
            raise ServeError("server sent a non-object line")
        return message

    def send(self, request: Dict[str, object]) -> str:
        """Send one raw request (an ``id`` is added if absent)."""
        request = dict(request)
        if "id" not in request:
            self._next_id += 1
            request["id"] = "c%d" % self._next_id
        self._file.write(
            (json.dumps(request, sort_keys=True) + "\n").encode()
        )
        self._file.flush()
        return str(request["id"])

    def recv(self) -> Dict[str, object]:
        """Next response from the socket, in arrival order."""
        return self._read()

    def wait(self, request_id: str) -> Dict[str, object]:
        """Block until the response for ``request_id`` arrives.

        Out-of-order responses for other pipelined requests are parked
        and returned by their own :meth:`wait` calls later.
        """
        parked = self._pending.pop(request_id, None)
        if parked is not None:
            return parked
        while True:
            message = self._read()
            if message.get("id") == request_id:
                return message
            self._pending[str(message.get("id"))] = message

    def call(self, request: Dict[str, object]) -> Dict[str, object]:
        return self.wait(self.send(request))

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def reach(self, circuit: str, **options: object) -> Dict[str, object]:
        request: Dict[str, object] = {"op": "reach", "circuit": circuit}
        request.update(options)
        return self.call(request)

    def batch(self, requests: List[Dict[str, object]]) -> Dict[str, object]:
        return self.call({"op": "batch", "requests": requests})

    def status(self) -> Dict[str, object]:
        return self.call({"op": "status"})

    def cancel(self, target: str) -> Dict[str, object]:
        return self.call({"op": "cancel", "target": target})

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

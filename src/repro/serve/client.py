"""Minimal synchronous client for the reachability service.

A thin blocking socket wrapper over the NDJSON protocol, used by the
test suite, the CI smoke script, and anyone scripting against
``python -m repro serve`` without an asyncio stack.  One client holds
one connection; requests can be pipelined (``send`` then match ids via
``recv``) or issued call-and-wait (``reach`` / ``status`` / ...).
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, List, Optional

from ..errors import ServeError
from .protocol import PROTOCOL

#: Stream statuses that end a ``subscribe`` exchange.
STREAM_END = ("complete", "miss", "error")


class ServeClient:
    """Blocking NDJSON client; usable as a context manager."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        # Requests are tiny; Nagle would batch pipelined lines behind
        # the previous ACK and serialize what should run concurrently.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self.sock.makefile("rwb")
        self.greeting = self._read()
        if self.greeting.get("server") != PROTOCOL:
            raise ServeError(
                "unexpected server greeting: %r" % (self.greeting,)
            )
        #: Server pid from the greeting (the smoke test's crash target).
        self.server_pid = self.greeting.get("pid")
        self._next_id = 0
        # id -> parked messages, *in arrival order*: streaming ops
        # (subscribe) answer one id with many lines, so parking keeps a
        # list per id rather than a single slot.
        self._pending: Dict[str, List[Dict[str, object]]] = {}

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------

    def _read(self) -> Dict[str, object]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            message = json.loads(line.decode())
        except ValueError as error:
            raise ServeError("unparsable server line: %s" % error)
        if not isinstance(message, dict):
            raise ServeError("server sent a non-object line")
        return message

    def send(self, request: Dict[str, object]) -> str:
        """Send one raw request (an ``id`` is added if absent)."""
        request = dict(request)
        if "id" not in request:
            self._next_id += 1
            request["id"] = "c%d" % self._next_id
        self._file.write(
            (json.dumps(request, sort_keys=True) + "\n").encode()
        )
        self._file.flush()
        return str(request["id"])

    def recv(self) -> Dict[str, object]:
        """Next response from the socket, in arrival order."""
        return self._read()

    def wait(self, request_id: str) -> Dict[str, object]:
        """Block until the next response for ``request_id`` arrives.

        Out-of-order responses for other pipelined requests are parked
        and returned by their own :meth:`wait` calls later.  For
        streaming ops each call returns the *next* line of the stream.
        """
        parked = self._pending.get(request_id)
        if parked:
            message = parked.pop(0)
            if not parked:
                del self._pending[request_id]
            return message
        while True:
            message = self._read()
            if message.get("id") == request_id:
                return message
            self._pending.setdefault(
                str(message.get("id")), []
            ).append(message)

    def call(self, request: Dict[str, object]) -> Dict[str, object]:
        return self.wait(self.send(request))

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def reach(self, circuit: str, **options: object) -> Dict[str, object]:
        request: Dict[str, object] = {"op": "reach", "circuit": circuit}
        request.update(options)
        return self.call(request)

    def batch(self, requests: List[Dict[str, object]]) -> Dict[str, object]:
        return self.call({"op": "batch", "requests": requests})

    def status(self) -> Dict[str, object]:
        return self.call({"op": "status"})

    def cancel(self, target: str) -> Dict[str, object]:
        return self.call({"op": "cancel", "target": target})

    def metrics(self) -> Dict[str, object]:
        """Registry snapshot + serve counters (the ``metrics`` op)."""
        return self.call({"op": "metrics"})

    def trace(
        self,
        circuit: Optional[str] = None,
        key: Optional[str] = None,
        **options: object,
    ) -> Dict[str, object]:
        """Stored telemetry summary of a fingerprint (``trace`` op)."""
        request: Dict[str, object] = {"op": "trace"}
        if key is not None:
            request["key"] = key
        if circuit is not None:
            request["circuit"] = circuit
        request.update(options)
        return self.call(request)

    def subscribe(
        self,
        circuit: Optional[str] = None,
        key: Optional[str] = None,
        **options: object,
    ) -> Iterator[Dict[str, object]]:
        """Stream a run's telemetry; yields every line including the last.

        Yields the ``streaming`` ack (or ``miss``/``error``), then each
        ``event`` line, and finally the closing ``complete`` line, after
        which the iterator ends.  Other pipelined requests on the same
        client keep working — their responses are parked as usual.
        """
        request: Dict[str, object] = {"op": "subscribe"}
        if key is not None:
            request["key"] = key
        if circuit is not None:
            request["circuit"] = circuit
        request.update(options)
        request_id = self.send(request)
        while True:
            message = self.wait(request_id)
            yield message
            if message.get("status") in STREAM_END:
                return

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

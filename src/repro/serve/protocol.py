"""Wire protocol of the reachability service: NDJSON requests/responses.

One request is one JSON object on one line; the server answers each with
one JSON response line carrying the same client-chosen ``id``.  The
protocol is deliberately transport-trivial (``nc`` works) so the serve
layer's value is entirely in the semantics behind it: content-addressed
caching, checkpoint resume, dedup, and admission control.

Request shapes (``op`` selects the verb)::

    {"op": "reach",  "id": "r1", "circuit": "traffic", "engine": "bfv",
     "order": "S1", "max_seconds": 60, "mode": "run"}
    {"op": "batch",  "id": "b1", "requests": [{...reach fields...}, ...]}
    {"op": "status", "id": "s1"}
    {"op": "cancel", "id": "c1", "target": "r1"}
    {"op": "subscribe", "id": "t1", "circuit": "traffic", "engine": "bfv"}
    {"op": "subscribe", "id": "t2", "key": "<fingerprint>"}
    {"op": "trace",  "id": "q1", "key": "<fingerprint>"}
    {"op": "metrics", "id": "m1"}

``subscribe`` and ``trace`` address a run either by the same fields a
``reach`` request carries (the fingerprint is recomputed) or directly
by a ``key`` a previous response returned.  A ``subscribe`` answer is a
*stream*: one ``streaming`` ack, any number of ``event`` lines carrying
per-iteration telemetry records, and a closing ``complete`` line — all
with the subscriber's ``id``, interleaved freely with other responses
on the connection.

Responses carry ``status``: ``ok`` (result attached), ``resumable``
(budget ran out but a checkpoint survived — the partial result is
attached and re-asking resumes instead of restarting), ``failed``
(attempt failed with no checkpoint to resume), ``shed`` (admission
control refused; ``retry_after`` seconds hints when to come back),
``cancelled``, ``miss`` (a ``mode=peek`` probe found nothing), or
``error`` (malformed request — the connection stays up).

Malformed input raises :class:`repro.errors.ServeError`, which the
server converts to an ``error`` response; nothing a client sends can
take the server down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuits import bench
from ..circuits.catalog import resolve
from ..errors import ServeError
from ..order import FAMILIES
from ..reach import ENGINES

#: Protocol identifier sent in the greeting line of every connection.
PROTOCOL = "repro-serve 1"

#: Verbs a request may carry.
OPS = ("reach", "batch", "status", "cancel", "subscribe", "trace", "metrics")

#: ``reach`` execution modes: ``run`` executes (or resumes) the
#: analysis; ``peek`` only probes the cache and never starts work.
MODES = ("run", "peek")


@dataclass
class ReachRequest:
    """One validated ``reach`` request (also the unit inside ``batch``)."""

    id: str
    circuit: str
    engine: str = "bfv"
    order: str = "S1"
    max_seconds: Optional[float] = None
    max_nodes: Optional[int] = None
    max_iterations: Optional[int] = None
    count_states: bool = True
    mode: str = "run"
    #: Deterministic fault plan for the attempt (tests only); rides the
    #: spec into the supervised child like ``--faults`` does elsewhere.
    faults: Optional[List[Dict[str, object]]] = None

    def fingerprint(self) -> str:
        """Content-addressed cache key of this request.

        The key hashes the *semantics* of the answer: the circuit's
        serialized netlist (so renamed or edited ``.bench`` files get
        distinct entries while identical content shares one), the
        engine, the order family, and the options that change the
        result (``count_states``, ``max_iterations``, ``faults``).
        Budgets (``max_seconds`` / ``max_nodes``) are deliberately
        excluded: a request retried with a bigger budget must hit the
        resumable entry its timed-out predecessor left behind.
        """
        circuit = resolve(self.circuit)
        # Drop the leading "# <name>" header: the name comes from the
        # file basename, and a renamed copy of the same netlist must
        # share the cache entry.
        netlist = bench.dumps(circuit).split("\n", 1)[1]
        circuit_sha = hashlib.sha256(netlist.encode()).hexdigest()
        payload = json.dumps(
            {
                "circuit_sha": circuit_sha,
                "engine": self.engine,
                "order": self.order,
                "count_states": self.count_states,
                "max_iterations": self.max_iterations,
                "faults": self.faults,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class Request:
    """A parsed request envelope."""

    op: str
    id: str
    reach: Optional[ReachRequest] = None
    requests: List[ReachRequest] = field(default_factory=list)
    target: Optional[str] = None
    #: Explicit fingerprint for ``subscribe`` / ``trace`` (instead of
    #: reach-shaped fields).
    key: Optional[str] = None


def _require_str(data: Dict[str, object], key: str) -> str:
    value = data.get(key)
    if not isinstance(value, str) or not value:
        raise ServeError("request field %r must be a non-empty string" % key)
    return value


def _optional_number(data: Dict[str, object], key: str):
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError("request field %r must be a number" % key)
    if value <= 0:
        raise ServeError("request field %r must be positive" % key)
    return value


def _parse_reach(data: Dict[str, object], request_id: str) -> ReachRequest:
    engine = data.get("engine", "bfv")
    if engine not in ENGINES:
        raise ServeError(
            "unknown engine %r (want one of %s)"
            % (engine, "/".join(ENGINES))
        )
    order = data.get("order", "S1")
    if order not in FAMILIES:
        raise ServeError(
            "unknown order family %r (want one of %s)"
            % (order, "/".join(FAMILIES))
        )
    mode = data.get("mode", "run")
    if mode not in MODES:
        raise ServeError("unknown mode %r (want run or peek)" % mode)
    faults = data.get("faults")
    if faults is not None:
        if not isinstance(faults, list) or not all(
            isinstance(fault, dict) for fault in faults
        ):
            raise ServeError("request field 'faults' must be a list of objects")
    max_iterations = data.get("max_iterations")
    if max_iterations is not None and (
        isinstance(max_iterations, bool) or not isinstance(max_iterations, int)
    ):
        raise ServeError("request field 'max_iterations' must be an integer")
    count_states = data.get("count_states", True)
    if not isinstance(count_states, bool):
        raise ServeError("request field 'count_states' must be a boolean")
    max_nodes = _optional_number(data, "max_nodes")
    return ReachRequest(
        id=request_id,
        circuit=_require_str(data, "circuit"),
        engine=str(engine),
        order=str(order),
        max_seconds=_optional_number(data, "max_seconds"),
        max_nodes=int(max_nodes) if max_nodes is not None else None,
        max_iterations=max_iterations,
        count_states=count_states,
        mode=str(mode),
        faults=faults,
    )


def parse_request(raw: object) -> Request:
    """Validate one request line (bytes/str/dict) into a :class:`Request`.

    Raises :class:`ServeError` for anything malformed; the error message
    is safe to echo back to the client.
    """
    if isinstance(raw, (bytes, bytearray)):
        raw = raw.decode("utf-8", errors="replace")
    if isinstance(raw, str):
        try:
            raw = json.loads(raw)
        except ValueError as error:
            raise ServeError("request is not valid JSON: %s" % error)
    if not isinstance(raw, dict):
        raise ServeError("request must be a JSON object")
    op = raw.get("op")
    if op not in OPS:
        raise ServeError(
            "unknown op %r (want one of %s)" % (op, "/".join(OPS))
        )
    request_id = _require_str(raw, "id")
    if op == "reach":
        return Request(op=op, id=request_id, reach=_parse_reach(raw, request_id))
    if op == "batch":
        items = raw.get("requests")
        if not isinstance(items, list) or not items:
            raise ServeError(
                "batch request needs a non-empty 'requests' list"
            )
        parsed = []
        seen = set()
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                raise ServeError("batch item %d must be a JSON object" % index)
            item_id = item.get("id", "%s.%d" % (request_id, index))
            if not isinstance(item_id, str) or not item_id:
                raise ServeError("batch item %d has a bad 'id'" % index)
            if item_id in seen:
                raise ServeError(
                    "batch item id %r repeats within the batch" % item_id
                )
            seen.add(item_id)
            parsed.append(_parse_reach(item, item_id))
        return Request(op=op, id=request_id, requests=parsed)
    if op == "cancel":
        return Request(op=op, id=request_id, target=_require_str(raw, "target"))
    if op in ("subscribe", "trace"):
        key = raw.get("key")
        if key is not None:
            if not isinstance(key, str) or not key:
                raise ServeError(
                    "request field 'key' must be a non-empty string"
                )
            return Request(op=op, id=request_id, key=key)
        # No key: address the run by the same fields a reach request
        # carries; the fingerprint is recomputed server-side.
        return Request(op=op, id=request_id, reach=_parse_reach(raw, request_id))
    return Request(op=op, id=request_id)  # status / metrics


def response(
    request_id: str, status: str, **fields: object
) -> Dict[str, object]:
    """Build a response object (serialize with :func:`encode`)."""
    data: Dict[str, object] = {"id": request_id, "status": status}
    for key, value in fields.items():
        if value is not None:
            data[key] = value
    return data


def error_response(request_id: Optional[str], message: str) -> Dict[str, object]:
    return response(request_id or "?", "error", error=message)


def encode(message: Dict[str, object]) -> bytes:
    """One NDJSON line, ready for the socket."""
    return (json.dumps(message, sort_keys=True, default=str) + "\n").encode()

"""Reachability-as-a-service: the asyncio front-end.

``python -m repro serve`` binds :class:`ReachServer` to a TCP port and
speaks the NDJSON protocol of :mod:`repro.serve.protocol`.  The server
is a thin, failure-isolated shell over the existing harness stack:

* every attempt runs in a supervised child via the long-lived
  :class:`~repro.harness.pool.WorkerPool` (crash isolation, watchdogs,
  spawn/crash retry with backoff) — a dying engine never takes the
  service down;
* results and checkpoints live in a content-addressed
  :class:`~repro.serve.cache.ResultCache`, so identical requests are
  answered from disk and a timed-out request *resumes* from its
  checkpoint instead of restarting;
* identical in-flight requests share one attempt
  (:class:`~repro.serve.session.SessionManager`); cancelled or
  disconnected clients detach, and an attempt nobody is waiting for is
  cooperatively killed (its checkpoint stays resumable);
* load beyond the bounded queue is shed with a ``retry_after`` hint
  (:class:`~repro.serve.admission.AdmissionController`) — the degraded
  mode is "try again later", never an unbounded pile-up.

Telemetry is JSONL in the run-trace format: one ``serve_request`` event
per request and ``serve_counters`` snapshots, rendered by
``python -m repro trace``.

Live observability (the metrics layer):

* every attempt writes its per-iteration trace JSONL *into the cache
  entry* (``<key>/trace/``), so telemetry is content-addressed like the
  result and checkpoints it belongs to;
* ``subscribe`` streams those records to a client while the attempt is
  in flight — the server tails the trace files
  (:class:`repro.obs.tail.JsonlTail`) through a bounded per-subscriber
  queue; a consumer slower than the run loses records (counted, and
  reported in the stream's closing line), never memory;
* ``trace`` answers the phase summary / iteration table of any stored
  fingerprint from that JSONL, with no recomputation;
* a :class:`repro.obs.MetricsRegistry` (one per server) aggregates
  request latencies, queue depths, and cache/session/drop counters,
  exposed by the ``metrics`` op and an optional ``--metrics-port`` HTTP
  listener speaking Prometheus text format.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Dict, Optional

from ..errors import ServeError
from ..harness.faults import SERVE_PID_ENV_VAR
from ..harness.journal import RunJournal
from ..harness.pool import WorkerPool
from ..harness.worker import AttemptSpec
from ..obs import JsonlTail, MetricsRegistry
from ..obs.report import load_trace, summarize_trace
from ..reach import ReachResult
from . import protocol
from .admission import AdmissionController, AdmissionPolicy
from .cache import COMPLETE, RESUMABLE, ResultCache
from .session import Session, SessionManager

#: Queue-drain estimate per attempt used for Retry-After hints when no
#: better signal exists (the surrogate circuits finish in well under
#: this; real ISCAS'89 runs are budget-bound anyway).
TYPICAL_ATTEMPT_SECONDS = 5.0

#: Bounded per-subscriber event queue: deep enough that a normally-paced
#: reader never drops, small enough that one wedged client costs ~a few
#: hundred records of memory, not the run's whole history.
DEFAULT_SUBSCRIBER_QUEUE = 256

#: How often a subscriber's tailer polls the attempt's trace files.
SUBSCRIBE_POLL_SECONDS = 0.05


class Counters:
    """Thread-safe monotonic counters for the telemetry snapshots.

    With a registry attached every bump is mirrored into a
    ``serve_<name>`` registry counter, so the Prometheus endpoint and
    the ``metrics`` op see the same numbers as the JSONL snapshots.
    """

    FIELDS = (
        "requests",
        "ok",
        "cache_hits",
        "resumes",
        "resumable_stored",
        "shed",
        "cancelled",
        "failed",
        "errors",
        "disconnects",
        "subscriptions",
        "stream_events",
        "subscriber_drops",
        "telemetry_drops",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._values = {name: 0 for name in self.FIELDS}
        self._registry = registry

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name] += amount
        if self._registry is not None:
            self._registry.counter("serve_" + name).inc(amount)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)


class _Connection:
    """Per-client state: serialized writes + this client's waiters."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.waiters: Dict[str, object] = {}
        self.closed = False

    async def send(self, message: Dict[str, object]) -> None:
        if self.closed:
            return
        async with self.lock:
            try:
                self.writer.write(protocol.encode(message))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


class ReachServer:
    """The reachability service (see module docstring)."""

    def __init__(
        self,
        cache_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = 2,
        policy: Optional[AdmissionPolicy] = None,
        trace_dir: Optional[str] = None,
        journal_path: Optional[str] = None,
        checkpoint_interval: int = 1,
        subscriber_queue_size: int = DEFAULT_SUBSCRIBER_QUEUE,
        subscribe_poll_seconds: float = SUBSCRIBE_POLL_SECONDS,
        metrics_port: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        #: One registry per server (private by default so parallel test
        #: servers never share counters), fed by every layer below.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = ResultCache(cache_dir, registry=self.registry)
        self.sessions = SessionManager()
        self.admission = AdmissionController(policy)
        self.counters = Counters(self.registry)
        self.checkpoint_interval = checkpoint_interval
        self.trace_dir = trace_dir
        self.subscriber_queue_size = subscriber_queue_size
        self.subscribe_poll_seconds = subscribe_poll_seconds
        self.metrics_port = metrics_port
        journal = RunJournal(journal_path) if journal_path else None
        self.pool = WorkerPool(pool_size, journal=journal, registry=self.registry)
        self.telemetry: Optional[RunJournal] = None
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            self.telemetry = RunJournal(
                os.path.join(trace_dir, "serve-telemetry.jsonl")
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; resolves :attr:`port` when 0 was asked."""
        # Children inherit this (fork), letting an injected
        # ``server_crash`` fault target the serve process, and letting
        # the smoke test find orphans by scanning /proc environs.
        os.environ[SERVE_PID_ENV_VAR] = str(os.getpid())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        self._emit_counters("start")

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, cancel work, drain pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        # Pool shutdown cancels outstanding tokens and reaps children.
        await asyncio.get_running_loop().run_in_executor(
            None, self.pool.shutdown
        )
        self._emit_counters("stop")

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _emit(self, record: Dict[str, object]) -> None:
        if self.telemetry is not None:
            try:
                self.telemetry.append(record)
            except OSError:
                # Telemetry is best-effort (a full disk must not take
                # requests down), but a drop is never silent: it shows
                # up in the counters snapshot, the registry, and the
                # `repro trace` serve section.
                self.counters.bump("telemetry_drops")

    def _emit_counters(self, moment: str) -> None:
        record: Dict[str, object] = {
            "event": "serve_counters",
            "moment": moment,
        }
        record.update(self.counters.snapshot())
        record.update(self.sessions.snapshot())
        record.update(self.admission.snapshot())
        record["pool"] = self.pool.stats()
        record["cache"] = self.cache.stats()
        self._emit(record)

    def _emit_request(
        self,
        request: protocol.ReachRequest,
        key: str,
        disposition: str,
        status: str,
        seconds: float,
    ) -> None:
        self._emit(
            {
                "event": "serve_request",
                "op": "reach",
                "circuit": request.circuit,
                "engine": request.engine,
                "order": request.order,
                "key": key,
                "disposition": disposition,
                "status": status,
                "seconds": round(seconds, 6),
            }
        )
        self.registry.histogram(
            "serve_request_seconds", {"disposition": disposition}
        ).observe(seconds)

    def _refresh_gauges(self) -> None:
        """Pull point-in-time levels into the registry before a read.

        Counters and histograms are pushed at the moment things happen;
        levels (queue depths, in-flight sessions, cache entry counts)
        are cheapest sampled when somebody actually looks.
        """
        registry = self.registry
        pool = self.pool.stats()
        registry.gauge("serve_queue_depth").set(pool["queued"])
        admission = self.admission.snapshot()
        registry.gauge("admission_inflight").set(admission.get("inflight", 0))
        sessions = self.sessions.snapshot()
        registry.gauge("inflight_sessions").set(
            sessions["inflight_sessions"]
        )
        cache = self.cache.stats()
        for status, count in cache.items():
            registry.gauge("cache_entries", {"status": status}).set(count)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        await conn.send(
            {"server": protocol.PROTOCOL, "pid": os.getpid()}
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch_line(conn, line)
        finally:
            conn.closed = True
            # Client went away: detach every waiter it still had; the
            # last waiter of a session cancels the attempt (checkpoint
            # stays resumable).
            leftovers = list(conn.waiters.values())
            conn.waiters.clear()
            if leftovers:
                self.counters.bump("disconnects")
            for waiter in leftovers:
                self.sessions.detach(waiter)
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop teardown race
                pass

    async def _dispatch_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = protocol.parse_request(line)
        except ServeError as error:
            self.counters.bump("errors")
            request_id = None
            try:
                raw = json.loads(line.decode("utf-8", errors="replace"))
                if isinstance(raw, dict) and isinstance(raw.get("id"), str):
                    request_id = raw["id"]
            except ValueError:
                pass
            await conn.send(protocol.error_response(request_id, str(error)))
            return
        if request.op == "status":
            await self._handle_status(conn, request)
        elif request.op == "cancel":
            await self._handle_cancel(conn, request)
        elif request.op == "reach":
            await self._handle_reach(conn, request.reach)
        elif request.op == "batch":
            task = asyncio.ensure_future(self._handle_batch(conn, request))
            self._track(task)
        elif request.op == "subscribe":
            await self._handle_subscribe(conn, request)
        elif request.op == "trace":
            await self._handle_trace(conn, request)
        elif request.op == "metrics":
            await self._handle_metrics(conn, request)

    def _track(self, task: "asyncio.Task") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    async def _handle_status(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        self._emit_counters("status")
        await conn.send(
            protocol.response(
                request.id,
                "ok",
                counters=self.counters.snapshot(),
                sessions=self.sessions.snapshot(),
                admission=self.admission.snapshot(),
                pool=self.pool.stats(),
                cache=self.cache.stats(),
            )
        )

    async def _handle_cancel(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        waiter = conn.waiters.pop(request.target, None)
        if waiter is None:
            await conn.send(
                protocol.response(
                    request.id,
                    "error",
                    error="no in-flight request %r on this connection"
                    % request.target,
                )
            )
            return
        self.sessions.detach(waiter)
        self.counters.bump("cancelled")
        await conn.send(
            protocol.response(request.target, "cancelled")
        )
        await conn.send(
            protocol.response(request.id, "ok", target=request.target)
        )

    def _resolve_key(self, request: protocol.Request) -> str:
        """The fingerprint a subscribe/trace request addresses.

        Raises :class:`ServeError` when reach-shaped fields fail to
        fingerprint (unknown circuit, unreadable path).
        """
        if request.key is not None:
            return request.key
        assert request.reach is not None
        try:
            return request.reach.fingerprint()
        except Exception as error:  # CircuitError, OSError on bad paths
            raise ServeError(str(error))

    async def _handle_metrics(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        self._refresh_gauges()
        await conn.send(
            protocol.response(
                request.id,
                "ok",
                metrics=self.registry.snapshot(),
                counters=self.counters.snapshot(),
            )
        )

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0 responder for ``GET /metrics`` (Prometheus).

        Anything but ``/metrics`` gets a 404; the connection closes
        after one exchange.  No HTTP library — one request line, headers
        skipped until the blank line, one response.
        """
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else ""
            if len(parts) > 0 and parts[0] == "GET" and path.split("?")[0] == "/metrics":
                self._refresh_gauges()
                body = self.registry.render_prometheus().encode()
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    "Content-Length: %d\r\n\r\n" % len(body)
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    "Content-Length: %d\r\n\r\n" % len(body)
                )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop teardown race
                pass

    async def _handle_trace(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        """Answer a fingerprint's stored telemetry — no recomputation."""
        try:
            key = self._resolve_key(request)
        except ServeError as error:
            self.counters.bump("errors")
            await conn.send(protocol.error_response(request.id, str(error)))
            return
        entry = self.cache.lookup(key)
        if not self.cache.has_trace(key):
            await conn.send(
                protocol.response(
                    request.id,
                    "miss",
                    key=key,
                    cached=entry.status if entry is not None else None,
                )
            )
            return
        records = await asyncio.get_running_loop().run_in_executor(
            None,
            load_trace,
            os.path.join(self.cache.entry_dir(key), "trace"),
        )
        report = summarize_trace(records)
        await conn.send(
            protocol.response(
                request.id,
                "ok",
                key=key,
                cached=entry.status if entry is not None else None,
                live=self.sessions.session_for(key) is not None,
                trace=report,
                counters=self.counters.snapshot(),
            )
        )

    async def _handle_subscribe(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        """Start streaming a fingerprint's telemetry to this client.

        The subscriber is *not* a session waiter: it never keeps an
        abandoned attempt alive and its disconnect never cancels the
        run.  The stream replays the trace records already on disk
        (the trajectory so far), then follows the files while the
        session is live, and closes with a summary line carrying the
        session outcome and the slow-consumer drop count.
        """
        try:
            key = self._resolve_key(request)
        except ServeError as error:
            self.counters.bump("errors")
            await conn.send(protocol.error_response(request.id, str(error)))
            return
        session = self.sessions.session_for(key)
        if session is None and not self.cache.has_trace(key):
            await conn.send(
                protocol.response(request.id, "miss", key=key)
            )
            return
        self.counters.bump("subscriptions")
        await conn.send(
            protocol.response(
                request.id,
                "streaming",
                key=key,
                live=session is not None,
            )
        )
        self._track(
            asyncio.ensure_future(
                self._stream(conn, request.id, key, session)
            )
        )

    async def _stream(
        self,
        conn: _Connection,
        request_id: str,
        key: str,
        session: Optional[Session],
    ) -> None:
        """One subscriber: tailer task -> bounded queue -> writer.

        The tailer never blocks on the client: records go into the
        queue with ``put_nowait`` and overflow is *dropped and counted*
        (``dropped`` in the closing line, ``subscriber_drops`` in the
        counters).  The writer side awaits the socket, so a slow client
        throttles only its own queue.
        """
        queue: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.subscriber_queue_size
        )
        state = {"dropped": 0, "events": 0}

        async def _tail() -> None:
            tail = JsonlTail(self.cache.trace_dir(key))
            final_pass = False
            while True:
                for record in await asyncio.get_running_loop().run_in_executor(
                    None, tail.poll
                ):
                    record.pop("_file", None)
                    try:
                        queue.put_nowait(record)
                    except asyncio.QueueFull:
                        state["dropped"] += 1
                if final_pass or conn.closed:
                    break
                if session is None or session.done:
                    # The session resolved (or never existed: a replay
                    # of a stored trace); one more poll drains what the
                    # attempt wrote between our last poll and its end.
                    final_pass = True
                    continue
                await asyncio.sleep(self.subscribe_poll_seconds)
            await queue.put(None)  # end-of-stream sentinel, never dropped

        tail_task = asyncio.ensure_future(_tail())
        self._track(tail_task)
        try:
            while True:
                record = await queue.get()
                if record is None:
                    break
                state["events"] += 1
                await conn.send(
                    protocol.response(
                        request_id, "event", key=key, record=record
                    )
                )
        finally:
            tail_task.cancel()
            if state["dropped"]:
                self.counters.bump("subscriber_drops", state["dropped"])
            self.counters.bump("stream_events", state["events"])
            outcome = session.outcome if session is not None else None
            await conn.send(
                protocol.response(
                    request_id,
                    "complete",
                    key=key,
                    events=state["events"],
                    dropped=state["dropped"],
                    outcome=outcome,
                )
            )

    async def _handle_batch(
        self, conn: _Connection, request: protocol.Request
    ) -> None:
        loop = asyncio.get_running_loop()
        futures = []
        for item in request.requests:
            future: "asyncio.Future" = loop.create_future()
            futures.append(future)
            await self._handle_reach(conn, item, collect=future)
        results = await asyncio.gather(*futures)
        failed = sum(
            1 for item in results if item.get("status") not in ("ok",)
        )
        await conn.send(
            protocol.response(
                request.id,
                "ok" if failed == 0 else "partial",
                results=list(results),
                failed=failed,
            )
        )

    async def _handle_reach(
        self,
        conn: _Connection,
        request: protocol.ReachRequest,
        collect: Optional["asyncio.Future"] = None,
    ) -> None:
        """Serve one reach request (also the batch per-item path).

        With ``collect`` set (batch mode) the response is resolved into
        that future instead of written immediately — the batch envelope
        carries all item responses together.
        """
        self.counters.bump("requests")
        started = time.monotonic()

        async def _respond(message: Dict[str, object]) -> None:
            if collect is not None:
                if not collect.done():
                    collect.set_result(message)
            else:
                await conn.send(message)

        try:
            key = request.fingerprint()
        except Exception as error:  # CircuitError, OSError on bad paths
            self.counters.bump("errors")
            await _respond(protocol.error_response(request.id, str(error)))
            return

        entry = self.cache.lookup(key)
        if request.mode == "peek":
            if entry is None:
                status = "miss"
                message = protocol.response(request.id, "miss", key=key)
            else:
                status = "ok" if entry.status == COMPLETE else RESUMABLE
                message = protocol.response(
                    request.id,
                    status,
                    key=key,
                    cached=True,
                    result=entry.result.to_dict(),
                )
            self._emit_request(
                request, key, "peek", status, time.monotonic() - started
            )
            await _respond(message)
            return

        if entry is not None and entry.status == COMPLETE:
            self.counters.bump("cache_hits")
            self.counters.bump("ok")
            self._emit_request(
                request, key, "cache_hit", "ok", time.monotonic() - started
            )
            await _respond(
                protocol.response(
                    request.id,
                    "ok",
                    key=key,
                    cached=True,
                    result=entry.result.to_dict(),
                )
            )
            return

        def deliver(status: str, fields: Dict[str, object]) -> None:
            conn.waiters.pop(request.id, None)
            message = protocol.response(request.id, status, **fields)
            if collect is not None:
                if not collect.done():
                    collect.set_result(message)
            else:
                task = asyncio.ensure_future(conn.send(message))
                self._track(task)

        waiter, created = self.sessions.begin_or_attach(key, deliver)
        conn.waiters[request.id] = waiter
        if not created:
            self._emit_request(
                request, key, "dedup_hit", "wait", time.monotonic() - started
            )
            return

        session = waiter.session
        ticket = self.admission.try_admit(
            self.pool.size, request.max_seconds
        )
        if ticket is None:
            self.counters.bump("shed")
            hint = self.admission.retry_after(
                self.pool.stats(), TYPICAL_ATTEMPT_SECONDS
            )
            self._emit_request(
                request, key, "shed", "shed", time.monotonic() - started
            )
            self.sessions.finish(
                session, "shed", {"key": key, "retry_after": hint}
            )
            return

        resuming = self.cache.has_checkpoints(key)
        spec = AttemptSpec(
            circuit=request.circuit,
            engine=request.engine,
            order=request.order,
            max_seconds=ticket.max_seconds,
            max_live_nodes=request.max_nodes,
            max_iterations=request.max_iterations,
            checkpoint_dir=self.cache.checkpoint_dir(key),
            checkpoint_interval=self.checkpoint_interval,
            resume=True,
            count_states=request.count_states,
            # Per-iteration telemetry goes into the cache entry, next
            # to the checkpoints: that JSONL is what `subscribe` tails
            # while this attempt runs and what `trace` answers from
            # later.  (The server's own --trace-dir holds only the
            # serve_* events.)
            trace_dir=self.cache.trace_dir(key),
            faults=request.faults,
        )
        try:
            future = self.pool.submit(
                spec,
                token=session.token,
                budget_seconds=ticket.budget_seconds,
                max_rss_bytes=ticket.max_rss_bytes,
            )
        except RuntimeError as error:  # pool shut down mid-request
            self.admission.release()
            self.counters.bump("errors")
            self.sessions.finish(session, "error", {"error": str(error)})
            return

        async def _complete() -> None:
            try:
                result = await asyncio.wrap_future(future)
            finally:
                self.admission.release()
            status, fields = self._classify(key, result)
            if result.extra.get("resumed_from") is not None:
                self.counters.bump("resumes")
            disposition = (
                "resumed"
                if resuming and result.extra.get("resumed_from") is not None
                else "cold"
            )
            self._emit_request(
                request, key, disposition, status, time.monotonic() - started
            )
            self.sessions.finish(session, status, fields)

        self._track(asyncio.ensure_future(_complete()))

    # ------------------------------------------------------------------
    # Outcome classification
    # ------------------------------------------------------------------

    def _classify(self, key, result: ReachResult):
        """Map an attempt outcome to a response status + cache action."""
        fields: Dict[str, object] = {
            "key": key,
            "result": result.to_dict(),
        }
        if result.completed:
            self.cache.store(key, result, COMPLETE)
            self.counters.bump("ok")
            return "ok", fields
        if self.cache.has_checkpoints(key):
            # Budget ran out (or the attempt was killed) but a snapshot
            # survived: persist the partial result; re-asking resumes.
            self.cache.store(key, result, RESUMABLE)
            self.counters.bump("resumable_stored")
            if result.failure == "cancelled":
                self.counters.bump("cancelled")
                return "cancelled", fields
            fields["retry_after"] = self.admission.policy.min_retry_after_seconds
            return "resumable", fields
        if result.failure == "cancelled":
            self.counters.bump("cancelled")
            return "cancelled", fields
        self.counters.bump("failed")
        return "failed", fields

"""In-flight request deduplication and cooperative abandonment.

A *session* is one running attempt, keyed by the request fingerprint
(circuit content x engine x order x semantic options).  Any number of
client requests attach to the same session as *waiters*; only the first
one actually starts work — the rest are dedup hits that cost nothing
and receive the same answer when the attempt finishes.

Waiters detach when their client cancels or disconnects.  When the last
waiter leaves a still-running session, nobody wants the answer any
more, so the session's :class:`~repro.harness.scheduler.CancelToken` is
set and the supervisor kills the child at its next watchdog poll — the
cooperative cancellation path running scheduler → supervisor → engine.
The checkpoint written up to that point stays in the cache, so an
abandoned request that comes back later resumes instead of restarting.

The manager is transport-agnostic and thread-safe: the asyncio server
calls it from the event loop, the pool's dispatcher threads never touch
it, and delivery happens through per-waiter callbacks.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..harness.scheduler import CancelToken

#: ``deliver(status, fields)`` — called exactly once per active waiter.
Deliver = Callable[[str, Dict[str, object]], None]


class Session:
    """One in-flight attempt and the waiters attached to it."""

    def __init__(self, key: str) -> None:
        self.key = key
        self.token = CancelToken()
        self.waiters: List["Waiter"] = []
        self.done = False
        #: Final response status (``ok`` / ``resumable`` / ...), set by
        #: :meth:`SessionManager.finish` — read by subscribers, which
        #: observe sessions without being waiters (a subscriber must
        #: never keep an otherwise-abandoned attempt alive).
        self.outcome: Optional[str] = None


class Waiter:
    """One client request attached to a session."""

    __slots__ = ("session", "deliver", "active")

    def __init__(self, session: Session, deliver: Deliver) -> None:
        self.session = session
        self.deliver = deliver
        self.active = True


class SessionManager:
    """Registry of in-flight sessions, keyed by request fingerprint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self.started = 0
        self.dedup_hits = 0
        self.abandoned = 0

    def begin_or_attach(
        self, key: str, deliver: Deliver
    ) -> Tuple[Waiter, bool]:
        """Attach to the key's session, creating it if absent.

        Returns ``(waiter, created)``; ``created`` is True when this
        caller must start the actual attempt.
        """
        with self._lock:
            session = self._sessions.get(key)
            created = session is None
            if session is None:
                session = Session(key)
                self._sessions[key] = session
                self.started += 1
            else:
                self.dedup_hits += 1
            waiter = Waiter(session, deliver)
            session.waiters.append(waiter)
        return waiter, created

    def detach(self, waiter: Waiter) -> None:
        """Remove one waiter (cancel or disconnect); maybe abandon.

        Detaching the last waiter of a running session sets its cancel
        token — the supervised child is killed at the next watchdog
        poll and the attempt's failure code becomes ``cancelled``.
        """
        abandon = False
        with self._lock:
            if not waiter.active:
                return
            waiter.active = False
            session = waiter.session
            if waiter in session.waiters:
                session.waiters.remove(waiter)
            if not session.done and not session.waiters:
                abandon = True
                self.abandoned += 1
        if abandon:
            session.token.set("cancelled")

    def finish(
        self, session: Session, status: str, fields: Dict[str, object]
    ) -> int:
        """Resolve a session: deliver to every active waiter.

        The session is unregistered *before* delivery, so a client that
        re-asks the moment it hears the answer starts a fresh session
        (typically a cache hit by then).  Returns the waiter count.
        """
        with self._lock:
            session.outcome = status
            session.done = True
            if self._sessions.get(session.key) is session:
                del self._sessions[session.key]
            waiters = [w for w in session.waiters if w.active]
            for waiter in waiters:
                waiter.active = False
            session.waiters = []
        for waiter in waiters:
            waiter.deliver(status, fields)
        return len(waiters)

    def session_for(self, key: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(key)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "inflight_sessions": len(self._sessions),
                "started": self.started,
                "dedup_hits": self.dedup_hits,
                "abandoned": self.abandoned,
            }

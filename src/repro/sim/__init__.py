"""Circuit simulators: concrete (oracle) and symbolic (BDD-level)."""

from .concrete import ConcreteSimulator, explicit_reachable
from .symbolic import SymbolicSimulator

__all__ = ["ConcreteSimulator", "SymbolicSimulator", "explicit_reachable"]

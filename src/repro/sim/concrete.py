"""Concrete (two-valued) simulation and explicit-state reachability.

This is the ground-truth oracle for the symbolic engines: a cycle-accurate
gate-level simulator plus a breadth-first explicit search of the
reachable state space.  Both are deliberately straightforward — their job
is to be obviously correct, not fast — but the BFS packs states into
integers and caches the topological gate order, so state spaces around a
million states remain practical for the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuits.netlist import Circuit
from ..errors import CircuitError


class ConcreteSimulator:
    """Evaluates a circuit cycle by cycle on concrete Boolean values."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._topo = circuit.topological_gates()
        self.state_nets = circuit.state_nets

    def evaluate_nets(
        self, state: Sequence[bool], inputs: Dict[str, bool]
    ) -> Dict[str, bool]:
        """Values of every net for one cycle, given state and inputs."""
        circuit = self.circuit
        values: Dict[str, bool] = {}
        for net, value in zip(self.state_nets, state):
            values[net] = bool(value)
        for net in circuit.inputs:
            try:
                values[net] = bool(inputs[net])
            except KeyError:
                raise CircuitError("missing input %r" % net) from None
        for gate in self._topo:
            values[gate.output] = gate.evaluate(
                [values[i] for i in gate.inputs]
            )
        return values

    def step(
        self, state: Sequence[bool], inputs: Dict[str, bool]
    ) -> Tuple[bool, ...]:
        """Next state after one clock edge."""
        values = self.evaluate_nets(state, inputs)
        return tuple(
            values[latch.data] for latch in self.circuit.latches.values()
        )

    def outputs(
        self, state: Sequence[bool], inputs: Dict[str, bool]
    ) -> Dict[str, bool]:
        """Primary output values for one cycle."""
        values = self.evaluate_nets(state, inputs)
        return {net: values[net] for net in self.circuit.outputs}

    def run(
        self,
        input_trace: Iterable[Dict[str, bool]],
        state: Optional[Sequence[bool]] = None,
    ) -> List[Tuple[bool, ...]]:
        """Simulate a trace of input vectors; returns the state sequence.

        The returned list starts with the initial state and has one more
        entry than the trace.
        """
        current = tuple(
            self.circuit.initial_state if state is None else state
        )
        sequence = [current]
        for inputs in input_trace:
            current = self.step(current, inputs)
            sequence.append(current)
        return sequence


def explicit_reachable(
    circuit: Circuit,
    initial_states: Optional[Iterable[Sequence[bool]]] = None,
    max_states: int = 1 << 22,
) -> Set[Tuple[bool, ...]]:
    """All reachable states by explicit breadth-first search.

    Explores every input combination from every frontier state; intended
    as the oracle for the symbolic engines on small circuits.  Raises
    :class:`CircuitError` when ``max_states`` is exceeded.
    """
    sim = ConcreteSimulator(circuit)
    inputs = circuit.inputs
    input_vectors: List[Dict[str, bool]] = []
    for mask in range(1 << len(inputs)):
        input_vectors.append(
            {net: bool(mask >> i & 1) for i, net in enumerate(inputs)}
        )
    if initial_states is None:
        initial = [tuple(circuit.initial_state)]
    else:
        initial = [tuple(bool(b) for b in s) for s in initial_states]
    seen: Set[Tuple[bool, ...]] = set(initial)
    frontier = deque(initial)
    while frontier:
        state = frontier.popleft()
        for vector in input_vectors:
            nxt = sim.step(state, vector)
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) > max_states:
                    raise CircuitError(
                        "explicit reachability exceeded %d states" % max_states
                    )
                frontier.append(nxt)
    return seen

"""Symbolic simulation: netlist to next-state BDDs.

The image-computation front end of the paper's Figure 2 flow: given BDD
variables for the primary inputs and for the current-state bits (or,
more generally, arbitrary BDD functions driving them), evaluate the
combinational core in topological order to obtain one BDD per latch
data input and per primary output.

When the current-state nets are driven by the components of a Boolean
functional vector, the resulting next-state functions are exactly the
raw (non-canonical) vector that re-parameterization (Sec 2.6)
canonicalizes.
"""

from __future__ import annotations

from typing import Dict, List

from ..circuits.netlist import Circuit
from ..errors import CircuitError


class SymbolicSimulator:
    """Evaluates a circuit's combinational core over BDD drivers."""

    def __init__(self, bdd, circuit: Circuit) -> None:
        circuit.validate()
        self.bdd = bdd
        self.circuit = circuit
        self._topo = circuit.topological_gates()

    def evaluate_nets(self, drivers: Dict[str, int]) -> Dict[str, int]:
        """BDD for every net, given BDDs for inputs and state nets.

        ``drivers`` must map every primary input and latch output to a
        BDD node; gate nets are computed in topological order.
        """
        bdd = self.bdd
        circuit = self.circuit
        values: Dict[str, int] = {}
        for net in circuit.inputs:
            if net not in drivers:
                raise CircuitError("missing driver for input %r" % net)
            values[net] = drivers[net]
        for net in circuit.latches:
            if net not in drivers:
                raise CircuitError("missing driver for state net %r" % net)
            values[net] = drivers[net]
        for gate in self._topo:
            operands = [values[i] for i in gate.inputs]
            values[gate.output] = self._evaluate_gate(gate.op, operands)
        return values

    def _evaluate_gate(self, op: str, operands: List[int]) -> int:
        bdd = self.bdd
        if op == "NOT":
            return bdd.not_(operands[0])
        if op == "BUF":
            return operands[0]
        if op == "AND":
            return bdd.conjoin(operands)
        if op == "OR":
            return bdd.disjoin(operands)
        if op == "NAND":
            return bdd.not_(bdd.conjoin(operands))
        if op == "NOR":
            return bdd.not_(bdd.disjoin(operands))
        result = operands[0]
        for operand in operands[1:]:
            result = bdd.xor(result, operand)
        if op == "XNOR":
            result = bdd.not_(result)
        return result

    def next_state(self, drivers: Dict[str, int]) -> List[int]:
        """Next-state BDD per latch (declaration order)."""
        values = self.evaluate_nets(drivers)
        return [
            values[latch.data] for latch in self.circuit.latches.values()
        ]

    def outputs(self, drivers: Dict[str, int]) -> Dict[str, int]:
        """BDD per primary output."""
        values = self.evaluate_nets(drivers)
        return {net: values[net] for net in self.circuit.outputs}

    def transition_functions(
        self, input_vars: Dict[str, int], state_vars: Dict[str, int]
    ) -> List[int]:
        """Next-state functions over plain variables (delta_i(s, x)).

        The classic transition-function view used by the characteristic
        function engines and as the basis for transition relations.
        ``input_vars`` / ``state_vars`` map nets to *variable indices*.
        """
        bdd = self.bdd
        drivers = {net: bdd.var(v) for net, v in input_vars.items()}
        drivers.update(
            {net: bdd.var(v) for net, v in state_vars.items()}
        )
        return self.next_state(drivers)

"""Symbolic Trajectory Evaluation (STE) over the circuit substrate.

The paper situates Boolean functional vectors next to STE (Sec 1):
"Boolean functional vectors are also used in Symbolic Trajectory
Evaluation [4] ... However, the specification language is restricted
and does not require fix-point computations, thus avoiding the need for
set manipulations."  This package implements that restricted-but-useful
neighbour technique on the same netlist/BDD substrate: three-valued
(0/1/X) symbolic simulation with dual-rail encoding, trajectory
formulas (``is0``/``is1``/guards/conjunction/``next``), and assertion
checking ``antecedent |= consequent`` with symbolic residuals.
"""

from .formulas import TrajectoryFormula, conj, equals, guard, is0, is1, next_
from .engine import STE, STEResult, TernaryValue

__all__ = [
    "STE",
    "STEResult",
    "TernaryValue",
    "TrajectoryFormula",
    "conj",
    "equals",
    "guard",
    "is0",
    "is1",
    "next_",
]

"""The STE engine: dual-rail ternary symbolic simulation + checking.

Every net carries a :class:`TernaryValue` — a pair of BDDs
``(can_be_1, can_be_0)`` over the symbolic variables:

===========  ==========  ==========
value        can_be_1    can_be_0
===========  ==========  ==========
``1``        true        false
``0``        false       true
``X``        true        true
overconstr.  false       false
===========  ==========  ==========

Gates evaluate with the standard monotone ternary extensions; latches
start at ``X``; antecedent leaves *meet* the simulated value (ruling
out the opposite polarity where the guard holds).  An assertion
``A |= C`` passes for exactly the symbolic assignments where every
consequent leaf's net carries the required definite value; the engine
returns that residual BDD plus the antecedent-failure condition
(assignments where the antecedent contradicted the circuit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..circuits.netlist import Circuit
from ..errors import ReproError
from .formulas import TrajectoryFormula, depth, flatten


class TernaryValue(NamedTuple):
    """Dual-rail encoded ternary value: ``(can_be_1, can_be_0)``."""

    high: int
    low: int


@dataclass
class STEResult:
    """Outcome of a trajectory assertion check.

    ``condition`` is the BDD over the symbolic variables on which the
    consequent is *satisfied* (definitely, not via X); the assertion
    ``passes`` when that condition covers everything outside the
    antecedent failure.  ``antecedent_failure`` marks assignments where
    the antecedent contradicted the circuit (vacuous there).
    """

    passes: bool
    condition: int
    antecedent_failure: int
    counterexample: Optional[Dict[str, bool]] = None
    #: per-leaf satisfaction conditions, for diagnostics
    leaves: List[Tuple[int, str, bool, int]] = field(default_factory=list)


class STE:
    """Symbolic trajectory evaluation over a sequential circuit."""

    def __init__(self, bdd, circuit: Circuit) -> None:
        circuit.validate()
        self.bdd = bdd
        self.circuit = circuit
        self._topo = circuit.topological_gates()

    # -- ternary gate algebra -------------------------------------------

    def _not(self, a: TernaryValue) -> TernaryValue:
        return TernaryValue(a.low, a.high)

    def _and(self, a: TernaryValue, b: TernaryValue) -> TernaryValue:
        bdd = self.bdd
        return TernaryValue(
            bdd.and_(a.high, b.high), bdd.or_(a.low, b.low)
        )

    def _or(self, a: TernaryValue, b: TernaryValue) -> TernaryValue:
        bdd = self.bdd
        return TernaryValue(
            bdd.or_(a.high, b.high), bdd.and_(a.low, b.low)
        )

    def _xor(self, a: TernaryValue, b: TernaryValue) -> TernaryValue:
        bdd = self.bdd
        high = bdd.or_(
            bdd.and_(a.high, b.low), bdd.and_(a.low, b.high)
        )
        low = bdd.or_(
            bdd.and_(a.high, b.high), bdd.and_(a.low, b.low)
        )
        return TernaryValue(high, low)

    def _evaluate_gate(self, op: str, operands: List[TernaryValue]) -> TernaryValue:
        if op == "NOT":
            return self._not(operands[0])
        if op == "BUF":
            return operands[0]
        fold = {
            "AND": self._and,
            "NAND": self._and,
            "OR": self._or,
            "NOR": self._or,
            "XOR": self._xor,
            "XNOR": self._xor,
        }[op]
        value = operands[0]
        for operand in operands[1:]:
            value = fold(value, operand)
        if op in ("NAND", "NOR", "XNOR"):
            value = self._not(value)
        return value

    # -- simulation -------------------------------------------------------

    def _x(self) -> TernaryValue:
        return TernaryValue(self.bdd.true, self.bdd.true)

    def simulate_step(
        self, values: Dict[str, TernaryValue]
    ) -> Dict[str, TernaryValue]:
        """Evaluate the combinational core over ternary net values.

        ``values`` must provide inputs and latch outputs; returns all
        nets including gate outputs.
        """
        result = dict(values)
        for gate in self._topo:
            operands = [result[i] for i in gate.inputs]
            result[gate.output] = self._evaluate_gate(gate.op, operands)
        return result

    def _meet(
        self,
        value: TernaryValue,
        required: bool,
        condition: int,
        failures: List[int],
    ) -> TernaryValue:
        """Constrain ``value`` to ``required`` where ``condition`` holds."""
        bdd = self.bdd
        not_condition = bdd.not_(condition)
        if required:
            new = TernaryValue(
                value.high, bdd.and_(value.low, not_condition)
            )
            failures.append(bdd.and_(condition, bdd.not_(value.high)))
        else:
            new = TernaryValue(
                bdd.and_(value.high, not_condition), value.low
            )
            failures.append(bdd.and_(condition, bdd.not_(value.low)))
        return new

    def waveform(
        self,
        antecedent: TrajectoryFormula,
        steps: int,
        assignment: Optional[Dict[str, bool]] = None,
        nets: Optional[List[str]] = None,
    ) -> List[Dict[str, str]]:
        """The defining trajectory as printable ternary values.

        Runs the antecedent-constrained simulation for ``steps`` cycles
        and returns, per cycle, ``{net: value}`` with values ``"0"``,
        ``"1"``, ``"X"`` (unknown) or ``"!"`` (overconstrained) — the
        waveform a debugger would show.  ``assignment`` fixes the
        symbolic variables (default: all false); ``nets`` selects which
        nets to report (default: inputs, states and outputs).
        """
        bdd = self.bdd
        circuit = self.circuit
        assignment = assignment or {}
        if nets is None:
            nets = (
                list(circuit.inputs)
                + list(circuit.latches)
                + list(circuit.outputs)
            )
        ante_by_time: Dict[int, List] = {}
        for time, net, value, condition in flatten(bdd, antecedent):
            ante_by_time.setdefault(time, []).append((net, value, condition))

        def classify(ternary: TernaryValue) -> str:
            high = bdd.evaluate(ternary.high, assignment)
            low = bdd.evaluate(ternary.low, assignment)
            if high and low:
                return "X"
            if high:
                return "1"
            if low:
                return "0"
            return "!"

        rows: List[Dict[str, str]] = []
        failures: List[int] = []
        state: Dict[str, TernaryValue] = {
            net: self._x() for net in circuit.latches
        }
        for time in range(steps):
            values: Dict[str, TernaryValue] = dict(state)
            for net in circuit.inputs:
                values[net] = self._x()
            pending = ante_by_time.get(time, [])
            for net, value, condition in pending:
                if net in values:
                    values[net] = self._meet(
                        values[net], value, condition, failures
                    )
            values = self.simulate_step(values)
            for net, value, condition in pending:
                if circuit.driver_of(net) == "gate":
                    values[net] = self._meet(
                        values[net], value, condition, failures
                    )
            rows.append({net: classify(values[net]) for net in nets})
            state = {
                latch.output: values[latch.data]
                for latch in circuit.latches.values()
            }
        return rows

    def check(
        self,
        antecedent: TrajectoryFormula,
        consequent: TrajectoryFormula,
    ) -> STEResult:
        """Check the trajectory assertion ``antecedent |= consequent``."""
        bdd = self.bdd
        circuit = self.circuit
        steps = max(depth(antecedent), depth(consequent))
        ante = flatten(bdd, antecedent)
        cons = flatten(bdd, consequent)
        known_nets = circuit.nets()
        for _, net, _, _ in ante + cons:
            if net not in known_nets:
                raise ReproError("trajectory formula names unknown net %r" % net)
        ante_by_time: Dict[int, List] = {}
        for time, net, value, condition in ante:
            ante_by_time.setdefault(time, []).append((net, value, condition))

        failures: List[int] = []
        satisfied = bdd.true
        leaves: List[Tuple[int, str, bool, int]] = []
        # Latches start at X; inputs are X unless the antecedent drives
        # them (per time step).
        state: Dict[str, TernaryValue] = {
            net: self._x() for net in circuit.latches
        }
        cons_by_time: Dict[int, List] = {}
        for time, net, value, condition in cons:
            cons_by_time.setdefault(time, []).append((net, value, condition))

        for time in range(steps):
            values: Dict[str, TernaryValue] = dict(state)
            for net in circuit.inputs:
                values[net] = self._x()
            # Apply antecedent constraints on inputs and state nets
            # *before* gate evaluation, then once more on gate outputs
            # afterwards (constraints on internal nets).
            pending = ante_by_time.get(time, [])
            for net, value, condition in pending:
                if net in values:
                    values[net] = self._meet(
                        values[net], value, condition, failures
                    )
            values = self.simulate_step(values)
            for net, value, condition in pending:
                if circuit.driver_of(net) == "gate":
                    values[net] = self._meet(
                        values[net], value, condition, failures
                    )
            # Consequent leaves at this time: require definite values.
            for net, value, condition in cons_by_time.get(time, []):
                ternary = values[net]
                if value:
                    definite = bdd.and_(ternary.high, bdd.not_(ternary.low))
                else:
                    definite = bdd.and_(ternary.low, bdd.not_(ternary.high))
                ok = bdd.implies(condition, definite)
                leaves.append((time, net, value, ok))
                satisfied = bdd.and_(satisfied, ok)
            # Advance the clock.
            state = {
                latch.output: values[latch.data]
                for latch in circuit.latches.values()
            }

        failure = bdd.disjoin(failures)
        # The assertion passes where the consequent is satisfied or the
        # antecedent already failed (vacuous truth).
        overall = bdd.or_(satisfied, failure)
        passes = overall == bdd.true
        counterexample = None
        if not passes:
            model = bdd.pick_model(bdd.not_(overall))
            counterexample = model
        return STEResult(
            passes=passes,
            condition=satisfied,
            antecedent_failure=failure,
            counterexample=counterexample,
            leaves=leaves,
        )

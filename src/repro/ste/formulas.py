"""Trajectory formulas: the restricted STE specification language.

The grammar of Bryant & Seger's trajectory evaluation logic::

    f := is1(node) | is0(node) | f AND f | guard -> f | next(f)

Guards are plain BDDs over *symbolic variables* (case-split variables
the user declares on the manager); ``next`` advances one clock cycle.
A formula's *depth* is the number of nested ``next`` operators plus
one — the number of simulation steps needed to evaluate it.

Formulas are immutable trees; :func:`flatten` lowers a formula to a
list of ``(time, node, value, guard)`` leaves for the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ReproError


class TrajectoryFormula:
    """Base class for trajectory formula nodes."""

    def __and__(self, other: "TrajectoryFormula") -> "TrajectoryFormula":
        return Conj(self, other)


@dataclass(frozen=True)
class Leaf(TrajectoryFormula):
    """``is1`` / ``is0`` on a named circuit net."""

    node: str
    value: bool


@dataclass(frozen=True)
class Conj(TrajectoryFormula):
    """Conjunction of two trajectory formulas."""

    left: TrajectoryFormula
    right: TrajectoryFormula


@dataclass(frozen=True)
class Guard(TrajectoryFormula):
    """``condition -> formula``: applies only where the guard holds."""

    condition: int  # BDD node over symbolic variables
    formula: TrajectoryFormula


@dataclass(frozen=True)
class Next(TrajectoryFormula):
    """The formula holds one clock cycle later."""

    formula: TrajectoryFormula


def is1(node: str) -> TrajectoryFormula:
    """Net ``node`` carries 1 (now)."""
    return Leaf(node, True)


def is0(node: str) -> TrajectoryFormula:
    """Net ``node`` carries 0 (now)."""
    return Leaf(node, False)


def guard(condition: int, formula: TrajectoryFormula) -> TrajectoryFormula:
    """``condition -> formula`` for a BDD guard over symbolic variables."""
    return Guard(condition, formula)


def next_(formula: TrajectoryFormula, steps: int = 1) -> TrajectoryFormula:
    """The formula shifted ``steps`` clock cycles into the future."""
    if steps < 0:
        raise ReproError("next_ steps must be non-negative")
    for _ in range(steps):
        formula = Next(formula)
    return formula


def conj(*formulas: TrajectoryFormula) -> TrajectoryFormula:
    """Conjunction of any number of formulas (at least one)."""
    if not formulas:
        raise ReproError("conj needs at least one formula")
    result = formulas[0]
    for formula in formulas[1:]:
        result = Conj(result, formula)
    return result


def equals(bdd, node: str, variable) -> TrajectoryFormula:
    """Net ``node`` equals the symbolic variable: the case-split idiom.

    ``(v -> is1(node)) AND (!v -> is0(node))`` — drives the net with a
    symbolic value, the workhorse of STE datapath verification.
    """
    v = bdd.var(variable)
    return Conj(
        Guard(v, Leaf(node, True)),
        Guard(bdd.not_(v), Leaf(node, False)),
    )


def flatten(
    bdd, formula: TrajectoryFormula
) -> List[Tuple[int, str, bool, int]]:
    """Lower a formula to ``(time, node, value, guard)`` leaves."""
    leaves: List[Tuple[int, str, bool, int]] = []

    def walk(f: TrajectoryFormula, time: int, condition: int) -> None:
        if isinstance(f, Leaf):
            leaves.append((time, f.node, f.value, condition))
        elif isinstance(f, Conj):
            walk(f.left, time, condition)
            walk(f.right, time, condition)
        elif isinstance(f, Guard):
            walk(f.formula, time, bdd.and_(condition, f.condition))
        elif isinstance(f, Next):
            walk(f.formula, time + 1, condition)
        else:
            raise ReproError("unknown trajectory formula %r" % (f,))

    walk(formula, 0, bdd.true)
    return leaves


def depth(formula: TrajectoryFormula) -> int:
    """Number of clock cycles the formula spans (max time + 1)."""
    if isinstance(formula, Leaf):
        return 1
    if isinstance(formula, Conj):
        return max(depth(formula.left), depth(formula.right))
    if isinstance(formula, Guard):
        return depth(formula.formula)
    if isinstance(formula, Next):
        return 1 + depth(formula.formula)
    raise ReproError("unknown trajectory formula %r" % (formula,))
